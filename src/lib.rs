//! # fence-scoping
//!
//! A from-scratch Rust reproduction of **"Fence Scoping"** (Lin,
//! Nagarajan, Gupta — SC '14): *scoped fences* (S-Fence) whose memory
//! ordering effect is limited to a programmer-specified scope, plus
//! the entire substrate the paper evaluates them on — a cycle-level,
//! execution-driven, out-of-order multicore simulator, a mini ISA and
//! compiler, and the paper's eight benchmarks.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! - [`isa`] — the mini ISA, structured IR, and compiler passes
//!   (scope instrumentation, set-scope flagging, SC enforcement).
//! - [`core`] — the paper's contribution: fence scope bits (FSB), the
//!   fence scope stack (FSS) with its branch-misprediction shadow, the
//!   cid→FSB mapping table, and the executable operational semantics
//!   of class scope (paper Fig. 5).
//! - [`mem`] — caches, coherence and the latency model.
//! - [`cpu`] — the out-of-order core (ROB, store buffer, branch
//!   prediction, fence stall logic, in-window speculation).
//! - [`sim`] — the multicore machine and stats.
//! - [`workloads`] — dekker, wsq, msn, harris, pst, ptc, barnes,
//!   radiosity, behind a named registry (`workloads::catalog`).
//! - [`harness`] — the `Session`/`Experiment` API: typed single runs
//!   and declarative, parallel parameter sweeps, executing through a
//!   pluggable `Backend` (cycle-accurate sim, fast functional SC
//!   interpreter, or bounded SC enumerator).
//!
//! ## Quickstart
//!
//! ```
//! use fence_scoping::prelude::*;
//!
//! // A class whose fence only orders its own traffic; a slow
//! // out-of-scope store before the call must not stall it.
//! let mut p = IrProgram::new();
//! let slow = p.global_line("slow");
//! let fast = p.shared_line("fast");
//! let cls = p.class("Mailbox");
//! p.method(cls, "send", &["v"], move |b| {
//!     b.store(fast.cell(), l("v"));
//!     b.fence_class();
//!     b.store(fast.cell(), l("v").add(c(1)));
//! });
//! p.thread(move |b| {
//!     b.store(slow.cell(), c(9)); // out of scope
//!     b.call("Mailbox::send", &[c(7)]);
//!     b.halt();
//! });
//! let prog = p.compile(&CompileOpts::default()).unwrap();
//!
//! // Layer 1: a Session is one configured run, reported as a typed,
//! // JSON-serializable RunReport. Sessions execute through a
//! // pluggable backend (cycle-accurate simulator by default).
//! let t = Session::for_program(&prog)
//!     .cores(1)
//!     .fence(FenceConfig::TRADITIONAL)
//!     .run();
//! let s = Session::for_program(&prog)
//!     .cores(1)
//!     .fence(FenceConfig::SFENCE)
//!     .run();
//! assert!(s.timed_cycles() <= t.timed_cycles(), "a scoped fence never loses");
//!
//! // The fast functional (SC) engine answers correctness questions
//! // without the timing model — and reports no fabricated cycles.
//! let f = Session::for_program(&prog)
//!     .cores(1)
//!     .backend(&FunctionalBackend)
//!     .run();
//! assert_eq!(f.cycles, None);
//! assert_eq!(f.read_var(&prog, "fast"), s.read_var(&prog, "fast"));
//!
//! // Layer 2: an Experiment sweeps the workload registry across
//! // fence configs and machine axes, in parallel, deterministically.
//! let sweep = Experiment::new("quickstart")
//!     .workload("dekker", WorkloadParams::small())
//!     .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
//!     .run_parallel();
//! assert!(sweep.cycles("dekker", "S", "") <= sweep.cycles("dekker", "T", ""));
//! ```

pub use sfence_core as core;
pub use sfence_cpu as cpu;
pub use sfence_harness as harness;
pub use sfence_isa as isa;
pub use sfence_mem as mem;
pub use sfence_sim as sim;
pub use sfence_workloads as workloads;

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use sfence_core::{ClassId, ScopeConfig, ScopeRecovery};
    pub use sfence_harness::{
        speedup_s_over_t, Axis, Backend, BackendId, EnumerativeBackend, Experiment,
        FunctionalBackend, Json, RunReport, Session, SimBackend, SweepResult, SweepRow,
    };
    pub use sfence_isa::ir::*;
    pub use sfence_isa::passes::{enforce_sc, ScStyle};
    pub use sfence_isa::{CompileOpts, FenceKind, Program};
    pub use sfence_sim::{FenceConfig, MachineConfig, RunExit};
    pub use sfence_workloads::{catalog, Scale, ScopeMode, WorkloadParams};
}
