//! Machine reuse must not leak state between runs.
//!
//! `Machine::reset` exists so a caller can re-run a program without
//! re-paying construction. The contract is total: a reset machine's
//! run — cycles, per-core stats counters, memory image, watch log —
//! is byte-for-byte the run a freshly built machine produces. The
//! stats counters are the regression surface that motivated this
//! test: a reset that forgot them would double `instrs_retired`,
//! `load_disambiguation_blocks` and friends on the second run and
//! silently corrupt every figure built from a reused machine.

use sfence_isa::ir::*;
use sfence_isa::{CompileOpts, Program};
use sfence_sim::{FenceConfig, Machine, MachineConfig};

/// Two-thread message passing with fences: retires instructions,
/// loads, stores and fences on both cores, stalls on the fence, and
/// blocks loads on disambiguation — every major counter is nonzero.
fn mp_program() -> Program {
    let mut p = IrProgram::new();
    let data = p.shared_line("data");
    let flag = p.shared_line("flag");
    let got = p.global_line("got");
    p.thread(move |b| {
        b.store(data.cell(), c(42));
        b.fence();
        b.store(flag.cell(), c(1));
        b.halt();
    });
    p.thread(move |b| {
        b.spin_until(ld(flag.cell()).eq(c(1)));
        b.fence();
        b.store(got.cell(), ld(data.cell()));
        b.halt();
    });
    p.compile(&CompileOpts::default()).expect("compile")
}

fn cfg() -> MachineConfig {
    let mut cfg = MachineConfig::paper_default().with_fence(FenceConfig::TRADITIONAL);
    cfg.num_cores = 2;
    cfg.max_cycles = 5_000_000;
    cfg
}

#[test]
fn reset_machine_reproduces_the_first_run_exactly() {
    let prog = mp_program();
    let mut m = Machine::new(&prog, cfg());
    let first = m.run();
    let first_mem = m.mem.clone();

    // The test only has teeth if the counters that would double on a
    // leaky reset are actually exercised.
    let retired: u64 = first.core_stats.iter().map(|s| s.instrs_retired).sum();
    let stalls: u64 = first.core_stats.iter().map(|s| s.fence_stall_cycles).sum();
    assert!(retired > 0, "program retired nothing");
    assert!(stalls > 0, "program never stalled on a fence");
    assert!(first.cycles > 0);

    m.reset(&prog);
    let second = m.run();
    assert_eq!(second, first, "reset run diverged from the first run");
    assert_eq!(m.mem, first_mem, "reset run's memory image diverged");

    // And a reset machine is indistinguishable from a new one.
    let mut fresh = Machine::new(&prog, cfg());
    let reference = fresh.run();
    assert_eq!(
        second, reference,
        "reset machine diverged from a new machine"
    );
}

#[test]
fn reset_clears_the_watch_log_but_keeps_watchpoints() {
    let prog = mp_program();
    let flag = prog.addr_of("flag");
    let mut m = Machine::new(&prog, cfg());
    m.watch(flag);
    m.run();
    let first_log = m.watch_log.clone();
    assert!(!first_log.is_empty(), "watched address was never written");

    m.reset(&prog);
    assert!(m.watch_log.is_empty(), "reset must clear the watch log");
    m.run();
    assert_eq!(
        m.watch_log, first_log,
        "watchpoints must survive reset and reproduce the same log"
    );
}
