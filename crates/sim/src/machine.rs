//! The multicore machine: N cores over a shared cache hierarchy and a
//! flat functional memory, advanced one cycle at a time in
//! deterministic core order.

use sfence_core::{PipeEvent, PipeKind, WalkKind};
use sfence_cpu::{Core, CoreConfig, FenceConfig, MemBus};
use sfence_isa::Program;
use sfence_mem::{AccessOutcome, CoreMemStats, MemConfig, MemorySystem};
use std::collections::HashSet;

/// Whole-machine configuration. Defaults reproduce the paper's
/// Table III: 8-core CMP, 128-entry ROB, 32 KB/4-way L1, 1 MB/8-way
/// L2, 300-cycle memory, 4 FSB entries, 4 FSS entries.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub num_cores: usize,
    pub core: CoreConfig,
    pub mem: MemConfig,
    /// Abort a run after this many cycles (deadlock/livelock guard).
    pub max_cycles: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl MachineConfig {
    /// The paper's Table III parameters.
    pub fn paper_default() -> Self {
        Self {
            num_cores: 8,
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            max_cycles: 200_000_000,
        }
    }

    /// Convenience: set the fence configuration (T, S, T+, S+).
    pub fn with_fence(mut self, fence: FenceConfig) -> Self {
        self.core.fence = fence;
        self
    }

    /// Convenience: set memory latency (Fig. 15 sweep).
    pub fn with_mem_latency(mut self, lat: u64) -> Self {
        self.mem.mem_latency = lat;
        self
    }

    /// Convenience: set ROB size (Fig. 16 sweep).
    pub fn with_rob(mut self, rob: usize) -> Self {
        self.core.rob_size = rob;
        self
    }

    /// Convenience: enable retired-event tracing on every core.
    pub fn with_trace(mut self) -> Self {
        self.core.trace = true;
        self
    }

    /// Convenience: enable the pipeline event trace on every core
    /// (plus the machine's directory-walk events).
    pub fn with_pipe_trace(mut self) -> Self {
        self.core.pipe_trace = true;
        self
    }

    /// Canonical JSON of the *complete* configuration, with object
    /// keys in sorted order: the stable serialization that
    /// content-addressed result caching hashes. Every field that can
    /// change a run's output is listed here — adding a knob to any
    /// config struct must extend this string, which (correctly)
    /// invalidates old cache keys.
    pub fn canonical_json(&self) -> String {
        // Exhaustive destructuring (no `..`): adding a field to any of
        // these config structs fails to compile here until the new
        // knob is serialized — a forgotten knob would silently serve
        // stale cached results for configurations that now differ.
        let MachineConfig {
            num_cores,
            core,
            mem,
            max_cycles,
        } = self;
        let CoreConfig {
            rob_size,
            sb_size,
            issue_width,
            retire_width,
            mispredict_penalty,
            bpred_entries,
            max_outstanding_stores,
            sb_drain_in_order,
            cas_drains_sb,
            fence,
            scope,
            trace,
            pipe_trace,
        } = core;
        let FenceConfig {
            honor_scopes,
            in_window_speculation,
        } = fence;
        let sfence_core::ScopeConfig {
            fsb_entries,
            fss_entries,
            mapping_entries,
            recovery,
            skip_degrade_on_overflow,
        } = scope;
        let sfence_mem::MemConfig {
            line_bytes,
            l1_size,
            l1_ways,
            l1_latency,
            l2_size,
            l2_ways,
            l2_latency,
            mem_latency,
            remote_dirty_penalty,
        } = mem;
        let recovery = match recovery {
            sfence_core::ScopeRecovery::ShadowStack => "shadow_stack",
            sfence_core::ScopeRecovery::Checkpoint => "checkpoint",
        };
        format!(
            concat!(
                "{{\"core\":{{",
                "\"bpred_entries\":{},",
                "\"cas_drains_sb\":{},",
                "\"fence\":{{\"honor_scopes\":{},\"in_window_speculation\":{}}},",
                "\"issue_width\":{},",
                "\"max_outstanding_stores\":{},",
                "\"mispredict_penalty\":{},",
                "\"pipe_trace\":{},",
                "\"retire_width\":{},",
                "\"rob_size\":{},",
                "\"sb_drain_in_order\":{},",
                "\"sb_size\":{},",
                "\"scope\":{{\"fsb_entries\":{},\"fss_entries\":{},",
                "\"mapping_entries\":{},\"recovery\":\"{}\",",
                "\"skip_degrade_on_overflow\":{}}},",
                "\"trace\":{}}},",
                "\"max_cycles\":{},",
                "\"mem\":{{",
                "\"l1_latency\":{},\"l1_size\":{},\"l1_ways\":{},",
                "\"l2_latency\":{},\"l2_size\":{},\"l2_ways\":{},",
                "\"line_bytes\":{},\"mem_latency\":{},",
                "\"remote_dirty_penalty\":{}}},",
                "\"num_cores\":{}}}"
            ),
            bpred_entries,
            cas_drains_sb,
            honor_scopes,
            in_window_speculation,
            issue_width,
            max_outstanding_stores,
            mispredict_penalty,
            pipe_trace,
            retire_width,
            rob_size,
            sb_drain_in_order,
            sb_size,
            fsb_entries,
            fss_entries,
            mapping_entries,
            recovery,
            skip_degrade_on_overflow,
            trace,
            max_cycles,
            l1_latency,
            l1_size,
            l1_ways,
            l2_latency,
            l2_size,
            l2_ways,
            line_bytes,
            mem_latency,
            remote_dirty_penalty,
            num_cores,
        )
    }
}

/// A watched write, recorded when a store/CAS to a watched address
/// completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchEvent {
    pub cycle: u64,
    pub core: usize,
    pub addr: usize,
    pub old: i64,
    pub new: i64,
}

struct MachineBus<'a> {
    memsys: &'a mut MemorySystem,
    mem: &'a mut [i64],
    watch_addrs: &'a HashSet<usize>,
    watch_log: &'a mut Vec<WatchEvent>,
    /// Writes performed this cycle, for in-window-speculation
    /// coherence probes.
    write_probes: &'a mut Vec<(usize, usize)>,
    now: u64,
    /// Emit `DirWalk` pipe events for accesses that reach the
    /// L2/directory (mirrors `cfg.core.pipe_trace`).
    pipe_trace: bool,
    pipe: &'a mut Vec<PipeEvent>,
}

impl MemBus for MachineBus<'_> {
    fn access_latency(&mut self, core: usize, addr: usize, write: bool) -> u64 {
        let (lat, outcome) = self.memsys.access(core, addr, write);
        if self.pipe_trace {
            let walk = match outcome {
                AccessOutcome::L1Hit => None,
                AccessOutcome::Upgrade => Some(WalkKind::Upgrade),
                AccessOutcome::L2Hit => Some(WalkKind::L2Hit),
                AccessOutcome::RemoteDirty => Some(WalkKind::RemoteDirty),
                AccessOutcome::MemMiss => Some(WalkKind::MemMiss),
            };
            if let Some(walk) = walk {
                self.pipe.push(PipeEvent {
                    core: core as u32,
                    cycle: self.now,
                    kind: PipeKind::DirWalk {
                        addr: addr as u64,
                        write,
                        walk,
                        latency: lat,
                    },
                });
            }
        }
        lat
    }

    fn read(&mut self, addr: usize) -> i64 {
        self.mem[addr]
    }

    fn write(&mut self, core: usize, addr: usize, val: i64) {
        let old = self.mem[addr];
        self.mem[addr] = val;
        self.write_probes.push((core, addr));
        if !self.watch_addrs.is_empty() && self.watch_addrs.contains(&addr) {
            self.watch_log.push(WatchEvent {
                cycle: self.now,
                core,
                addr,
                old,
                new: val,
            });
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every core retired its `halt` and drained.
    Completed,
    /// `max_cycles` elapsed first.
    CycleLimit,
}

/// Results of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub exit: RunExit,
    /// Total execution time: the cycle at which the last core drained.
    pub cycles: u64,
    pub core_stats: Vec<sfence_cpu::CoreStats>,
    pub mem_stats: CoreMemStats,
    pub scope_stats: Vec<sfence_core::ScopeUnitStats>,
    /// Per-core scope-unit path coverage bitmaps
    /// ([`sfence_core::coverage`]) — the fuzzer's corpus key.
    pub scope_coverage: Vec<u32>,
}

/// Average across *active* cores (those that retired instructions) of
/// the fraction of `cycles` spent stalled on fences — the paper's
/// "Fence Stalls" bar component. Zero-cycle or all-idle runs report
/// 0.0. The one definition shared by `RunSummary` and the harness's
/// `RunReport`.
pub fn fence_stall_fraction(core_stats: &[sfence_cpu::CoreStats], cycles: u64) -> f64 {
    let active: Vec<&sfence_cpu::CoreStats> =
        core_stats.iter().filter(|s| s.instrs_retired > 0).collect();
    if active.is_empty() || cycles == 0 {
        return 0.0;
    }
    active
        .iter()
        .map(|s| s.fence_stall_cycles as f64 / cycles as f64)
        .sum::<f64>()
        / active.len() as f64
}

impl RunSummary {
    /// Average across cores of the fraction of cycles stalled on
    /// fences (the paper's "Fence Stalls" bar component).
    pub fn fence_stall_fraction(&self) -> f64 {
        fence_stall_fraction(&self.core_stats, self.cycles)
    }

    /// Aggregate fence stall cycles.
    pub fn total_fence_stalls(&self) -> u64 {
        self.core_stats.iter().map(|s| s.fence_stall_cycles).sum()
    }

    pub fn total_retired(&self) -> u64 {
        self.core_stats.iter().map(|s| s.instrs_retired).sum()
    }
}

/// The machine.
pub struct Machine {
    cores: Vec<Core>,
    memsys: MemorySystem,
    pub mem: Vec<i64>,
    watch_addrs: HashSet<usize>,
    pub watch_log: Vec<WatchEvent>,
    write_probes: Vec<(usize, usize)>,
    /// Directory-walk pipe events (the bus's share of the pipeline
    /// trace; empty unless `cfg.core.pipe_trace`).
    pipe_bus: Vec<PipeEvent>,
    now: u64,
    cfg: MachineConfig,
}

impl Machine {
    /// Build a machine for a compiled program. The program may use at
    /// most `cfg.num_cores` threads.
    pub fn new(program: &Program, cfg: MachineConfig) -> Self {
        assert!(
            program.num_threads() <= cfg.num_cores,
            "program has {} threads but the machine has {} cores",
            program.num_threads(),
            cfg.num_cores
        );
        let cores = (0..cfg.num_cores)
            .map(|i| {
                let code = program.threads.get(i).cloned().unwrap_or_default();
                Core::new(i, code, cfg.core.clone())
            })
            .collect();
        Self {
            cores,
            memsys: MemorySystem::new(cfg.num_cores, cfg.mem),
            mem: program.initial_memory(),
            watch_addrs: HashSet::new(),
            watch_log: Vec::new(),
            write_probes: Vec::new(),
            pipe_bus: Vec::new(),
            now: 0,
            cfg,
        }
    }

    /// Restore the machine to its pre-run state — cycle 0, fresh
    /// cores, caches, memory image and statistics — keeping the
    /// configuration and watchpoints. Reuse exists so a caller can
    /// re-run a program without re-paying construction; behaviourally
    /// a reset machine is indistinguishable from a new one.
    ///
    /// The cores and memory system are rebuilt wholesale rather than
    /// cleared field by field: a core carries per-run derived state
    /// (event heap, dispatch queues, disambiguation deques, stats
    /// counters) and a field-wise reset that missed one would
    /// silently leak it — inflated counters, or worse, stale events —
    /// into the next run's report.
    pub fn reset(&mut self, program: &Program) {
        assert!(
            program.num_threads() <= self.cfg.num_cores,
            "program has {} threads but the machine has {} cores",
            program.num_threads(),
            self.cfg.num_cores
        );
        self.cores = (0..self.cfg.num_cores)
            .map(|i| {
                let code = program.threads.get(i).cloned().unwrap_or_default();
                Core::new(i, code, self.cfg.core.clone())
            })
            .collect();
        self.memsys = MemorySystem::new(self.cfg.num_cores, self.cfg.mem);
        self.mem = program.initial_memory();
        self.watch_log.clear();
        self.write_probes.clear();
        self.pipe_bus.clear();
        self.now = 0;
    }

    /// Watch writes to an address (mutual-exclusion checks etc.).
    pub fn watch(&mut self, addr: usize) {
        self.watch_addrs.insert(addr);
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance one cycle (all cores, in core order), then deliver
    /// coherence probes for this cycle's writes (in-window speculation
    /// violation replay — no-ops unless speculation is enabled).
    pub fn step(&mut self) {
        let now = self.now;
        let pipe_trace = self.cfg.core.pipe_trace;
        for core in &mut self.cores {
            let mut bus = MachineBus {
                memsys: &mut self.memsys,
                mem: &mut self.mem,
                watch_addrs: &self.watch_addrs,
                watch_log: &mut self.watch_log,
                write_probes: &mut self.write_probes,
                now,
                pipe_trace,
                pipe: &mut self.pipe_bus,
            };
            core.cycle(now, &mut bus);
        }
        if !self.write_probes.is_empty() {
            let probes = std::mem::take(&mut self.write_probes);
            for &(writer, addr) in &probes {
                for (i, core) in self.cores.iter_mut().enumerate() {
                    if i != writer {
                        core.coherence_probe(addr, now);
                    }
                }
            }
            self.write_probes = probes;
            self.write_probes.clear();
        }
        self.now += 1;
    }

    pub fn finished(&self) -> bool {
        self.cores.iter().all(Core::finished)
    }

    /// Run to completion (or the cycle limit) and summarise.
    pub fn run(&mut self) -> RunSummary {
        while !self.finished() && self.now < self.cfg.max_cycles {
            self.step();
        }
        let exit = if self.finished() {
            RunExit::Completed
        } else {
            RunExit::CycleLimit
        };
        RunSummary {
            exit,
            cycles: self
                .cores
                .iter()
                .filter_map(|c| c.stats.finished_at)
                .max()
                .unwrap_or(self.now),
            core_stats: self.cores.iter().map(|c| c.stats.clone()).collect(),
            mem_stats: self.memsys.total_stats(),
            scope_stats: self.cores.iter().map(|c| c.scope_stats()).collect(),
            scope_coverage: self
                .cores
                .iter()
                .map(|c| c.scope_coverage().bits())
                .collect(),
        }
    }

    /// Per-core retired-event traces (requires `core.trace`).
    pub fn traces(&self) -> Vec<&[sfence_core::RetiredEvent]> {
        self.cores.iter().map(|c| c.trace.as_slice()).collect()
    }

    /// The merged pipeline event trace (requires `core.pipe_trace`):
    /// every core's events plus the bus's directory walks, stably
    /// sorted by `(cycle, core)` so the stream is a pure function of
    /// the workload and configuration — independent of how the caller
    /// schedules runs across host threads.
    pub fn pipe_trace(&self) -> Vec<PipeEvent> {
        let mut all: Vec<PipeEvent> = Vec::with_capacity(
            self.cores.iter().map(|c| c.pipe.len()).sum::<usize>() + self.pipe_bus.len(),
        );
        for core in &self.cores {
            all.extend_from_slice(&core.pipe);
        }
        all.extend_from_slice(&self.pipe_bus);
        all.sort_by_key(|e| (e.cycle, e.core));
        all
    }

    /// Snapshot of every core's architectural register file (retired
    /// state). Together with the final memory this is the complete
    /// observable final state of a run.
    pub fn reg_snapshot(&self) -> Vec<Vec<i64>> {
        self.cores.iter().map(|c| c.arch_regs().to_vec()).collect()
    }

    /// Read a word of the final memory by symbol, via the program.
    pub fn read_word(&self, addr: usize) -> i64 {
        self.mem[addr]
    }

    pub fn mem_system(&self) -> &MemorySystem {
        &self.memsys
    }
}

/// Everything a finished run produced: the summary plus the final
/// memory image, watchpoint log and (if tracing was enabled) the
/// per-core retired-event traces.
///
/// This is the one sanctioned way to execute a program — every layer
/// above `sfence-sim` (the `sfence-harness` `Session`, and through it
/// the workloads, experiments, examples and tests) goes through
/// [`execute`] rather than driving a [`Machine`] by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutput {
    pub summary: RunSummary,
    /// Final flat memory image.
    pub mem: Vec<i64>,
    /// Writes to watched addresses, in completion order.
    pub watch_log: Vec<WatchEvent>,
    /// Per-core retired-event traces (empty unless `cfg.core.trace`).
    pub traces: Vec<Vec<sfence_core::RetiredEvent>>,
    /// Merged pipeline event trace, sorted by `(cycle, core)` (empty
    /// unless `cfg.core.pipe_trace`). In-memory only: deliberately
    /// excluded from the harness's serialized `RunReport` so report
    /// schemas and golden digests are untouched by tracing.
    pub pipe: Vec<PipeEvent>,
    /// Per-core architectural register snapshot at the end of the run
    /// (retired state).
    pub regs: Vec<Vec<i64>>,
}

/// Run `program` under `cfg`, watching writes to `watch`, and return
/// the full output of the run.
pub fn execute(program: &Program, cfg: MachineConfig, watch: &[usize]) -> ExecOutput {
    let trace = cfg.core.trace;
    let pipe_trace = cfg.core.pipe_trace;
    let mut m = Machine::new(program, cfg);
    for &addr in watch {
        m.watch(addr);
    }
    let summary = m.run();
    let traces = if trace {
        m.traces().iter().map(|t| t.to_vec()).collect()
    } else {
        Vec::new()
    };
    let pipe = if pipe_trace {
        m.pipe_trace()
    } else {
        Vec::new()
    };
    let regs = m.reg_snapshot();
    ExecOutput {
        summary,
        mem: m.mem,
        watch_log: m.watch_log,
        traces,
        pipe,
        regs,
    }
}
