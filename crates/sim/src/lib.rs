//! # sfence-sim
//!
//! The multicore machine of the Fence Scoping reproduction: N
//! out-of-order cores (`sfence-cpu`) over a shared cache hierarchy
//! (`sfence-mem`) and a flat functional word memory, stepped in
//! deterministic core order — the execution-driven substrate standing
//! in for SESC.

pub mod machine;

pub use machine::{
    execute, fence_stall_fraction, ExecOutput, Machine, MachineConfig, RunExit, RunSummary,
    WatchEvent,
};
pub use sfence_cpu::{CoreConfig, FenceConfig};
pub use sfence_mem::MemConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::ir::*;
    use sfence_isa::CompileOpts;
    use sfence_isa::Program;

    fn compile(p: &IrProgram) -> Program {
        p.compile(&CompileOpts::default()).expect("compile")
    }

    fn run_program(program: &Program, cfg: MachineConfig) -> (RunSummary, Vec<i64>) {
        let out = execute(program, cfg, &[]);
        (out.summary, out.mem)
    }

    fn small_cfg(fence: FenceConfig) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = 2;
        cfg.max_cycles = 5_000_000;
        cfg
    }

    /// Message passing: producer warms the flag line (so its drain is
    /// a fast upgrade) while the data store drains cold. Each variable
    /// sits on its own cache line.
    fn mp_program(with_fences: bool) -> (Program, usize) {
        let mut p = IrProgram::new();
        let data = p.shared_line("data");
        let flag = p.shared_line("flag");
        let got = p.global_line("got");
        p.thread(move |b| {
            // Warm the flag line (read miss brings it in shared).
            b.let_("warm", ld(flag.cell()));
            b.store(data.cell(), c(42)); // cold: slow drain
            if with_fences {
                b.fence();
            }
            b.store(flag.cell(), c(1)); // warm: fast drain
            b.halt();
        });
        p.thread(move |b| {
            b.spin_until(ld(flag.cell()).eq(c(1)));
            if with_fences {
                b.fence();
            }
            b.store(got.cell(), ld(data.cell()));
            b.halt();
        });
        let prog = compile(&p);
        let got_addr = prog.addr_of("got");
        (prog, got_addr)
    }

    /// Without a fence, the RMO store buffer drains the warm flag line
    /// long before the cold data line: the *writes* reach memory out
    /// of program order (observed directly via watchpoints). With a
    /// fence, drain order is restored. Single-threaded on purpose: a
    /// consumer's wrong-path loads would prefetch the data line and
    /// hide the effect.
    #[test]
    fn store_store_drain_reorders_without_fences() {
        for fenced in [false, true] {
            let mut p = IrProgram::new();
            let data = p.shared_line("data");
            let flag = p.shared_line("flag");
            p.thread(move |b| {
                b.let_("warm", ld(flag.cell())); // flag line now resident
                b.store(data.cell(), c(42)); // cold line: slow drain
                if fenced {
                    b.fence();
                }
                b.store(flag.cell(), c(1)); // warm line: fast drain
                b.halt();
            });
            let prog = compile(&p);
            let data_addr = prog.addr_of("data");
            let flag_addr = prog.addr_of("flag");
            let mut m = Machine::new(&prog, small_cfg(FenceConfig::TRADITIONAL));
            m.watch(data_addr);
            m.watch(flag_addr);
            m.run();
            let writes: Vec<usize> = m.watch_log.iter().map(|w| w.addr).collect();
            if fenced {
                assert_eq!(
                    writes,
                    vec![data_addr, flag_addr],
                    "fence must force program-order drain"
                );
            } else {
                assert_eq!(
                    writes,
                    vec![flag_addr, data_addr],
                    "RMO drain must let the warm flag overtake the cold data"
                );
            }
        }
    }

    #[test]
    fn message_passing_ordered_with_fences() {
        let (prog, got) = mp_program(true);
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            let (summary, mem) = run_program(&prog, small_cfg(fence));
            assert_eq!(summary.exit, RunExit::Completed, "{}", fence.label());
            assert_eq!(mem[got], 42, "{}", fence.label());
        }
    }

    /// Store-buffering (Dekker) litmus: both threads may read 0
    /// without fences; never with full fences; and a *set* fence whose
    /// variable set does not include the flags must NOT restore order
    /// (the defining property of scope). Both flag lines are
    /// pre-warmed in both cores so the loads hit in L1 and bind their
    /// values before either store drains.
    fn sb_program(fence: Option<&'static str>) -> Program {
        let mut p = IrProgram::new();
        let f0 = p.shared_line("flag0");
        let f1 = p.shared_line("flag1");
        let r0 = p.global_line("r0");
        let r1 = p.global_line("r1");
        let other = p.shared_line("other");
        let mk = move |b: &mut BlockBuilder, mine: Global, theirs: Global, out: Global| {
            // Warm both flag lines (shared) before the race.
            b.let_("w0", ld(f0.cell()));
            b.let_("w1", ld(f1.cell()));
            b.store(mine.cell(), c(1));
            match fence {
                Some("full") => b.fence(),
                Some("set-flags") => b.fence_set(&[f0, f1]),
                Some("set-other") => b.fence_set(&[other]),
                _ => {}
            }
            b.store(out.cell(), ld(theirs.cell()));
            b.halt();
        };
        p.thread(move |b| mk(b, f0, f1, r0));
        p.thread(move |b| mk(b, f1, f0, r1));
        compile(&p)
    }

    fn run_sb(fence: Option<&'static str>, cfg: FenceConfig) -> (i64, i64) {
        let prog = sb_program(fence);
        let (summary, mem) = run_program(&prog, small_cfg(cfg));
        assert_eq!(summary.exit, RunExit::Completed);
        (mem[prog.addr_of("r0")], mem[prog.addr_of("r1")])
    }

    #[test]
    fn store_buffering_observed_without_fences() {
        let (r0, r1) = run_sb(None, FenceConfig::SFENCE);
        assert_eq!((r0, r1), (0, 0), "store buffering must be visible on RMO");
    }

    #[test]
    fn store_buffering_forbidden_with_full_fences() {
        for cfg in [FenceConfig::TRADITIONAL, FenceConfig::SFENCE] {
            let (r0, r1) = run_sb(Some("full"), cfg);
            assert!(
                r0 == 1 || r1 == 1,
                "{}: SB outcome (0,0) forbidden",
                cfg.label()
            );
        }
    }

    #[test]
    fn store_buffering_forbidden_with_matching_set_fence() {
        let (r0, r1) = run_sb(Some("set-flags"), FenceConfig::SFENCE);
        assert!(
            r0 == 1 || r1 == 1,
            "set fence over the flags must order them"
        );
    }

    #[test]
    fn set_fence_with_wrong_scope_does_not_order() {
        // The fence names `other`, so flag accesses are out of scope:
        // the relaxed outcome must survive — this is exactly what
        // distinguishes S-Fence from a traditional fence.
        let (r0, r1) = run_sb(Some("set-other"), FenceConfig::SFENCE);
        assert_eq!((r0, r1), (0, 0));
        // But run traditionally (scopes ignored), the same binary is
        // fully ordered again.
        let (r0, r1) = run_sb(Some("set-other"), FenceConfig::TRADITIONAL);
        assert!(r0 == 1 || r1 == 1);
    }

    #[test]
    fn watchpoints_record_writes() {
        let mut p = IrProgram::new();
        let x = p.shared("x");
        p.thread(move |b| {
            b.store(x.cell(), c(1));
            b.store(x.cell(), c(2));
            b.halt();
        });
        let prog = compile(&p);
        let mut m = Machine::new(&prog, small_cfg(FenceConfig::SFENCE));
        m.watch(prog.addr_of("x"));
        m.run();
        assert_eq!(m.watch_log.len(), 2);
        assert_eq!(m.watch_log[0].new, 1);
        assert_eq!(m.watch_log[1].old, 1);
        assert_eq!(m.watch_log[1].new, 2);
    }

    #[test]
    fn determinism_same_program_same_cycles() {
        let (prog, _) = mp_program(true);
        let (a, mem_a) = run_program(&prog, small_cfg(FenceConfig::SFENCE));
        let (b, mem_b) = run_program(&prog, small_cfg(FenceConfig::SFENCE));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(mem_a, mem_b);
    }

    #[test]
    fn idle_cores_cost_nothing() {
        let mut p = IrProgram::new();
        let x = p.global("x");
        p.thread(move |b| {
            b.store(x.cell(), c(1));
            b.halt();
        });
        let prog = compile(&p);
        let num_threads = prog.num_threads();
        let mut cfg = MachineConfig::paper_default();
        cfg.max_cycles = 100_000;
        let (summary, _) = run_program(&prog, cfg);
        assert_eq!(summary.exit, RunExit::Completed);
        // Every core beyond the program's threads must be inert.
        assert!(num_threads < summary.core_stats.len());
        for (i, s) in summary.core_stats.iter().enumerate().skip(num_threads) {
            assert_eq!(s.instrs_retired, 0, "idle core {i} retired instructions");
            assert_eq!(s.instrs_issued, 0, "idle core {i} issued instructions");
            assert_eq!(s.fence_stall_cycles, 0, "idle core {i} stalled on fences");
        }
    }

    /// `fence_stall_fraction` on a degenerate zero-cycle summary must
    /// not divide by zero.
    #[test]
    fn zero_cycle_summary_has_zero_stall_fraction() {
        let summary = RunSummary {
            exit: RunExit::Completed,
            cycles: 0,
            core_stats: vec![sfence_cpu::CoreStats {
                instrs_retired: 1,
                fence_stall_cycles: 5,
                ..Default::default()
            }],
            mem_stats: Default::default(),
            scope_stats: Vec::new(),
            scope_coverage: Vec::new(),
        };
        assert_eq!(summary.fence_stall_fraction(), 0.0);
    }

    #[test]
    fn traces_conform_across_cores() {
        let (prog, _) = mp_program(true);
        let mut cfg = small_cfg(FenceConfig::SFENCE).with_trace();
        cfg.max_cycles = 5_000_000;
        let mut m = Machine::new(&prog, cfg);
        m.run();
        for (i, t) in m.traces().iter().enumerate() {
            sfence_core::check_trace(t).unwrap_or_else(|v| panic!("core {i}: {v}"));
        }
    }
}
