//! Litmus determinism and integration: same seed ⇒ byte-identical
//! generated programs and byte-identical campaign verdicts across
//! worker-thread counts and shard splits; generated scenarios run
//! through the ordinary `Experiment` sweep machinery unchanged.

use sfence_harness::{Axis, BackendId, Experiment, Shard};
use sfence_litmus::{cases, run_campaign, run_case, CheckerConfig, Family, LitmusSpec, FAMILIES};
use sfence_sim::FenceConfig;
use sfence_workloads::litmus::build;
use sfence_workloads::WorkloadParams;

const SEEDS: u64 = 4;

#[test]
fn same_seed_byte_identical_programs() {
    for family in FAMILIES {
        for seed in 0..SEEDS {
            let a = build(&LitmusSpec::new(family, seed));
            let b = build(&LitmusSpec::new(family, seed));
            for t in 0..a.program.num_threads() {
                assert_eq!(
                    a.program.disasm(t),
                    b.program.disasm(t),
                    "{}/{seed}: thread {t} disassembly differs between builds",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn campaign_json_identical_across_thread_counts() {
    let checker = CheckerConfig::default();
    let serial = run_campaign(&FAMILIES, SEEDS, 1, &checker, BackendId::Sim).unwrap();
    let parallel = run_campaign(&FAMILIES, SEEDS, 8, &checker, BackendId::Sim).unwrap();
    assert_eq!(
        serial.to_json().to_string_pretty(),
        parallel.to_json().to_string_pretty(),
        "campaign verdict must not depend on the worker-thread count"
    );
}

#[test]
fn shard_union_equals_full_campaign() {
    let checker = CheckerConfig::default();
    let families = [Family::Sb, Family::SbWrongSet, Family::PcDeep];
    let full = run_campaign(&families, SEEDS, 4, &checker, BackendId::Sim).unwrap();
    let list = cases(&families, SEEDS);
    let mut merged: Vec<Option<sfence_litmus::CaseVerdict>> = vec![None; list.len()];
    for index in 0..3 {
        let shard = Shard::new(index, 3);
        for (i, &case) in list.iter().enumerate() {
            if shard.contains(i) {
                assert!(merged[i].is_none(), "shards must be disjoint");
                merged[i] = Some(run_case(case, &checker, BackendId::Sim).unwrap());
            }
        }
    }
    let merged: Vec<_> = merged.into_iter().map(Option::unwrap).collect();
    assert_eq!(merged, full.cases, "shard union must equal the full run");
}

#[test]
fn case_json_round_trips() {
    let checker = CheckerConfig::default();
    for family in [Family::Mp, Family::SbWrongSet, Family::Cas] {
        let verdict = run_case(
            sfence_litmus::Case { family, seed: 1 },
            &checker,
            BackendId::Sim,
        )
        .unwrap();
        let json = sfence_litmus::case_to_json(&verdict);
        let back = sfence_litmus::case_from_json(&json).unwrap();
        assert_eq!(back, verdict);
    }
}

/// The paper's safety claims, pinned as a test: covering scopes stay
/// SC everywhere (including forced FSB/FSS overflow), non-covering
/// scopes demonstrate the relaxed outcome somewhere, and the degrade
/// path really runs.
#[test]
fn expectations_hold_on_a_small_campaign() {
    let checker = CheckerConfig::default();
    let campaign = run_campaign(&FAMILIES, SEEDS, 8, &checker, BackendId::Sim).unwrap();
    let s = campaign.summary();
    assert_eq!(s.covering_violations, 0, "covering scopes must stay SC");
    assert!(
        s.noncovering_scope_violations > 0,
        "non-covering scopes must demonstrate a relaxed outcome"
    );
    assert!(
        s.overflow_degraded_fences > 0,
        "the forced-overflow config must actually degrade fences"
    );
}

/// The deep-nesting family must overflow the FSS even at the default
/// scope-hardware size for some seed (depth 3..=6 vs 4 FSS entries),
/// proving the stress shape does what its name claims.
#[test]
fn pc_deep_overflows_default_hardware() {
    let checker = CheckerConfig::default();
    let mut degraded = 0;
    for seed in 0..SEEDS {
        let verdict = run_case(
            sfence_litmus::Case {
                family: Family::PcDeep,
                seed,
            },
            &checker,
            BackendId::Sim,
        )
        .unwrap();
        let s_run = verdict.runs.iter().find(|r| r.config == "S").unwrap();
        assert!(s_run.sc_allowed);
        degraded += s_run.degraded_fences;
    }
    assert!(
        degraded > 0,
        "pc-deep never overflowed the default 4-entry FSS"
    );
}

/// Generated scenarios are ordinary registry workloads: an
/// `Experiment` sweep over `litmus/<family>/<seed>` names runs,
/// shards and serializes exactly like the Table IV benchmarks.
#[test]
fn litmus_names_sweep_through_experiment() {
    let experiment = Experiment::new("litmus-int")
        .workloads(
            ["litmus/sb/0", "litmus/mp/1", "litmus/cas/2"],
            WorkloadParams::small(),
        )
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::None);
    assert_eq!(experiment.job_count(), 6);
    let serial = experiment.run_serial();
    let parallel = experiment.run(4);
    assert_eq!(serial.to_json_string(), parallel.to_json_string());
    assert!(serial.cycles("litmus/sb/0", "T", "") > 0);
}
