//! # sfence-litmus
//!
//! The litmus subsystem of the Fence Scoping reproduction: it turns
//! the cycle simulator from a performance model into a *testable*
//! one.
//!
//! Three layers:
//!
//! - **Generation** lives in `sfence_workloads::litmus`: a
//!   deterministic, seeded generator of small concurrent programs
//!   over the `sfence-isa` IR — message passing, store buffering,
//!   IRIW, CAS loops and fenced producer/consumer shapes, each with
//!   class- and set-scoped fences placed so the scope either covers
//!   the racing accesses or deliberately does not. Scenarios register
//!   into the workload catalog as `litmus/<family>/<seed>`, so
//!   `Experiment` sweeps, the result cache, sharding and the result
//!   store run them unchanged.
//! - **[`checker`]**: an SC reference checker that enumerates the
//!   interleavings of a compiled program (bounded, with a
//!   commuting-step partial-order reduction and state memoization)
//!   and computes the complete set of SC-allowed final states. The
//!   implementation lives in `sfence_harness::enumerate` (it is the
//!   harness's `EnumerativeBackend`); this module re-exports it.
//! - **[`campaign`]**: the differential runner — every scenario
//!   executes (through the harness `Backend` trait, on the simulator
//!   by default or the functional engine with `--backend functional`)
//!   under traditional fences, scoped fences, forced FSB/FSS overflow
//!   and with fences removed; observed final states are judged
//!   against the enumerator's set. Covering scopes must stay SC
//!   (including under overflow, where fences degrade to full fences);
//!   non-covering scopes are expected to demonstrate relaxed outcomes
//!   on the simulator, and the campaign counts the demonstrations.
//!
//! The `sfence-litmus` binary drives bulk campaigns
//! (`--families all --seeds 50 --shard I/N --json`) with the same
//! exit-code conventions as `sfence-sweep`.

pub mod campaign;
pub mod checker;

pub use campaign::{
    all_families, case_from_json, case_to_json, cases, overflow_scope, parse_families,
    run_campaign, run_case, summarize, Campaign, Case, CaseVerdict, RunVerdict, Summary,
};
pub use checker::{enumerate_sc, CheckerConfig, ScOutcomes};
pub use sfence_workloads::litmus::{
    build, parse_name, scenario_name, Family, LitmusSpec, FAMILIES, LITMUS_PREFIX,
};
