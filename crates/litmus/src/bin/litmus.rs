//! `sfence-litmus`: bulk differential litmus campaigns.
//!
//! ```text
//! sfence-litmus [--families all|mp,sb,...]  scenario families (default: all)
//!               [--seeds N]                 seeds per family (default: 10)
//!               [--threads N]               worker threads (default: one per CPU)
//!               [--backend sim|functional]  execution engine (default: sim)
//!               [--shard I/N]               run one shard; emit indexed JSONL cases
//!               [--json]                    machine-readable campaign verdict
//!               [--list-families]           print the families and exit
//! ```
//!
//! Every case runs the scenario under `T` (traditional fences), `S`
//! (scoped fences), `S-overflow` (scoped fences on deliberately tiny
//! FSB/FSS hardware — the degrade-to-full-fence path) and
//! `S-nofence` (fences stripped), and judges each observed final
//! state against the SC reference checker's allowed set.
//!
//! `--backend functional` runs the matrix on the fast SC interpreter
//! instead of the cycle simulator: every observed state must then be
//! SC-allowed (it cross-checks the interpreter against the
//! enumerator), and the relaxed-outcome demonstration requirement is
//! waived — an SC engine cannot exhibit relaxation.
//!
//! Output is deterministic: byte-identical across `--threads`
//! choices, and `--shard` outputs (JSONL, tagged with case indices)
//! merge into exactly the unsharded document.
//!
//! Exit codes: 0 expectations hold, 1 runtime error, 2 usage error,
//! 4 expectation failure — a covering scope observed a non-SC state,
//! or a non-covering family failed to demonstrate any relaxed
//! outcome.

use sfence_harness::{default_threads, BackendId, Json, Shard};
use sfence_litmus::{
    all_families, case_to_json, cases, parse_families, run_campaign, run_case, Campaign,
    CheckerConfig, Family,
};

struct Args {
    families: Vec<Family>,
    seeds: u64,
    threads: Option<usize>,
    backend: BackendId,
    shard: Option<Shard>,
    json: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        families: all_families(),
        seeds: 10,
        threads: None,
        backend: BackendId::Sim,
        shard: None,
        json: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    let take = |it: &mut dyn Iterator<Item = String>, flag: &str| -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} expects a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--families" => args.families = parse_families(&take(&mut it, "--families")?)?,
            "--seeds" => {
                args.seeds = take(&mut it, "--seeds")?
                    .parse()
                    .map_err(|_| "--seeds expects a non-negative integer".to_string())?;
            }
            "--backend" => {
                let backend = BackendId::parse(&take(&mut it, "--backend")?)?;
                if backend == BackendId::Enumerative {
                    // The enumerator already judges every case; it is
                    // not an execution engine for the matrix.
                    return Err("--backend expects sim or functional".into());
                }
                args.backend = backend;
            }
            "--threads" => {
                let n: usize = take(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                args.threads = Some(n);
            }
            "--shard" => args.shard = Some(Shard::parse(&take(&mut it, "--shard")?)?),
            "--json" => args.json = true,
            "--list-families" => args.list = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!(
            "usage: sfence-litmus [--families all|a,b] [--seeds N] [--backend sim|functional] \
             [--shard I/N] [--json]"
        );
        std::process::exit(2);
    });
    if args.list {
        print!(
            "{}",
            sfence_workloads::litmus::family_listing(|f| f.name().to_string())
        );
        return;
    }
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let checker = CheckerConfig::default();
    let list = cases(&args.families, args.seeds);
    let threads = args.threads.unwrap_or_else(|| default_threads(list.len()));

    if let Some(shard) = args.shard {
        // Shard worker: judge this shard's cases and emit them as
        // index-tagged JSONL for a parent (or a test harness) to
        // merge; expectations are enforced on the merged whole, not
        // per shard.
        let selected: Vec<usize> = (0..list.len()).filter(|&i| shard.contains(i)).collect();
        let verdicts = sfence_harness::run_indexed(selected.len(), threads, |k| {
            run_case(list[selected[k]], &checker, args.backend)
        });
        let mut out = String::new();
        for (k, verdict) in verdicts.into_iter().enumerate() {
            let verdict = verdict?;
            let line = Json::obj()
                .field("case", selected[k])
                .field("verdict", case_to_json(&verdict));
            out.push_str(&line.to_string_compact());
            out.push('\n');
        }
        print!("{out}");
        return Ok(());
    }

    let campaign = run_campaign(&args.families, args.seeds, threads, &checker, args.backend)?;
    if args.json {
        print!("{}", campaign.to_json().to_string_pretty());
        eprintln!("{}", campaign.summary_line());
    } else {
        print!("{}", campaign.to_ascii());
    }
    enforce_expectations(&campaign);
    Ok(())
}

/// Exit 4 when the campaign's safety expectations fail. Split out so
/// both output modes run it after printing.
fn enforce_expectations(campaign: &Campaign) {
    let s = campaign.summary();
    let mut failed = false;
    if s.covering_violations > 0 {
        eprintln!(
            "FAIL: {} run(s) with a covering scope observed a non-SC final state",
            s.covering_violations
        );
        failed = true;
    }
    // Only the weakly-ordered simulator can demonstrate relaxed
    // outcomes; a functional (SC) campaign is judged on safety alone.
    let ran_noncovering = campaign.families.iter().any(|f| !f.covering())
        && campaign.seeds > 0
        && campaign.can_demonstrate_relaxation();
    if ran_noncovering && s.noncovering_scope_violations == 0 {
        eprintln!(
            "FAIL: non-covering families ran but demonstrated no relaxed outcome \
             (the scope boundary should be observable)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(4);
    }
}
