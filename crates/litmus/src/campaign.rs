//! The differential campaign: run every generated scenario — through
//! the harness `Backend` trait, on the cycle simulator by default —
//! under traditional fences, scoped fences, forced FSB/FSS overflow
//! and with fences removed, and judge each observed final state
//! against the allowed set the enumerative backend computes.
//!
//! A campaign on the functional backend checks the SC interpreter
//! against the enumerator (every observed state must be allowed) and
//! exercises the whole pipeline without the timing model; relaxed
//! outcomes can only be *demonstrated* on the simulator, so that
//! expectation is waived off-sim ([`Campaign::can_demonstrate_relaxation`]).
//!
//! Expectations encode the paper's safety argument (§IV, §VI-E):
//!
//! - **`T`** (traditional fences, scopes ignored): every family —
//!   covering or not — must observe an SC-allowed state, because the
//!   generated fence placement is a correct delay-set placement once
//!   scopes are ignored.
//! - **`S`** (scoped fences): covering families must stay SC;
//!   non-covering families are *expected* to demonstrate relaxed
//!   outcomes — that is the defining property of scope, and the
//!   campaign counts these demonstrations.
//! - **`S-overflow`** (scoped fences on deliberately tiny scope
//!   hardware): scopes overflow and fences degrade to full fences, so
//!   covering families must stay SC — correctness never depends on
//!   capacity.
//! - **`S-nofence`** (fences stripped at generation): no expectation;
//!   relaxed outcomes are counted as demonstrations.
//!
//! Results serialize to deterministic JSON: case order, run order and
//! every value are functions of `(families, seeds)` alone, so output
//! is byte-identical across worker-thread counts, and shard outputs
//! merge into exactly the unsharded document.

use crate::checker::{enumerate_sc, CheckerConfig};
use sfence_harness::{run_indexed, BackendId, Json, Session, SCHEMA_VERSION};
use sfence_sim::{FenceConfig, MachineConfig, RunExit};
use sfence_workloads::litmus::{build, Family, LitmusSpec, FAMILIES};

/// One scheduled scenario of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case {
    pub family: Family,
    pub seed: u64,
}

/// The deterministic case list: family-major (in [`FAMILIES`] order),
/// then seed. Shards partition *this* list by index.
///
/// The regression family is indexed, not seeded: every registered
/// [`sfence_workloads::synth::REGRESSIONS`] entry runs exactly once
/// regardless of `--seeds` — minimized fuzzer findings are replayed
/// in full by every campaign that includes the family.
pub fn cases(families: &[Family], seeds: u64) -> Vec<Case> {
    let mut out = Vec::with_capacity(families.len() * seeds as usize);
    for &family in families {
        let count = match family {
            Family::Regression => sfence_workloads::synth::REGRESSIONS.len() as u64,
            _ => seeds,
        };
        for seed in 0..count {
            out.push(Case { family, seed });
        }
    }
    out
}

/// Every campaign family in canonical order: the seeded [`FAMILIES`]
/// followed by the fuzzer-regression replays.
pub fn all_families() -> Vec<Family> {
    let mut all = FAMILIES.to_vec();
    all.push(Family::Regression);
    all
}

/// Parse a `--families` argument: `all` or a comma-separated list of
/// family names, always reordered into the canonical [`all_families`]
/// order so the case list never depends on how the flag was spelled.
pub fn parse_families(arg: &str) -> Result<Vec<Family>, String> {
    if arg == "all" {
        return Ok(all_families());
    }
    let mut picked = Vec::new();
    for name in arg.split(',') {
        let family = Family::from_name(name.trim())
            .ok_or_else(|| format!("unknown litmus family {name:?} (try --list-families)"))?;
        if !picked.contains(&family) {
            picked.push(family);
        }
    }
    let mut ordered: Vec<Family> = all_families()
        .into_iter()
        .filter(|f| picked.contains(f))
        .collect();
    if ordered.is_empty() {
        return Err("--families selected nothing".into());
    }
    ordered.shrink_to_fit();
    Ok(ordered)
}

/// One execution of a case on the campaign's execution backend.
#[derive(Debug, Clone, PartialEq)]
pub struct RunVerdict {
    /// Configuration label: `T`, `S`, `S-overflow` or `S-nofence`.
    pub config: String,
    /// Observed final state (the program's `obs_` globals).
    pub observed: Vec<i64>,
    /// Was the observed state in the SC-allowed set?
    pub sc_allowed: bool,
    /// Does the campaign require `sc_allowed` for this run?
    pub expect_sc: bool,
    /// Degraded (scope-overflowed) fences across all cores — proof
    /// the degrade path actually ran in the overflow config. Zero on
    /// backends without scope hardware (functional).
    pub degraded_fences: u64,
    /// Per-core attribution of the aggregate above: which core's
    /// fences degraded. Empty off-sim.
    pub degraded_by_core: Vec<u64>,
    /// Per-core FSS pushes that overflowed capacity (entries into
    /// degraded mode). Empty off-sim.
    pub fss_overflows_by_core: Vec<u64>,
    /// Per-core branch-misprediction scope recoveries (FSS′ shadow
    /// restores or checkpoint squashes). Empty off-sim.
    pub recoveries_by_core: Vec<u64>,
    /// Execution time; absent on backends without a clock.
    pub cycles: Option<u64>,
}

/// A fully-judged case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseVerdict {
    pub family: Family,
    pub seed: u64,
    /// The SC-allowed final states (sorted — the checker returns a
    /// set).
    pub sc_states: Vec<Vec<i64>>,
    pub sc_complete: bool,
    pub states_explored: u64,
    pub runs: Vec<RunVerdict>,
}

/// The tiny scope hardware of the forced-overflow configuration: one
/// FSS entry (any nested scope overflows), the minimum FSB (one class
/// column plus the reserved set column) and a single mapping row.
pub fn overflow_scope() -> sfence_core::ScopeConfig {
    sfence_core::ScopeConfig {
        fsb_entries: 2,
        fss_entries: 1,
        mapping_entries: 1,
        ..Default::default()
    }
}

/// Run one case end to end: generate, enumerate SC outcomes (the
/// enumerative engine's fallible entry point), run the differential
/// matrix on `backend` (sim by default; functional for
/// correctness-only campaigns), judge.
pub fn run_case(
    case: Case,
    checker: &CheckerConfig,
    backend: BackendId,
) -> Result<CaseVerdict, String> {
    if backend == BackendId::Enumerative {
        // The enumerator is the campaign's oracle, not an execution
        // engine: it reports a state *set*, never the single final
        // memory the matrix observes.
        return Err(
            "campaigns execute on sim or functional; the enumerative backend \
                    is already the oracle every case is judged against"
                .into(),
        );
    }
    let fenced = build(&LitmusSpec::new(case.family, case.seed));
    let stripped = build(&LitmusSpec::new(case.family, case.seed).stripped());

    // The SC-allowed set is a property of the *program shape*, not of
    // its fences (fences are no-ops under SC), so the fenced variant's
    // enumeration also judges the stripped runs: stripping only
    // removes fence/scope-marker instructions, which never touch
    // memory or registers.
    //
    // The oracle is the harness's enumerative engine; calling its
    // fallible entry point directly (rather than `Backend::run`,
    // which panics on malformed programs) keeps interpreter errors on
    // the campaign's clean `Err` → exit-1 path.
    let outcomes = enumerate_sc(&fenced.program, checker)
        .map_err(|e| format!("{}: checker: {e}", fenced.name))?;
    let states_explored = outcomes.states_explored;
    if !outcomes.complete {
        return Err(format!(
            "{}: SC enumeration incomplete after {} states — raise the checker bounds",
            fenced.name, states_explored
        ));
    }
    let exec = backend.instantiate();
    let covering = case.family.covering();
    let mut runs = Vec::with_capacity(4);
    let mut matrix: Vec<(&str, &sfence_workloads::BuiltWorkload, MachineConfig, bool)> = Vec::new();
    matrix.push((
        "T",
        &fenced,
        base_config(&fenced).with_fence(FenceConfig::TRADITIONAL),
        true,
    ));
    matrix.push((
        "S",
        &fenced,
        base_config(&fenced).with_fence(FenceConfig::SFENCE),
        covering,
    ));
    let mut overflow_cfg = base_config(&fenced).with_fence(FenceConfig::SFENCE);
    overflow_cfg.core.scope = overflow_scope();
    matrix.push(("S-overflow", &fenced, overflow_cfg, covering));
    matrix.push((
        "S-nofence",
        &stripped,
        base_config(&stripped).with_fence(FenceConfig::SFENCE),
        false,
    ));

    for (label, workload, cfg, expect_sc) in matrix {
        // An engine that cannot exhibit relaxation (the SC
        // interpreter) must stay SC-allowed in *every* configuration,
        // fences or not: a non-SC state there is an interpreter bug,
        // not a demonstration. Only the weak simulator earns the
        // relaxed-outcome allowances.
        let expect_sc = expect_sc || !backend.timed();
        let report = Session::for_program(&workload.program)
            .config(cfg)
            .backend(exec.as_ref())
            .run();
        if report.exit != RunExit::Completed {
            return Err(format!(
                "{}: {label}: run hit the cycle limit",
                workload.name
            ));
        }
        let observed = report.observed_state(&workload.program);
        runs.push(RunVerdict {
            config: label.to_string(),
            sc_allowed: outcomes.allows(&observed),
            observed,
            expect_sc,
            degraded_fences: report.scope_stats.iter().map(|s| s.degraded_fences).sum(),
            degraded_by_core: report
                .scope_stats
                .iter()
                .map(|s| s.degraded_fences)
                .collect(),
            fss_overflows_by_core: report.scope_stats.iter().map(|s| s.fss_overflows).collect(),
            recoveries_by_core: report
                .scope_stats
                .iter()
                .map(|s| s.mispredict_recoveries)
                .collect(),
            cycles: report.cycles,
        });
    }

    Ok(CaseVerdict {
        family: case.family,
        seed: case.seed,
        sc_states: outcomes.states.into_iter().collect(),
        sc_complete: true,
        states_explored,
        runs,
    })
}

fn base_config(w: &sfence_workloads::BuiltWorkload) -> MachineConfig {
    let mut cfg = MachineConfig::paper_default();
    cfg.num_cores = w.program.num_threads();
    cfg.max_cycles = 50_000_000;
    cfg
}

/// Aggregate accounting of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    pub cases: usize,
    pub runs: usize,
    /// Runs that were required to be SC-allowed but were not. Must be
    /// zero: scoped fences equal full fences within their scope, and
    /// degrade to full fences on overflow.
    pub covering_violations: usize,
    /// Relaxed outcomes observed where permitted (non-covering scopes
    /// on S, and fence-removed runs) — the demonstrations that the
    /// scope boundary is real.
    pub demonstrated_violations: usize,
    /// Demonstrations on non-covering *scoped* configs specifically
    /// (excluding fence-removed runs).
    pub noncovering_scope_violations: usize,
    /// Total degraded fences across all `S-overflow` runs — nonzero
    /// proves the degrade path was exercised, not vacuously green.
    pub overflow_degraded_fences: u64,
}

pub fn summarize(cases: &[CaseVerdict]) -> Summary {
    let mut s = Summary {
        cases: cases.len(),
        ..Default::default()
    };
    for case in cases {
        for run in &case.runs {
            s.runs += 1;
            if run.expect_sc && !run.sc_allowed {
                s.covering_violations += 1;
            }
            if !run.expect_sc && !run.sc_allowed {
                s.demonstrated_violations += 1;
                if run.config != "S-nofence" {
                    s.noncovering_scope_violations += 1;
                }
            }
            if run.config == "S-overflow" {
                s.overflow_degraded_fences += run.degraded_fences;
            }
        }
    }
    s
}

/// A complete campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    pub families: Vec<Family>,
    pub seeds: u64,
    /// The engine the differential matrix ran on. Relaxed-outcome
    /// demonstrations are only expected of the weakly-ordered
    /// simulator: a functional (SC) campaign can never demonstrate
    /// them, and callers must not require it to.
    pub backend: BackendId,
    pub cases: Vec<CaseVerdict>,
}

impl Campaign {
    pub fn summary(&self) -> Summary {
        summarize(&self.cases)
    }

    /// Can this campaign's engine exhibit relaxed (non-SC) outcomes
    /// at all? Only the cycle-accurate simulator models the weak
    /// memory system.
    pub fn can_demonstrate_relaxation(&self) -> bool {
        self.backend.timed()
    }

    /// The machine-readable artifact `sfence-litmus --json` emits.
    /// Deterministic: byte-identical across thread counts and shard
    /// merges for the same `(families, seeds)`.
    pub fn to_json(&self) -> Json {
        let s = self.summary();
        Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field(
                "families",
                Json::Arr(self.families.iter().map(|f| Json::from(f.name())).collect()),
            )
            .field("seeds", self.seeds)
            .field("backend", self.backend.name())
            .field(
                "cases",
                Json::Arr(self.cases.iter().map(case_to_json).collect()),
            )
            .field(
                "summary",
                Json::obj()
                    .field("cases", s.cases)
                    .field("runs", s.runs)
                    .field("covering_violations", s.covering_violations)
                    .field("demonstrated_violations", s.demonstrated_violations)
                    .field(
                        "noncovering_scope_violations",
                        s.noncovering_scope_violations,
                    )
                    .field("overflow_degraded_fences", s.overflow_degraded_fences),
            )
    }

    /// Plain-text summary table.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        out += &format!(
            "litmus campaign: {} families x {} seeds = {} cases ({} backend)\n",
            self.families.len(),
            self.seeds,
            self.cases.len(),
            self.backend
        );
        out += &format!(
            "{:<16} {:>4} {:>10} {:>3}  {}\n",
            "family", "seed", "sc-states", "ok", "verdicts (config:observed state)"
        );
        for case in &self.cases {
            let ok = case.runs.iter().all(|r| r.sc_allowed || !r.expect_sc);
            let verdicts: Vec<String> = case
                .runs
                .iter()
                .map(|r| {
                    format!(
                        "{}:{:?}{}",
                        r.config,
                        r.observed,
                        if r.sc_allowed { "" } else { "!" }
                    )
                })
                .collect();
            out += &format!(
                "{:<16} {:>4} {:>10} {:>3}  {}\n",
                case.family.name(),
                case.seed,
                case.sc_states.len(),
                if ok { "yes" } else { "NO" },
                verdicts.join(" ")
            );
        }
        out += &self.summary_line();
        out += "\n";
        out
    }

    /// The one-line human summary (last line of [`Self::to_ascii`];
    /// `--json` mode prints it to stderr so logs stay readable
    /// without a second campaign run).
    pub fn summary_line(&self) -> String {
        let s = self.summary();
        format!(
            "summary: {} runs, {} covering violations, {} demonstrated ({} on non-covering scopes), {} degraded fences under overflow",
            s.runs,
            s.covering_violations,
            s.demonstrated_violations,
            s.noncovering_scope_violations,
            s.overflow_degraded_fences
        )
    }
}

/// Run a campaign over `threads` workers on the given execution
/// backend. Case order (and therefore every byte of the output) is
/// independent of the thread count.
pub fn run_campaign(
    families: &[Family],
    seeds: u64,
    threads: usize,
    checker: &CheckerConfig,
    backend: BackendId,
) -> Result<Campaign, String> {
    let list = cases(families, seeds);
    let verdicts = run_indexed(list.len(), threads, |i| run_case(list[i], checker, backend));
    let cases = verdicts.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(Campaign {
        families: families.to_vec(),
        seeds,
        backend,
        cases,
    })
}

// ---------------------------------------------------------------------
// JSON (de)serialization of cases — the shard interchange format.

fn i64_arr(v: &[i64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Int(x)).collect())
}

fn u64_arr(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::UInt(x)).collect())
}

pub fn case_to_json(case: &CaseVerdict) -> Json {
    Json::obj()
        .field("family", case.family.name())
        .field("seed", case.seed)
        .field(
            "sc_states",
            Json::Arr(case.sc_states.iter().map(|s| i64_arr(s)).collect()),
        )
        .field("sc_complete", case.sc_complete)
        .field("states_explored", case.states_explored)
        .field(
            "runs",
            Json::Arr(
                case.runs
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("config", r.config.as_str())
                            .field("observed", i64_arr(&r.observed))
                            .field("sc_allowed", r.sc_allowed)
                            .field("expect_sc", r.expect_sc)
                            .field("degraded_fences", r.degraded_fences)
                            .field("degraded_by_core", u64_arr(&r.degraded_by_core))
                            .field("fss_overflows_by_core", u64_arr(&r.fss_overflows_by_core))
                            .field("recoveries_by_core", u64_arr(&r.recoveries_by_core))
                            .field(
                                "cycles",
                                match r.cycles {
                                    Some(c) => Json::UInt(c),
                                    None => Json::Null,
                                },
                            )
                    })
                    .collect(),
            ),
        )
}

fn get_i64_arr(json: &Json, key: &str) -> Result<Vec<i64>, String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|w| w.as_i64().ok_or_else(|| format!("bad i64 in {key:?}")))
        .collect()
}

fn get_u64_arr(json: &Json, key: &str) -> Result<Vec<u64>, String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|w| w.as_u64().ok_or_else(|| format!("bad u64 in {key:?}")))
        .collect()
}

pub fn case_from_json(json: &Json) -> Result<CaseVerdict, String> {
    let family_name = json
        .get("family")
        .and_then(Json::as_str)
        .ok_or("missing family")?;
    let family =
        Family::from_name(family_name).ok_or_else(|| format!("unknown family {family_name:?}"))?;
    let runs = json
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs")?
        .iter()
        .map(|r| {
            Ok(RunVerdict {
                config: r
                    .get("config")
                    .and_then(Json::as_str)
                    .ok_or("missing config")?
                    .to_string(),
                observed: get_i64_arr(r, "observed")?,
                sc_allowed: r
                    .get("sc_allowed")
                    .and_then(Json::as_bool)
                    .ok_or("missing sc_allowed")?,
                expect_sc: r
                    .get("expect_sc")
                    .and_then(Json::as_bool)
                    .ok_or("missing expect_sc")?,
                degraded_fences: r
                    .get("degraded_fences")
                    .and_then(Json::as_u64)
                    .ok_or("missing degraded_fences")?,
                degraded_by_core: get_u64_arr(r, "degraded_by_core")?,
                fss_overflows_by_core: get_u64_arr(r, "fss_overflows_by_core")?,
                recoveries_by_core: get_u64_arr(r, "recoveries_by_core")?,
                cycles: match r.get("cycles") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or("bad cycles")?),
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CaseVerdict {
        family,
        seed: json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("missing seed")?,
        sc_states: json
            .get("sc_states")
            .and_then(Json::as_arr)
            .ok_or("missing sc_states")?
            .iter()
            .map(|s| {
                s.as_arr()
                    .ok_or_else(|| "bad sc state".to_string())?
                    .iter()
                    .map(|w| w.as_i64().ok_or_else(|| "bad sc state word".to_string()))
                    .collect()
            })
            .collect::<Result<Vec<_>, String>>()?,
        sc_complete: json
            .get("sc_complete")
            .and_then(Json::as_bool)
            .ok_or("missing sc_complete")?,
        states_explored: json
            .get("states_explored")
            .and_then(Json::as_u64)
            .ok_or("missing states_explored")?,
        runs,
    })
}
