//! SC reference checking — re-exported from
//! `sfence_harness::enumerate`, where the enumeration moved when it
//! became an execution backend ([`sfence_harness::EnumerativeBackend`])
//! available to every harness layer, not just the litmus campaigns.
//! Existing `sfence_litmus::checker::*` paths keep working.

pub use sfence_harness::enumerate::{enumerate_sc, CheckerConfig, ScOutcomes};
