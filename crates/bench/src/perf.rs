//! The perf-trajectory suite behind `sfence-bench perf`.
//!
//! One measured task per golden experiment (fig12–16, the merged
//! hwsweep) at the golden `--scale small`, the Eval-scale fig13 sweep
//! (the headline hot-loop number), and the two functional batches
//! (litmus campaign, fuzz campaign) that exercise the non-sim
//! engines. Each task reports wall time plus throughput in cells/sec
//! and — on the cycle-accurate engine — simulated cycles/sec, the
//! rows `BENCH_perf.json` tracks across commits.
//!
//! Timing noise is handled by running each task `runs` times and
//! keeping the median-wall-time run; the CI gate compares medians
//! per task and only fails on a >[`REGRESSION_THRESHOLD`] drop in
//! cells/sec, so scheduler jitter cannot fail a build.

use crate::{experiment_by_name, fig13_experiment, hwsweep_experiments};
use sfence_harness::{BackendId, Json, RunOptions};
use sfence_obs::prof;
use sfence_workloads::Scale;

/// Version of the `BENCH_perf.json` schema.
pub const PERF_SCHEMA_VERSION: u64 = 1;

/// Fractional cells/sec drop (vs the committed artifact) that fails
/// the CI perf gate.
pub const REGRESSION_THRESHOLD: f64 = 0.25;

/// The pre-overhaul fig13 Eval measurement this PR's hot-loop work is
/// judged against (commit 62a98e0, `sfence-bench perf` on the same
/// container that produced the committed artifact). Kept in the
/// artifact as the `baseline` row so the ≥2x claim stays auditable
/// after regeneration.
pub const BASELINE_NAME: &str = "fig13-eval";
pub const BASELINE_GIT: &str = "62a98e0";
pub const BASELINE_CELLS: u64 = 16;
pub const BASELINE_CYCLES: u64 = 1_155_822;
pub const BASELINE_WALL_MS: f64 = 5075.794;

/// One measured suite task.
#[derive(Debug, Clone)]
pub struct PerfRow {
    pub name: &'static str,
    pub backend: &'static str,
    pub scale: &'static str,
    /// Completed sweep cells (or campaign runs / fuzz cases).
    pub cells: u64,
    /// Total simulated cycles; absent off-sim.
    pub cycles: Option<u64>,
    pub wall_ms: f64,
}

impl PerfRow {
    pub fn cells_per_sec(&self) -> f64 {
        self.cells as f64 * 1000.0 / self.wall_ms
    }

    pub fn cycles_per_sec(&self) -> Option<f64> {
        self.cycles.map(|c| c as f64 * 1000.0 / self.wall_ms)
    }

    pub fn to_json(&self) -> Json {
        let row = Json::obj()
            .field("name", self.name)
            .field("backend", self.backend)
            .field("scale", self.scale)
            .field("cells", self.cells)
            .field(
                "cycles",
                match self.cycles {
                    Some(c) => Json::UInt(c),
                    None => Json::Null,
                },
            )
            .field("wall_ms", round3(self.wall_ms))
            .field("cells_per_sec", round3(self.cells_per_sec()));
        row.field(
            "cycles_per_sec",
            match self.cycles_per_sec() {
                Some(c) => Json::Num(round3(c)),
                None => Json::Null,
            },
        )
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// The suite's task names, in run order.
pub fn perf_task_names() -> [&'static str; 9] {
    [
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "hwsweep",
        "fig13-eval",
        "litmus-functional",
        "fuzz-functional",
    ]
}

/// Run one suite task once, returning its measured row.
pub fn run_task(name: &'static str, threads: usize) -> Result<PerfRow, String> {
    match name {
        "fig12" | "fig13" | "fig14" | "fig15" | "fig16" => {
            let e = experiment_by_name(name)
                .expect("registered figure")
                .scale(Scale::Small);
            let (res, wall_ms) = prof::measure(name, || run_sweep_cells(&[e], threads));
            let (cells, cycles) = res?;
            Ok(sim_row(name, "small", cells, cycles, wall_ms))
        }
        "hwsweep" => {
            // The golden hwsweep job pins `--scale small`; measure
            // the same thing.
            let experiments: Vec<_> = hwsweep_experiments()
                .into_iter()
                .map(|e| e.scale(Scale::Small))
                .collect();
            let (res, wall_ms) = prof::measure(name, || run_sweep_cells(&experiments, threads));
            let (cells, cycles) = res?;
            Ok(sim_row(name, "small", cells, cycles, wall_ms))
        }
        "fig13-eval" => {
            let e = fig13_experiment().scale(Scale::Eval);
            let (res, wall_ms) = prof::measure(name, || run_sweep_cells(&[e], threads));
            let (cells, cycles) = res?;
            Ok(sim_row(name, "eval", cells, cycles, wall_ms))
        }
        "litmus-functional" => {
            let families = sfence_litmus::all_families();
            let checker = sfence_litmus::CheckerConfig::default();
            let (res, wall_ms) = prof::measure(name, || {
                sfence_litmus::run_campaign(&families, 8, threads, &checker, BackendId::Functional)
            });
            let campaign = res?;
            let summary = campaign.summary();
            if summary.covering_violations != 0 {
                return Err(format!(
                    "litmus-functional: {} covering violations in the perf batch",
                    summary.covering_violations
                ));
            }
            Ok(PerfRow {
                name,
                backend: "functional",
                scale: "small",
                cells: summary.runs as u64,
                cycles: None,
                wall_ms,
            })
        }
        "fuzz-functional" => {
            let cfg = sfence_fuzz::FuzzConfig {
                seed: 1,
                budget: 256,
                backend: BackendId::Functional,
                ..sfence_fuzz::FuzzConfig::default()
            };
            let (res, wall_ms) = prof::measure(name, || sfence_fuzz::run_fuzz(&cfg, threads));
            let report = res?;
            if !report.divergences.is_empty() {
                return Err(format!(
                    "fuzz-functional: {} divergences in the perf batch",
                    report.divergences.len()
                ));
            }
            Ok(PerfRow {
                name,
                backend: "functional",
                scale: "small",
                cells: report.cases as u64,
                cycles: None,
                wall_ms,
            })
        }
        other => Err(format!("unknown perf task {other:?}")),
    }
}

fn sim_row(
    name: &'static str,
    scale: &'static str,
    cells: u64,
    cycles: u64,
    wall_ms: f64,
) -> PerfRow {
    PerfRow {
        name,
        backend: "sim",
        scale,
        cells,
        cycles: Some(cycles),
        wall_ms,
    }
}

/// Run a set of experiments to completion and total their cells and
/// simulated cycles.
fn run_sweep_cells(
    experiments: &[crate::Experiment],
    threads: usize,
) -> Result<(u64, u64), String> {
    let mut cells = 0u64;
    let mut cycles = 0u64;
    for e in experiments {
        let outcome = e.run_with(RunOptions::new(threads));
        if !outcome.complete {
            return Err(format!("experiment {} did not complete", e.name));
        }
        cells += outcome.rows.len() as u64;
        for row in &outcome.rows {
            cycles += row.row.cycles.unwrap_or(0);
        }
    }
    Ok((cells, cycles))
}

/// Run every suite task `runs` times, keeping each task's
/// median-wall-time run (ties broken toward the faster run).
pub fn run_suite(threads: usize, runs: usize) -> Result<Vec<PerfRow>, String> {
    let _suite = prof::scoped("perf");
    let mut rows = Vec::new();
    for name in perf_task_names() {
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs.max(1) {
            samples.push(run_task(name, threads)?);
        }
        samples.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
        let row = samples.swap_remove((samples.len() - 1) / 2);
        eprintln!(
            "perf: {:<18} {:>7} cells {:>9.1} ms {:>9.1} cells/s",
            row.name,
            row.cells,
            row.wall_ms,
            row.cells_per_sec()
        );
        rows.push(row);
    }
    Ok(rows)
}

/// Assemble the `BENCH_perf.json` artifact.
pub fn report_json(rows: &[PerfRow], threads: usize, runs: usize, git: &str) -> Json {
    let baseline = Json::obj()
        .field("name", BASELINE_NAME)
        .field("git", BASELINE_GIT)
        .field("cells", BASELINE_CELLS)
        .field("cycles", BASELINE_CYCLES)
        .field("wall_ms", round3(BASELINE_WALL_MS))
        .field(
            "cells_per_sec",
            round3(BASELINE_CELLS as f64 * 1000.0 / BASELINE_WALL_MS),
        )
        .field(
            "cycles_per_sec",
            round3(BASELINE_CYCLES as f64 * 1000.0 / BASELINE_WALL_MS),
        );
    Json::obj()
        .field("schema_version", PERF_SCHEMA_VERSION)
        .field("bench", "perf")
        .field("git", git)
        .field("threads", threads as u64)
        .field("runs", runs as u64)
        .field("baseline", baseline)
        .field(
            "rows",
            Json::Arr(rows.iter().map(PerfRow::to_json).collect()),
        )
}

/// One committed-artifact row the gate compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct CommittedRow {
    pub name: String,
    pub cells: u64,
    pub cells_per_sec: f64,
}

/// Pull the per-task rows out of a committed `BENCH_perf.json`.
pub fn parse_committed(artifact: &Json) -> Result<Vec<CommittedRow>, String> {
    let version = artifact
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != PERF_SCHEMA_VERSION {
        return Err(format!(
            "artifact schema_version {version} != supported {PERF_SCHEMA_VERSION}"
        ));
    }
    let rows = artifact
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing rows")?;
    rows.iter()
        .map(|r| {
            Ok(CommittedRow {
                name: r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("row missing name")?
                    .to_string(),
                cells: r
                    .get("cells")
                    .and_then(Json::as_u64)
                    .ok_or("row missing cells")?,
                cells_per_sec: r
                    .get("cells_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or("row missing cells_per_sec")?,
            })
        })
        .collect()
}

/// Compare a fresh suite run against the committed rows. Returns the
/// list of gate failures (empty = green). A fresh task missing from
/// the artifact is informational only — new tasks are allowed to
/// appear before the artifact is regenerated — but a *committed* task
/// missing from the fresh run fails, as does any cell-count drift
/// (the workload set changed without regenerating the artifact) and
/// any >[`REGRESSION_THRESHOLD`] cells/sec regression.
pub fn check_regressions(fresh: &[PerfRow], committed: &[CommittedRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for c in committed {
        let Some(f) = fresh.iter().find(|f| f.name == c.name) else {
            failures.push(format!("task {} missing from the fresh run", c.name));
            continue;
        };
        if f.cells != c.cells {
            failures.push(format!(
                "task {}: cell count changed {} -> {} (regenerate BENCH_perf.json)",
                c.name, c.cells, f.cells
            ));
            continue;
        }
        let fresh_rate = f.cells_per_sec();
        let floor = c.cells_per_sec * (1.0 - REGRESSION_THRESHOLD);
        if fresh_rate < floor {
            failures.push(format!(
                "task {}: {:.3} cells/s is a {:.0}% regression vs committed {:.3} \
                 (floor {:.3})",
                c.name,
                fresh_rate,
                (1.0 - fresh_rate / c.cells_per_sec) * 100.0,
                c.cells_per_sec,
                floor
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &'static str, cells: u64, wall_ms: f64) -> PerfRow {
        PerfRow {
            name,
            backend: "sim",
            scale: "small",
            cells,
            cycles: Some(1000),
            wall_ms,
        }
    }

    fn committed(name: &str, cells: u64, cells_per_sec: f64) -> CommittedRow {
        CommittedRow {
            name: name.into(),
            cells,
            cells_per_sec,
        }
    }

    #[test]
    fn gate_passes_within_threshold() {
        // 20% slower than committed: inside the 25% tolerance.
        let fresh = [row("fig12", 48, 1250.0)]; // 38.4 cells/s
        let base = [committed("fig12", 48, 48.0)];
        assert!(check_regressions(&fresh, &base).is_empty());
    }

    #[test]
    fn gate_fails_past_threshold() {
        // 50% slower than committed: past the 25% tolerance.
        let fresh = [row("fig12", 48, 2000.0)]; // 24 cells/s
        let base = [committed("fig12", 48, 48.0)];
        let failures = check_regressions(&fresh, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regression"), "{}", failures[0]);
    }

    #[test]
    fn gate_fails_on_cell_drift_or_missing_task() {
        let fresh = [row("fig12", 47, 1000.0)];
        let base = [committed("fig12", 48, 48.0), committed("fig13", 16, 20.0)];
        let failures = check_regressions(&fresh, &base);
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("cell count changed"));
        assert!(failures[1].contains("missing from the fresh run"));
    }

    #[test]
    fn artifact_round_trips_through_the_parser() {
        let rows = [row("fig12", 48, 1000.0)];
        let json = report_json(&rows, 4, 3, "test");
        let parsed = parse_committed(&json).unwrap();
        assert_eq!(parsed, vec![committed("fig12", 48, 48.0)]);
        // The baseline row is present and self-consistent.
        let text = json.to_string_pretty();
        let reparsed = sfence_harness::json::parse(&text).unwrap();
        let baseline = reparsed.get("baseline").unwrap();
        assert_eq!(
            baseline.get("name").and_then(Json::as_str),
            Some(BASELINE_NAME)
        );
        assert!(
            baseline
                .get("cells_per_sec")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn every_perf_task_name_is_runnable() {
        // The sim tasks resolve through the experiment registry; the
        // functional batches are hard-wired. Resolving here keeps the
        // task list from drifting out from under the registry.
        for name in perf_task_names() {
            match name {
                "fig13-eval" | "hwsweep" | "litmus-functional" | "fuzz-functional" => {}
                fig => assert!(crate::experiment_by_name(fig).is_some(), "{fig}"),
            }
        }
    }
}
