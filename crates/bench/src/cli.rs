//! Shared command-line switches of the figure binaries and
//! `sfence-sweep`. Hand-rolled (the container carries no external
//! crates); unknown flags are errors so typos fail loudly instead of
//! silently running the default sweep.

use sfence_harness::{
    default_threads, BackendId, Experiment, IndexedRow, ResultCache, RunOptions, Shard,
};
use sfence_workloads::Scale;
use std::path::PathBuf;

/// Switches every figure binary understands.
#[derive(Debug, Clone, Default)]
pub struct FigureArgs {
    /// Emit the structured sweep rows as JSON.
    pub json: bool,
    /// Emit the raw row table.
    pub rows: bool,
    /// Override every workload's problem scale.
    pub scale: Option<Scale>,
    /// Execution engine override (`sim`, `functional`,
    /// `enumerative`); default: the experiment's own backend (sim).
    pub backend: Option<BackendId>,
    /// Content-addressed result cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Documentation alias: with `--cache-dir`, an interrupted sweep
    /// already resumes by skipping cache hits. Requires `--cache-dir`.
    pub resume: bool,
    /// Run only this shard and emit indexed rows as JSONL.
    pub shard: Option<Shard>,
    /// Worker thread count (default: one per CPU, capped by jobs).
    pub threads: Option<usize>,
}

impl FigureArgs {
    /// Parse `std::env::args`, rejecting unknown flags.
    pub fn parse() -> Result<FigureArgs, String> {
        let mut args = FigureArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            args.accept(&arg, &mut it)?;
        }
        args.validate()?;
        Ok(args)
    }

    /// Try to consume one flag (pulling values from `it`); the sweep
    /// binary reuses this for the flags it shares with the figures.
    pub fn accept(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<(), String> {
        match arg {
            "--json" => self.json = true,
            "--rows" => self.rows = true,
            "--scale" => {
                self.scale = Some(parse_scale(&take(it, "--scale")?)?);
            }
            "--backend" => {
                self.backend = Some(BackendId::parse(&take(it, "--backend")?)?);
            }
            "--cache-dir" => {
                self.cache_dir = Some(PathBuf::from(take(it, "--cache-dir")?));
            }
            "--resume" => self.resume = true,
            "--shard" => {
                self.shard = Some(Shard::parse(&take(it, "--shard")?)?);
            }
            "--threads" => {
                let n: usize = take(it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                self.threads = Some(n);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        Ok(())
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.resume && self.cache_dir.is_none() {
            return Err("--resume requires --cache-dir (resume = skip cached cells)".into());
        }
        Ok(())
    }

    /// Apply the experiment-shaping overrides (`--scale`,
    /// `--backend`) to a registered experiment. Errors rather than
    /// silently no-ops: on an `Axis::Backend` experiment every axis
    /// point picks its own engine, so a `--backend` flag would be
    /// dead.
    pub fn configure(&self, mut experiment: Experiment) -> Result<Experiment, String> {
        if let Some(scale) = self.scale {
            experiment = experiment.scale(scale);
        }
        if let Some(backend) = self.backend {
            if experiment.axis_name() == "backend" {
                return Err(format!(
                    "--backend {} has no effect on {:?}: its backend axis selects \
                     the engine per cell",
                    backend.name(),
                    experiment.name
                ));
            }
            experiment = experiment.backend(backend);
        }
        Ok(experiment)
    }
}

/// What [`run_local`] produced.
pub struct LocalRun {
    /// Indexed rows of the (whole or sharded) run — `None` when shard
    /// mode already emitted them as JSONL on stdout for a parent
    /// process to merge.
    pub rows: Option<Vec<IndexedRow>>,
    /// False when a `max_cells` budget left cells unrun.
    pub complete: bool,
}

/// The one implementation of "run (a shard of) an experiment under
/// the shared CLI switches", used by both `figure_main` and
/// `sfence-sweep` so cache-writer naming, stats reporting and the
/// shard JSONL encoding can never drift apart.
pub fn run_local(
    experiment: &Experiment,
    args: &FigureArgs,
    max_cells: Option<usize>,
) -> Result<LocalRun, String> {
    let threads = args
        .threads
        .unwrap_or_else(|| default_threads(experiment.job_count()));
    let mut cache = match &args.cache_dir {
        Some(dir) => {
            // Shard workers sharing one cache directory each append
            // to their own file, so concurrent writes never collide.
            let writer = match args.shard {
                Some(shard) => format!("shard-{}.jsonl", shard.index),
                None => "cache.jsonl".to_string(),
            };
            Some(
                ResultCache::open_with_writer(dir, writer)
                    .map_err(|e| format!("open cache {}: {e}", dir.display()))?,
            )
        }
        None => None,
    };
    let mut opts = RunOptions::new(threads);
    if let Some(cache) = cache.as_mut() {
        opts = opts.cache(cache);
    }
    if let Some(shard) = args.shard {
        opts = opts.shard(shard);
    }
    if let Some(max) = max_cells {
        opts = opts.max_cells(max);
    }
    let outcome = experiment.run_with(opts);
    if cache.is_some() {
        eprintln!(
            "cache: {} hits, {} executed, {} skipped",
            outcome.stats.cache_hits, outcome.stats.executed, outcome.stats.skipped
        );
    }
    if outcome.stats.cache_write_errors > 0 {
        eprintln!(
            "warning: {} cache appends failed (results kept, cells not cached)",
            outcome.stats.cache_write_errors
        );
    }
    let rows = if args.shard.is_some() {
        let mut out = String::new();
        for row in &outcome.rows {
            out.push_str(&row.to_json().to_string_compact());
            out.push('\n');
        }
        print!("{out}");
        None
    } else {
        Some(outcome.rows)
    };
    Ok(LocalRun {
        rows,
        complete: outcome.complete,
    })
}

pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "eval" => Ok(Scale::Eval),
        "small" => Ok(Scale::Small),
        other => Err(format!("unknown scale {other:?} (expected eval|small)")),
    }
}

pub fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} expects a value"))
}
