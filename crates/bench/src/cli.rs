//! Shared command-line switches of the figure binaries and
//! `sfence-sweep`. Hand-rolled (the container carries no external
//! crates); unknown flags are errors so typos fail loudly instead of
//! silently running the default sweep.

use sfence_harness::{
    default_threads, diff_rows, BackendId, Experiment, IndexedRow, ResultCache, ResultStore,
    RunMeta, RunOptions, Shard, SweepResult,
};
use sfence_workloads::Scale;
use std::path::PathBuf;

/// Switches every figure binary understands.
#[derive(Debug, Clone, Default)]
pub struct FigureArgs {
    /// Emit the structured sweep rows as JSON.
    pub json: bool,
    /// Emit the raw row table.
    pub rows: bool,
    /// Override every workload's problem scale.
    pub scale: Option<Scale>,
    /// Execution engine override (`sim`, `functional`,
    /// `enumerative`); default: the experiment's own backend (sim).
    pub backend: Option<BackendId>,
    /// Content-addressed result cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Documentation alias: with `--cache-dir`, an interrupted sweep
    /// already resumes by skipping cache hits. Requires `--cache-dir`.
    pub resume: bool,
    /// Run only this shard and emit indexed rows as JSONL.
    pub shard: Option<Shard>,
    /// Worker thread count (default: one per CPU, capped by jobs).
    pub threads: Option<usize>,
    /// Write a Chrome `trace_event` pipeline trace of every executed
    /// cell to this path. Mutually exclusive with `--cache-dir` and
    /// `--shard` (traces are in-memory artifacts of this process).
    pub trace: Option<PathBuf>,
    /// Print a throttled progress line (done/total, cells/s, ETA) to
    /// stderr while the sweep runs.
    pub progress: bool,
}

impl FigureArgs {
    /// Parse `std::env::args`, rejecting unknown flags.
    pub fn parse() -> Result<FigureArgs, String> {
        let mut args = FigureArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            args.accept(&arg, &mut it)?;
        }
        args.validate()?;
        Ok(args)
    }

    /// Try to consume one flag (pulling values from `it`); the sweep
    /// binary reuses this for the flags it shares with the figures.
    pub fn accept(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<(), String> {
        match arg {
            "--json" => self.json = true,
            "--rows" => self.rows = true,
            "--scale" => {
                self.scale = Some(parse_scale(&take(it, "--scale")?)?);
            }
            "--backend" => {
                self.backend = Some(BackendId::parse(&take(it, "--backend")?)?);
            }
            "--cache-dir" => {
                self.cache_dir = Some(PathBuf::from(take(it, "--cache-dir")?));
            }
            "--resume" => self.resume = true,
            "--shard" => {
                self.shard = Some(Shard::parse(&take(it, "--shard")?)?);
            }
            "--threads" => {
                let n: usize = take(it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--threads expects a positive integer".into());
                }
                self.threads = Some(n);
            }
            "--trace" => {
                self.trace = Some(PathBuf::from(take(it, "--trace")?));
            }
            "--progress" => self.progress = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
        Ok(())
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.resume && self.cache_dir.is_none() {
            return Err("--resume requires --cache-dir (resume = skip cached cells)".into());
        }
        if self.trace.is_some() && self.cache_dir.is_some() {
            return Err(
                "--trace is incompatible with --cache-dir: cached reports carry no \
                 pipe events, so a cache hit would leave a hole in the trace"
                    .into(),
            );
        }
        if self.trace.is_some() && self.shard.is_some() {
            return Err(
                "--trace is incompatible with --shard: traces are per-process artifacts \
                 and shard children only emit rows"
                    .into(),
            );
        }
        Ok(())
    }

    /// Apply the experiment-shaping overrides (`--scale`,
    /// `--backend`) to a registered experiment. Errors rather than
    /// silently no-ops: on an `Axis::Backend` experiment every axis
    /// point picks its own engine, so a `--backend` flag would be
    /// dead.
    pub fn configure(&self, mut experiment: Experiment) -> Result<Experiment, String> {
        if let Some(scale) = self.scale {
            experiment = experiment.scale(scale);
        }
        if let Some(backend) = self.backend {
            if experiment.axis_name() == "backend" {
                return Err(format!(
                    "--backend {} has no effect on {:?}: its backend axis selects \
                     the engine per cell",
                    backend.name(),
                    experiment.name
                ));
            }
            experiment = experiment.backend(backend);
        }
        Ok(experiment)
    }
}

/// What [`run_local`] produced.
pub struct LocalRun {
    /// Indexed rows of the (whole or sharded) run — `None` when shard
    /// mode already emitted them as JSONL on stdout for a parent
    /// process to merge.
    pub rows: Option<Vec<IndexedRow>>,
    /// False when a `max_cells` budget left cells unrun.
    pub complete: bool,
}

/// The one implementation of "run (a shard of) an experiment under
/// the shared CLI switches", used by both `figure_main` and
/// `sfence-sweep` so cache-writer naming, stats reporting and the
/// shard JSONL encoding can never drift apart.
pub fn run_local(
    experiment: &Experiment,
    args: &FigureArgs,
    max_cells: Option<usize>,
) -> Result<LocalRun, String> {
    let threads = args
        .threads
        .unwrap_or_else(|| default_threads(experiment.job_count()));
    let mut cache = match &args.cache_dir {
        Some(dir) => {
            // Writers sharing one cache directory — shard workers,
            // concurrent sweeps, or whole other hosts on a network
            // filesystem — each append to their own file (host token +
            // pid + nonce), so writes can never collide.
            let prefix = match args.shard {
                Some(shard) => format!("shard-{}", shard.index),
                None => "cache".to_string(),
            };
            Some(
                ResultCache::open_unique(dir, &prefix)
                    .map_err(|e| format!("open cache {}: {e}", dir.display()))?,
            )
        }
        None => None,
    };
    let mut opts = RunOptions::new(threads);
    if let Some(cache) = cache.as_mut() {
        opts = opts.cache(cache);
    }
    if let Some(shard) = args.shard {
        opts = opts.shard(shard);
    }
    if let Some(max) = max_cells {
        opts = opts.max_cells(max);
    }
    if args.trace.is_some() {
        opts = opts.pipe_trace();
    }
    let total = match args.shard {
        Some(shard) => (0..experiment.job_count())
            .filter(|&i| shard.contains(i))
            .count(),
        None => experiment.job_count(),
    };
    let meter = args
        .progress
        .then(|| sfence_obs::ProgressMeter::new(&experiment.name, total));
    let on_cell = |done: usize, _total: usize| {
        if let Some(m) = &meter {
            m.update(done);
        }
    };
    if args.progress {
        opts = opts.on_cell(&on_cell);
    }
    let outcome = experiment.run_with(opts);
    if let Some(path) = &args.trace {
        sfence_obs::write_chrome_trace(path, &outcome.traces)
            .map_err(|e| format!("write trace {}: {e}", path.display()))?;
        eprintln!(
            "trace: {} job(s), {} event(s) -> {}",
            outcome.traces.len(),
            outcome.traces.iter().map(|(_, t)| t.len()).sum::<usize>(),
            path.display()
        );
    }
    if cache.is_some() {
        eprintln!(
            "cache: {} hits, {} executed, {} skipped",
            outcome.stats.cache_hits, outcome.stats.executed, outcome.stats.skipped
        );
    }
    if outcome.stats.cache_write_errors > 0 {
        eprintln!(
            "warning: {} cache appends failed (results kept, cells not cached)",
            outcome.stats.cache_write_errors
        );
    }
    let rows = if args.shard.is_some() {
        let mut out = String::new();
        for row in &outcome.rows {
            out.push_str(&row.to_json().to_string_compact());
            out.push('\n');
        }
        print!("{out}");
        None
    } else {
        Some(outcome.rows)
    };
    Ok(LocalRun {
        rows,
        complete: outcome.complete,
    })
}

/// The store/diff/output switches shared by `sfence-sweep` and
/// `sfence-dist serve`, so a distributed campaign lands in — and
/// diffs against — exactly the same history a local one would.
#[derive(Debug, Clone, Default)]
pub struct OutputArgs {
    /// Append the completed run to this JSONL store.
    pub store: Option<PathBuf>,
    /// Provenance string (default: `git describe`).
    pub git: Option<String>,
    /// Unix seconds stamped on the store meta line.
    pub timestamp: Option<u64>,
    /// Diff against the K-th most recent comparable stored run
    /// (1 = latest; `--diff` is shorthand for `--diff-run 1`).
    pub diff_run: Option<usize>,
}

impl OutputArgs {
    /// Try to consume one store/diff flag.
    pub fn accept(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--store" => self.store = Some(PathBuf::from(take(it, "--store")?)),
            "--git" => self.git = Some(take(it, "--git")?),
            "--timestamp" => {
                self.timestamp = Some(
                    take(it, "--timestamp")?
                        .parse()
                        .map_err(|_| "--timestamp expects unix seconds".to_string())?,
                );
            }
            "--diff" => self.diff_run = Some(self.diff_run.unwrap_or(1)),
            "--diff-run" => {
                let k: usize = take(it, "--diff-run")?
                    .parse()
                    .map_err(|_| "--diff-run expects a positive integer".to_string())?;
                if k == 0 {
                    return Err("--diff-run counts back from 1 = latest".into());
                }
                self.diff_run = Some(k);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    pub fn wants_store_or_diff(&self) -> bool {
        self.store.is_some() || self.diff_run.is_some()
    }
}

/// Post-run handling of one merged result: history diff, store
/// append, and stdout rendering — the one implementation behind
/// `sfence-sweep` and `sfence-dist serve`.
pub fn finish_run(
    experiment: &Experiment,
    result: &SweepResult,
    out: &OutputArgs,
    json: bool,
) -> Result<(), String> {
    // Stamped into the store meta and matched on diff: cycle counts
    // across problem scales are incomparable. Derived from the
    // experiment's resolved parameters (not the --scale flag), so a
    // run without the flag and one naming the same scale explicitly
    // land in — and diff against — the same history.
    let scale = match experiment.uniform_scale() {
        Some(Scale::Small) => "small",
        Some(Scale::Eval) => "eval",
        None => "mixed",
    };
    // Same idea for the execution engine: sim and functional runs of
    // one experiment are separate histories ("mixed" = Axis::Backend).
    let backend = match experiment.uniform_backend() {
        Some(b) => b.name(),
        None => "mixed",
    };

    if let Some(k) = out.diff_run {
        let store = out
            .store
            .as_ref()
            .ok_or("--diff/--diff-run require --store (the history to diff against)")?;
        let history = ResultStore::new(store).history_at(&result.experiment, scale, backend)?;
        match history.get(k - 1) {
            None => eprintln!(
                "diff: only {} stored run(s) of {} at scale {scale} on the {backend} \
                 backend (wanted the {k}th most recent)",
                history.len(),
                result.experiment
            ),
            Some(prev) => {
                let diff = diff_rows(&prev.rows, &result.rows);
                if diff.is_empty() {
                    eprintln!(
                        "diff: identical to stored run {k} back, from {} ({})",
                        prev.meta.git, prev.meta.timestamp
                    );
                } else {
                    eprintln!(
                        "diff: against stored run {k} back, from {} ({}):",
                        prev.meta.git, prev.meta.timestamp
                    );
                    eprint!("{}", diff.to_report());
                }
            }
        }
    }
    if let Some(store) = &out.store {
        let git = match &out.git {
            Some(git) => git.clone(),
            None => git_describe(),
        };
        let timestamp = match out.timestamp {
            Some(t) => t,
            None => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        };
        let meta = RunMeta::new(
            &result.experiment,
            experiment.axis_name(),
            scale,
            backend,
            git,
            timestamp,
        );
        ResultStore::new(store)
            .append(&meta, result)
            .map_err(|e| format!("append to {}: {e}", store.display()))?;
    }

    if json {
        print!("{}", result.to_json_string());
    } else {
        print!("{}", result.to_ascii_table());
    }
    Ok(())
}

pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

pub fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "eval" => Ok(Scale::Eval),
        "small" => Ok(Scale::Small),
        other => Err(format!("unknown scale {other:?} (expected eval|small)")),
    }
}

pub fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} expects a value"))
}
