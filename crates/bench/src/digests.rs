//! Byte-identity digests of the cycle-accurate simulator's output.
//!
//! One SHA-256 per (registry workload, scale, fence config) over the
//! serialized [`RunReport`] of a paper-default run — the hot-loop
//! work's permanent safety net. Any optimization that changes a
//! cycle count, a stats counter, the final memory image or a register
//! changes a digest; `tests/golden/sim_digests.json` pins them all,
//! including the Eval scale the figure goldens never touch.
//!
//! After an *intentional* behavior change, regenerate with the rest
//! of the goldens: `cargo run -p sfence-bench --bin regen-golden`.

use sfence_harness::hash::sha256_hex;
use sfence_harness::{Json, RunReport, Session};
use sfence_sim::{FenceConfig, MachineConfig};
use sfence_workloads::{Scale, WorkloadParams, REGISTRY};

/// Version of the `sim_digests.json` schema.
pub const DIGESTS_SCHEMA_VERSION: u64 = 1;

/// The fence configurations every workload is digested under.
pub const DIGEST_FENCES: [FenceConfig; 4] = [
    FenceConfig::TRADITIONAL,
    FenceConfig::SFENCE,
    FenceConfig::TRADITIONAL_SPEC,
    FenceConfig::SFENCE_SPEC,
];

/// One pinned digest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestRow {
    pub workload: String,
    pub scale: &'static str,
    pub fence: &'static str,
    pub sha256: String,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Eval => "eval",
    }
}

fn params(scale: Scale) -> WorkloadParams {
    match scale {
        // The figures' small runs use the small parameter preset.
        Scale::Small => WorkloadParams::small(),
        Scale::Eval => WorkloadParams::default(),
    }
}

fn digest(report: &RunReport) -> String {
    sha256_hex(report.to_json().to_string_pretty().as_bytes())
}

/// Run every registry workload at `scale` under every fence config
/// and digest each serialized report.
pub fn digest_rows(scale: Scale) -> Vec<DigestRow> {
    let p = params(scale);
    let mut rows = Vec::new();
    for w in &REGISTRY {
        let built = w.build(&p);
        for fence in DIGEST_FENCES {
            let report = Session::for_workload(&built)
                .config(MachineConfig::paper_default().with_fence(fence))
                .run();
            rows.push(DigestRow {
                workload: w.name().to_string(),
                scale: scale_name(scale),
                fence: fence.label(),
                sha256: digest(&report),
            });
        }
    }
    rows
}

/// Assemble the `sim_digests.json` golden.
pub fn digests_json(rows: &[DigestRow]) -> Json {
    Json::obj()
        .field("schema_version", DIGESTS_SCHEMA_VERSION)
        .field(
            "digests",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .field("workload", r.workload.as_str())
                            .field("scale", r.scale)
                            .field("fence", r.fence)
                            .field("sha256", r.sha256.as_str())
                    })
                    .collect(),
            ),
        )
}

/// Parse a committed `sim_digests.json` back into rows (static strs
/// resolved against the known scale/fence vocabulary).
pub fn parse_digests(json: &Json) -> Result<Vec<DigestRow>, String> {
    let version = json
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != DIGESTS_SCHEMA_VERSION {
        return Err(format!(
            "sim_digests schema_version {version} != supported {DIGESTS_SCHEMA_VERSION}"
        ));
    }
    let rows = json
        .get("digests")
        .and_then(Json::as_arr)
        .ok_or("missing digests")?;
    rows.iter()
        .map(|r| {
            let field = |name: &str| -> Result<&str, String> {
                r.get(name)
                    .and_then(Json::as_str)
                    .ok_or(format!("digest row missing {name}"))
            };
            let scale = match field("scale")? {
                "small" => "small",
                "eval" => "eval",
                other => return Err(format!("unknown scale {other:?}")),
            };
            let fence_label = field("fence")?;
            let fence = DIGEST_FENCES
                .iter()
                .map(FenceConfig::label)
                .find(|&l| l == fence_label)
                .ok_or_else(|| format!("unknown fence label {fence_label:?}"))?;
            Ok(DigestRow {
                workload: field("workload")?.to_string(),
                scale,
                fence,
                sha256: field("sha256")?.to_string(),
            })
        })
        .collect()
}
