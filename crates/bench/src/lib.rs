//! # sfence-bench
//!
//! The experiment harness: one function per table/figure of the
//! paper's evaluation, shared by the `fig*`/`table*` binaries, the
//! Criterion benches and the integration tests. Every run validates
//! its workload's invariants before its timing is used.

use sfence_core::{hw_cost, ScopeConfig};
use sfence_isa::passes::ScStyle;
use sfence_sim::{FenceConfig, MachineConfig};
use sfence_workloads::support::BuiltWorkload;
use sfence_workloads::{barnes, dekker, harris, msn, pst, ptc, radiosity, wsq, ScopeMode};

/// The four fence configurations in paper order.
pub const CONFIGS: [FenceConfig; 4] = [
    FenceConfig::TRADITIONAL,
    FenceConfig::SFENCE,
    FenceConfig::TRADITIONAL_SPEC,
    FenceConfig::SFENCE_SPEC,
];

/// Machine used by all experiments (Table III), with an optional
/// memory-latency / ROB override.
pub fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper_default();
    m.max_cycles = 2_000_000_000;
    m
}

// ---------------------------------------------------------------------
// Benchmark builders at evaluation scale

pub fn build_dekker(workload: u32) -> BuiltWorkload {
    dekker::build(dekker::DekkerParams {
        iters: 40,
        workload,
    })
}

pub fn build_wsq(workload: u32, scope: ScopeMode) -> BuiltWorkload {
    wsq::build(wsq::WsqParams {
        tasks: 120,
        thieves: 7,
        workload,
        scope,
    })
}

pub fn build_msn(workload: u32, scope: ScopeMode) -> BuiltWorkload {
    msn::build(msn::MsnParams {
        items: 30,
        producers: 4,
        consumers: 4,
        workload,
        scope,
    })
}

pub fn build_harris(workload: u32, scope: ScopeMode) -> BuiltWorkload {
    harris::build(harris::HarrisParams {
        ops: 30,
        threads: 8,
        key_range: 48,
        workload,
        scope,
    })
}

pub fn build_pst(scope: ScopeMode) -> BuiltWorkload {
    pst::build(pst::PstParams {
        nodes: 1000,
        extra_edges: 1000,
        threads: 8,
        seed: 42,
        scope,
    })
}

pub fn build_ptc(scope: ScopeMode) -> BuiltWorkload {
    ptc::build(ptc::PtcParams {
        nodes: 1000,
        edges: 3000,
        threads: 8,
        seed: 43,
        task_work: 12,
        scope,
    })
}

pub fn build_barnes() -> BuiltWorkload {
    barnes::build(barnes::BarnesParams {
        bodies_per_thread: 96,
        cells_per_thread: 4,
        samples: 4,
        steps: 2,
        threads: 8,
        style: ScStyle::SetScope,
    })
}

pub fn build_radiosity() -> BuiltWorkload {
    radiosity::build(radiosity::RadiosityParams {
        patches: 24,
        interactions: 200,
        rounds: 2,
        threads: 8,
        seed: 44,
        scratch_work: 6,
        style: ScStyle::SetScope,
    })
}

/// The four full applications of Fig. 13, in paper order.
pub fn full_apps() -> Vec<BuiltWorkload> {
    vec![
        build_pst(ScopeMode::Class),
        build_ptc(ScopeMode::Class),
        build_barnes(),
        build_radiosity(),
    ]
}

// ---------------------------------------------------------------------
// Figure 12: impact of workload on the lock-free algorithms

#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub algo: &'static str,
    /// speedup of S over T at workload levels 1..=6.
    pub speedups: Vec<f64>,
}

pub fn fig12_data() -> Vec<Fig12Row> {
    let algos: Vec<(&'static str, Box<dyn Fn(u32) -> BuiltWorkload>)> = vec![
        ("dekker", Box::new(build_dekker)),
        ("wsq", Box::new(|w| build_wsq(w, ScopeMode::Class))),
        ("msn", Box::new(|w| build_msn(w, ScopeMode::Class))),
        ("harris", Box::new(|w| build_harris(w, ScopeMode::Class))),
    ];
    algos
        .into_iter()
        .map(|(algo, build)| {
            let speedups = (1..=6u32)
                .map(|level| {
                    let w = build(level);
                    let t = w.run(machine().with_fence(FenceConfig::TRADITIONAL));
                    let s = w.run(machine().with_fence(FenceConfig::SFENCE));
                    t.cycles as f64 / s.cycles as f64
                })
                .collect();
            Fig12Row { algo, speedups }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 13: full applications under T, S, T+, S+

#[derive(Debug, Clone)]
pub struct StackedBar {
    pub label: String,
    /// Total time normalized to the app's T run.
    pub norm_time: f64,
    /// Fence-stall component of the normalized bar.
    pub fence_part: f64,
}

#[derive(Debug, Clone)]
pub struct AppBars {
    pub app: &'static str,
    pub bars: Vec<StackedBar>,
}

fn bars_for(w: &BuiltWorkload, configs: &[(String, MachineConfig)]) -> Vec<StackedBar> {
    let baseline = w.run(configs[0].1.clone()).cycles as f64;
    configs
        .iter()
        .map(|(label, cfg)| {
            let s = w.run(cfg.clone());
            let norm = s.cycles as f64 / baseline;
            StackedBar {
                label: label.clone(),
                norm_time: norm,
                fence_part: s.fence_stall_fraction() * norm,
            }
        })
        .collect()
}

pub fn fig13_data() -> Vec<AppBars> {
    let configs: Vec<(String, MachineConfig)> = CONFIGS
        .iter()
        .map(|&f| (f.label().to_string(), machine().with_fence(f)))
        .collect();
    full_apps()
        .iter()
        .map(|w| AppBars {
            app: w.name,
            bars: bars_for(w, &configs),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 14: class scope vs set scope

pub fn fig14_data() -> Vec<AppBars> {
    let apps: Vec<(&'static str, BuiltWorkload, BuiltWorkload)> = vec![
        (
            "msn",
            build_msn(3, ScopeMode::Class),
            build_msn(3, ScopeMode::Set),
        ),
        (
            "harris",
            build_harris(3, ScopeMode::Class),
            build_harris(3, ScopeMode::Set),
        ),
        ("pst", build_pst(ScopeMode::Class), build_pst(ScopeMode::Set)),
        ("ptc", build_ptc(ScopeMode::Class), build_ptc(ScopeMode::Set)),
    ];
    let cfg = machine().with_fence(FenceConfig::SFENCE);
    apps.into_iter()
        .map(|(app, class_w, set_w)| {
            let base = class_w.run(cfg.clone());
            let baseline = base.cycles as f64;
            let set = set_w.run(cfg.clone());
            AppBars {
                app,
                bars: vec![
                    StackedBar {
                        label: "C.S.".into(),
                        norm_time: 1.0,
                        fence_part: base.fence_stall_fraction(),
                    },
                    StackedBar {
                        label: "S.S.".into(),
                        norm_time: set.cycles as f64 / baseline,
                        fence_part: set.fence_stall_fraction() * set.cycles as f64 / baseline,
                    },
                ],
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 15: memory latency sweep (200/300/500), T vs S

pub fn fig15_data() -> Vec<AppBars> {
    sweep(|lat| machine().with_mem_latency(lat), &[200, 300, 500])
}

// ---------------------------------------------------------------------
// Figure 16: ROB sweep (64/128/256), T vs S

pub fn fig16_data() -> Vec<AppBars> {
    sweep(|rob| machine().with_rob(rob as usize), &[64, 128, 256])
}

fn sweep(mk: impl Fn(u64) -> MachineConfig, points: &[u64]) -> Vec<AppBars> {
    full_apps()
        .iter()
        .map(|w| {
            // Normalized to the default-parameter T run, like the
            // paper ("normalized to the total execution time with
            // traditional fence").
            let baseline = w
                .run(machine().with_fence(FenceConfig::TRADITIONAL))
                .cycles as f64;
            let mut bars = Vec::new();
            for &x in points {
                for fence in [FenceConfig::TRADITIONAL, FenceConfig::SFENCE] {
                    let s = w.run(mk(x).with_fence(fence));
                    let norm = s.cycles as f64 / baseline;
                    bars.push(StackedBar {
                        label: format!("{x}{}", fence.label()),
                        norm_time: norm,
                        fence_part: s.fence_stall_fraction() * norm,
                    });
                }
            }
            AppBars { app: w.name, bars }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Tables

/// Table III: architectural parameters.
pub fn table3() -> String {
    let m = machine();
    let mut out = String::from("Table III: architectural parameters\n");
    out += &format!("  Processor        {} core CMP, out-of-order\n", m.num_cores);
    out += &format!("  ROB size         {}\n", m.core.rob_size);
    out += &format!(
        "  L1 Cache         private {} KB, {} way, {}-cycle latency\n",
        m.mem.l1_size / 1024,
        m.mem.l1_ways,
        m.mem.l1_latency
    );
    out += &format!(
        "  L2 Cache         shared {} MB, {} way, {}-cycle latency\n",
        m.mem.l2_size / (1024 * 1024),
        m.mem.l2_ways,
        m.mem.l2_latency
    );
    out += &format!("  Memory           {}-cycle latency\n", m.mem.mem_latency);
    out += &format!("  # of FSB entries {}\n", m.core.scope.fsb_entries);
    out += &format!("  # of FSS entries {}\n", m.core.scope.fss_entries);
    out
}

/// Table IV: benchmark descriptions.
pub fn table4() -> String {
    let mut out = String::from("Table IV: benchmark description\n");
    for b in sfence_workloads::catalog::TABLE_IV {
        out += &format!(
            "  {:<10} {:<6} {}\n",
            b.name,
            format!("{:?}", b.ty).to_lowercase(),
            b.description
        );
    }
    out
}

/// §VI-E hardware cost.
pub fn hwcost_report() -> String {
    let cfg = ScopeConfig::default();
    let m = machine();
    let cost = hw_cost(&cfg, m.core.rob_size, m.core.sb_size, 8);
    format!(
        "Hardware cost (per core, {} ROB / {} SB entries / {} FSB bits):\n\
         \x20 FSB over ROB     {:>5} bits\n\
         \x20 FSB over SB      {:>5} bits\n\
         \x20 FSS + FSS'       {:>5} bits\n\
         \x20 mapping table    {:>5} bits\n\
         \x20 total            {:>5} bits = {} bytes (paper: < 80 bytes)\n",
        m.core.rob_size,
        m.core.sb_size,
        cfg.fsb_entries,
        cost.fsb_rob_bits,
        cost.fsb_sb_bits,
        cost.fss_bits,
        cost.mapping_bits,
        cost.total_bits(),
        cost.total_bytes()
    )
}

// ---------------------------------------------------------------------
// Pretty-printing

pub fn print_fig12(rows: &[Fig12Row]) {
    println!("Figure 12: speedup of S-Fence over traditional fence vs workload");
    println!(
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  peak",
        "algo", 1, 2, 3, 4, 5, 6
    );
    for r in rows {
        let peak = r.speedups.iter().cloned().fold(f64::MIN, f64::max);
        print!("{:<8}", r.algo);
        for s in &r.speedups {
            print!(" {s:>6.3}");
        }
        println!("  {peak:.3}x");
    }
}

pub fn print_bars(title: &str, data: &[AppBars]) {
    println!("{title}");
    for app in data {
        println!("  {}:", app.app);
        for b in &app.bars {
            println!(
                "    {:<6} total {:>6.3}  fence stalls {:>6.3}  others {:>6.3}",
                b.label,
                b.norm_time,
                b.fence_part,
                b.norm_time - b.fence_part
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t3 = table3();
        assert!(t3.contains("8 core CMP"));
        assert!(t3.contains("300-cycle"));
        let t4 = table4();
        assert!(t4.contains("dekker"));
        assert!(t4.contains("Parallel transitive closure"));
        let hc = hwcost_report();
        assert!(hc.contains("bytes"));
    }
}
