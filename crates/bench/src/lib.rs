//! # sfence-bench
//!
//! The paper's evaluation, written as thin [`Experiment`]
//! descriptions over the workload registry: one declarative sweep per
//! figure, shared by the `fig*`/`table*` binaries, the benches and
//! the integration tests. Every run validates its workload's
//! invariants before its timing is used (the harness `Session` does
//! this on every job).
//!
//! Each `figN_experiment()` *describes* the sweep; `figN_data_from()`
//! maps its structured rows onto the figure's presentation
//! (normalized stacked bars, speedup curves); `figN_data()` is the
//! one-shot convenience that runs the sweep in parallel.

use sfence_core::{hw_cost, ScopeConfig};
use sfence_harness::{Axis, BackendId, Experiment, SweepResult};
use sfence_sim::{FenceConfig, MachineConfig};
use sfence_workloads::{catalog, ScopeMode, WorkloadParams};

pub mod cli;
pub mod digests;
pub mod perf;

/// The four fence configurations in paper order.
pub const CONFIGS: [FenceConfig; 4] = [
    FenceConfig::TRADITIONAL,
    FenceConfig::SFENCE,
    FenceConfig::TRADITIONAL_SPEC,
    FenceConfig::SFENCE_SPEC,
];

/// Machine used by all experiments (Table III), with a raised cycle
/// guard for the evaluation-scale runs.
pub fn machine() -> MachineConfig {
    let mut m = MachineConfig::paper_default();
    m.max_cycles = 2_000_000_000;
    m
}

// ---------------------------------------------------------------------
// Figure 12: impact of workload on the lock-free algorithms

#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub algo: &'static str,
    /// speedup of S over T at workload levels 1..=6.
    pub speedups: Vec<f64>,
}

pub const FIG12_LEVELS: [u32; 6] = [1, 2, 3, 4, 5, 6];

pub fn fig12_experiment() -> Experiment {
    Experiment::new("fig12")
        .base(machine())
        .workloads(catalog::lock_free_names(), WorkloadParams::default())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::Level(FIG12_LEVELS.to_vec()))
}

pub fn fig12_data_from(result: &SweepResult) -> Vec<Fig12Row> {
    catalog::lock_free_names()
        .into_iter()
        .map(|algo| Fig12Row {
            algo,
            speedups: FIG12_LEVELS
                .iter()
                .map(|level| {
                    let value = level.to_string();
                    result.cycles(algo, "T", &value) as f64
                        / result.cycles(algo, "S", &value) as f64
                })
                .collect(),
        })
        .collect()
}

pub fn fig12_data() -> Vec<Fig12Row> {
    fig12_data_from(&fig12_experiment().run_parallel())
}

// ---------------------------------------------------------------------
// Figure 13: full applications under T, S, T+, S+

#[derive(Debug, Clone)]
pub struct StackedBar {
    pub label: String,
    /// Total time normalized to the app's T run.
    pub norm_time: f64,
    /// Fence-stall component of the normalized bar.
    pub fence_part: f64,
}

#[derive(Debug, Clone)]
pub struct AppBars {
    pub app: &'static str,
    pub bars: Vec<StackedBar>,
}

pub fn fig13_experiment() -> Experiment {
    Experiment::new("fig13")
        .base(machine())
        .workloads(catalog::full_app_names(), WorkloadParams::default())
        .fences(CONFIGS.to_vec())
}

pub fn fig13_data_from(result: &SweepResult) -> Vec<AppBars> {
    catalog::full_app_names()
        .into_iter()
        .map(|app| {
            let baseline = result.cycles(app, "T", "") as f64;
            AppBars {
                app,
                bars: CONFIGS
                    .iter()
                    .map(|fence| {
                        let row = result.row(app, fence.label(), "");
                        let norm = row.timed_cycles() as f64 / baseline;
                        StackedBar {
                            label: fence.label().to_string(),
                            norm_time: norm,
                            fence_part: row.timed_stall_fraction() * norm,
                        }
                    })
                    .collect(),
            }
        })
        .collect()
}

pub fn fig13_data() -> Vec<AppBars> {
    fig13_data_from(&fig13_experiment().run_parallel())
}

// ---------------------------------------------------------------------
// Figure 14: class scope vs set scope

/// The class-scope benchmarks compared under both scope flavours.
pub fn fig14_apps() -> Vec<&'static str> {
    vec!["msn", "harris", "pst", "ptc"]
}

pub fn fig14_experiment() -> Experiment {
    Experiment::new("fig14")
        .base(machine())
        .workloads(fig14_apps(), WorkloadParams::default())
        .fences(vec![FenceConfig::SFENCE])
        .axis(Axis::Scope(vec![ScopeMode::Class, ScopeMode::Set]))
}

pub fn fig14_data_from(result: &SweepResult) -> Vec<AppBars> {
    fig14_apps()
        .into_iter()
        .map(|app| {
            let class = result.row(app, "S", "class");
            let set = result.row(app, "S", "set");
            let baseline = class.timed_cycles() as f64;
            let set_norm = set.timed_cycles() as f64 / baseline;
            AppBars {
                app,
                bars: vec![
                    StackedBar {
                        label: "C.S.".into(),
                        norm_time: 1.0,
                        fence_part: class.timed_stall_fraction(),
                    },
                    StackedBar {
                        label: "S.S.".into(),
                        norm_time: set_norm,
                        fence_part: set.timed_stall_fraction() * set_norm,
                    },
                ],
            }
        })
        .collect()
}

pub fn fig14_data() -> Vec<AppBars> {
    fig14_data_from(&fig14_experiment().run_parallel())
}

// ---------------------------------------------------------------------
// Figures 15 & 16: machine-parameter sweeps, T vs S

pub const FIG15_LATENCIES: [u64; 3] = [200, 300, 500];
pub const FIG16_ROBS: [usize; 3] = [64, 128, 256];

pub fn fig15_experiment() -> Experiment {
    Experiment::new("fig15")
        .base(machine())
        .workloads(catalog::full_app_names(), WorkloadParams::default())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::MemLatency(FIG15_LATENCIES.to_vec()))
}

pub fn fig16_experiment() -> Experiment {
    Experiment::new("fig16")
        .base(machine())
        .workloads(catalog::full_app_names(), WorkloadParams::default())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::RobSize(FIG16_ROBS.to_vec()))
}

/// Shared presentation of the two sweeps: bars `<value><config>`,
/// normalized to the default-parameter T run, like the paper
/// ("normalized to the total execution time with traditional fence").
fn sweep_data_from(result: &SweepResult, points: &[String], baseline_value: &str) -> Vec<AppBars> {
    catalog::full_app_names()
        .into_iter()
        .map(|app| {
            let baseline = result.cycles(app, "T", baseline_value) as f64;
            let mut bars = Vec::new();
            for value in points {
                for fence in [FenceConfig::TRADITIONAL, FenceConfig::SFENCE] {
                    let row = result.row(app, fence.label(), value);
                    let norm = row.timed_cycles() as f64 / baseline;
                    bars.push(StackedBar {
                        label: format!("{value}{}", fence.label()),
                        norm_time: norm,
                        fence_part: row.timed_stall_fraction() * norm,
                    });
                }
            }
            AppBars { app, bars }
        })
        .collect()
}

pub fn fig15_data_from(result: &SweepResult) -> Vec<AppBars> {
    let points: Vec<String> = FIG15_LATENCIES.iter().map(u64::to_string).collect();
    // The default memory latency is 300, so the baseline T run is one
    // of the sweep's own rows.
    sweep_data_from(result, &points, "300")
}

pub fn fig16_data_from(result: &SweepResult) -> Vec<AppBars> {
    let points: Vec<String> = FIG16_ROBS.iter().map(|r| r.to_string()).collect();
    sweep_data_from(result, &points, "128")
}

pub fn fig15_data() -> Vec<AppBars> {
    fig15_data_from(&fig15_experiment().run_parallel())
}

pub fn fig16_data() -> Vec<AppBars> {
    fig16_data_from(&fig16_experiment().run_parallel())
}

// ---------------------------------------------------------------------
// hwsweep: the §VI-D hardware-sensitivity sweeps over the
// already-plumbed ROB / SB / FSB / FSS axes.

pub const HWSWEEP_ROBS: [usize; 3] = [64, 128, 256];
pub const HWSWEEP_SBS: [usize; 3] = [4, 8, 16];
/// FSB columns (the last is reserved for set scope, so 2 is the
/// minimum useful size).
pub const HWSWEEP_FSBS: [usize; 3] = [2, 4, 8];
/// FSS entries; 1 forces nested scopes to overflow and degrade.
pub const HWSWEEP_FSSS: [usize; 3] = [1, 4, 8];
/// Issue/retire widths (both move together; 2 is Table III's core).
pub const HWSWEEP_WIDTHS: [usize; 3] = [1, 2, 4];
/// Shared L2 capacities in bytes. The benchmark working sets are
/// small (graphs of a few thousand nodes), so the sweep straddles
/// *them* rather than Table III's 1 MB: sizes chosen so the
/// golden-gated `--scale small` rows actually move with the L2 model
/// (at 1 MB and beyond every size is equally cold for these apps).
pub const HWSWEEP_L2S: [usize; 3] = [8 * 1024, 32 * 1024, 1024 * 1024];

/// Class-scope lock-free structures: the workloads whose fences the
/// scope hardware actually serves, so FSB/FSS sizing shows up.
pub fn hwsweep_apps() -> Vec<&'static str> {
    vec!["wsq", "msn"]
}

/// Workloads with L2-resident reuse (shared graphs revisited across
/// phases). The lock-free `hwsweep_apps` stream a rotating pad region
/// with no reuse, so L2 capacity is invisible to them at any size.
pub fn hwsweep_l2_apps() -> Vec<&'static str> {
    vec!["pst", "ptc"]
}

/// The six single-axis experiments behind the `hwsweep` binary,
/// individually runnable through `sfence-sweep` as `hwsweep-rob`,
/// `hwsweep-sb`, `hwsweep-fsb`, `hwsweep-fss`, `hwsweep-width`,
/// `hwsweep-l2`.
pub fn hwsweep_experiments() -> Vec<Experiment> {
    let mk = |name: &str, apps: Vec<&'static str>, axis: Axis| {
        Experiment::new(name)
            .base(machine())
            .workloads(apps, WorkloadParams::default())
            .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
            .axis(axis)
    };
    vec![
        mk(
            "hwsweep-rob",
            hwsweep_apps(),
            Axis::RobSize(HWSWEEP_ROBS.to_vec()),
        ),
        mk(
            "hwsweep-sb",
            hwsweep_apps(),
            Axis::SbSize(HWSWEEP_SBS.to_vec()),
        ),
        mk(
            "hwsweep-fsb",
            hwsweep_apps(),
            Axis::FsbEntries(HWSWEEP_FSBS.to_vec()),
        ),
        mk(
            "hwsweep-fss",
            hwsweep_apps(),
            Axis::FssEntries(HWSWEEP_FSSS.to_vec()),
        ),
        mk(
            "hwsweep-width",
            hwsweep_apps(),
            Axis::IssueWidth(HWSWEEP_WIDTHS.to_vec()),
        ),
        mk(
            "hwsweep-l2",
            hwsweep_l2_apps(),
            Axis::L2Size(HWSWEEP_L2S.to_vec()),
        ),
    ]
}

/// Concatenate the four axis sweeps into the one `hwsweep` result
/// (each row keeps its own axis name, so the merged rows stay
/// self-describing).
pub fn hwsweep_merge(results: &[SweepResult]) -> SweepResult {
    SweepResult {
        experiment: "hwsweep".into(),
        rows: results.iter().flat_map(|r| r.rows.clone()).collect(),
    }
}

// ---------------------------------------------------------------------
// litmus: a sweep over generated scenarios, proving the litmus/*
// registry names run through the ordinary experiment machinery.

/// A small cross-section of litmus scenarios as a registered
/// experiment (cycle comparisons, cache/shard smoke). Bulk verdict
/// campaigns live in the `sfence-litmus` binary.
pub fn litmus_experiment() -> Experiment {
    let names: Vec<String> = ["mp", "sb", "sb-wrongset", "cas", "pc-deep"]
        .iter()
        .flat_map(|family| (0..2u64).map(move |seed| format!("litmus/{family}/{seed}")))
        .collect();
    Experiment::new("litmus")
        .base(machine())
        .workloads(names, WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
}

// ---------------------------------------------------------------------
// The experiment registry (sweep binary, CI smoke jobs)

/// A deliberately tiny sweep (8 small-scale cells) for CI smoke and
/// kill-and-resume checks: big enough to shard, fast enough to run in
/// seconds.
pub fn smoke_experiment() -> Experiment {
    Experiment::new("smoke")
        .base(machine())
        .workloads(["dekker", "msn"], WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::Level(vec![1, 2]))
}

/// The litmus cross-section with the engines side by side: every cell
/// once on the cycle simulator, once on the functional interpreter —
/// the sweep-level face of the differential-testing story.
pub fn backends_experiment() -> Experiment {
    litmus_experiment()
        .axis(Axis::Backend(vec![BackendId::Sim, BackendId::Functional]))
        .rename("backends")
}

/// Experiments runnable by name through `sfence-sweep`.
pub fn experiment_names() -> [&'static str; 14] {
    [
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "smoke",
        "litmus",
        "backends",
        "hwsweep-rob",
        "hwsweep-sb",
        "hwsweep-fsb",
        "hwsweep-fss",
        "hwsweep-width",
        "hwsweep-l2",
    ]
}

/// Look an experiment up by name.
pub fn experiment_by_name(name: &str) -> Option<Experiment> {
    Some(match name {
        "fig12" => fig12_experiment(),
        "fig13" => fig13_experiment(),
        "fig14" => fig14_experiment(),
        "fig15" => fig15_experiment(),
        "fig16" => fig16_experiment(),
        "smoke" => smoke_experiment(),
        "litmus" => litmus_experiment(),
        "backends" => backends_experiment(),
        "hwsweep-rob" | "hwsweep-sb" | "hwsweep-fsb" | "hwsweep-fss" | "hwsweep-width"
        | "hwsweep-l2" => hwsweep_experiments().into_iter().find(|e| e.name == name)?,
        _ => return None,
    })
}

/// The figures whose `--json --scale small` output is pinned by the
/// golden files under `tests/golden/` (regenerate with
/// `cargo run -p sfence-bench --bin regen-golden`).
pub fn golden_names() -> [&'static str; 5] {
    ["fig12", "fig13", "fig14", "fig15", "fig16"]
}

/// The machine-readable inventory behind `sfence-sweep --list --json`:
/// every registered experiment (axis, job count, default backend,
/// uniform scale, workloads, fingerprint), the backends, and the
/// litmus families. Tooling — the distributed coordinator included —
/// validates requests against this instead of parsing the human
/// listing; the per-experiment `fingerprint` is the same hash the
/// `sfence-dist` handshake compares.
pub fn list_json() -> sfence_harness::Json {
    use sfence_harness::Json;
    let experiments = experiment_names()
        .iter()
        .map(|&name| {
            let e = experiment_by_name(name).expect("registered name");
            Json::obj()
                .field("name", name)
                .field("axis", e.axis_name())
                .field("jobs", e.job_count())
                .field("backend", e.uniform_backend().map_or("mixed", |b| b.name()))
                .field(
                    "scale",
                    match e.uniform_scale() {
                        Some(sfence_workloads::Scale::Eval) => "eval",
                        Some(sfence_workloads::Scale::Small) => "small",
                        None => "mixed",
                    },
                )
                .field(
                    "workloads",
                    Json::Arr(e.workload_names().into_iter().map(Json::from).collect()),
                )
                .field("fingerprint", e.fingerprint())
        })
        .collect();
    let backends = [
        BackendId::Sim,
        BackendId::Functional,
        BackendId::Enumerative,
    ]
    .iter()
    .map(|b| Json::from(b.name()))
    .collect();
    let families = sfence_workloads::litmus::FAMILIES
        .iter()
        .map(|f| {
            Json::obj()
                .field("name", f.name())
                .field("covering", f.covering())
                .field("description", f.description())
        })
        .collect();
    Json::obj()
        .field("schema_version", sfence_harness::SCHEMA_VERSION)
        .field("experiments", Json::Arr(experiments))
        .field("backends", Json::Arr(backends))
        .field("litmus_families", Json::Arr(families))
}

// ---------------------------------------------------------------------
// Tables

/// Table III: architectural parameters.
pub fn table3() -> String {
    let m = machine();
    let mut out = String::from("Table III: architectural parameters\n");
    out += &format!(
        "  Processor        {} core CMP, out-of-order\n",
        m.num_cores
    );
    out += &format!("  ROB size         {}\n", m.core.rob_size);
    out += &format!(
        "  L1 Cache         private {} KB, {} way, {}-cycle latency\n",
        m.mem.l1_size / 1024,
        m.mem.l1_ways,
        m.mem.l1_latency
    );
    out += &format!(
        "  L2 Cache         shared {} MB, {} way, {}-cycle latency\n",
        m.mem.l2_size / (1024 * 1024),
        m.mem.l2_ways,
        m.mem.l2_latency
    );
    out += &format!("  Memory           {}-cycle latency\n", m.mem.mem_latency);
    out += &format!("  # of FSB entries {}\n", m.core.scope.fsb_entries);
    out += &format!("  # of FSS entries {}\n", m.core.scope.fss_entries);
    out
}

/// Table IV: benchmark descriptions, straight off the registry.
pub fn table4() -> String {
    let mut out = String::from("Table IV: benchmark description\n");
    for w in &catalog::REGISTRY {
        out += &format!(
            "  {:<10} {:<6} {}\n",
            w.info.name,
            format!("{:?}", w.info.ty).to_lowercase(),
            w.info.description
        );
    }
    out
}

/// §VI-E hardware cost.
pub fn hwcost_report() -> String {
    let cfg = ScopeConfig::default();
    let m = machine();
    let cost = hw_cost(&cfg, m.core.rob_size, m.core.sb_size, 8);
    format!(
        "Hardware cost (per core, {} ROB / {} SB entries / {} FSB bits):\n\
         \x20 FSB over ROB     {:>5} bits\n\
         \x20 FSB over SB      {:>5} bits\n\
         \x20 FSS + FSS'       {:>5} bits\n\
         \x20 mapping table    {:>5} bits\n\
         \x20 total            {:>5} bits = {} bytes (paper: < 80 bytes)\n",
        m.core.rob_size,
        m.core.sb_size,
        cfg.fsb_entries,
        cost.fsb_rob_bits,
        cost.fsb_sb_bits,
        cost.fss_bits,
        cost.mapping_bits,
        cost.total_bits(),
        cost.total_bytes()
    )
}

// ---------------------------------------------------------------------
// Pretty-printing

pub fn print_fig12(rows: &[Fig12Row]) {
    println!("Figure 12: speedup of S-Fence over traditional fence vs workload");
    println!(
        "{:<8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}  peak",
        "algo", 1, 2, 3, 4, 5, 6
    );
    for r in rows {
        let peak = r.speedups.iter().cloned().fold(f64::MIN, f64::max);
        print!("{:<8}", r.algo);
        for s in &r.speedups {
            print!(" {s:>6.3}");
        }
        println!("  {peak:.3}x");
    }
}

pub fn print_bars(title: &str, data: &[AppBars]) {
    println!("{title}");
    for app in data {
        println!("  {}:", app.app);
        for b in &app.bars {
            println!(
                "    {:<6} total {:>6.3}  fence stalls {:>6.3}  others {:>6.3}",
                b.label,
                b.norm_time,
                b.fence_part,
                b.norm_time - b.fence_part
            );
        }
    }
}

/// Shared driver for the figure binaries: run the experiment (in
/// parallel), emit machine-readable rows with `--json`, the raw
/// sweep-row table with `--rows`, otherwise the figure's ASCII
/// rendering plus the paper's observed trend.
///
/// Further switches: `--scale small|eval` overrides the problem size
/// (the golden CI job pins `--json --scale small` output),
/// `--backend sim|functional|enumerative` swaps the execution engine
/// (figure renderings need cycle counts, so non-sim backends pair
/// with `--json`/`--rows`), `--cache-dir DIR` backs the run with the
/// content-addressed result cache (`--resume` documents the intent;
/// cached runs always skip hit cells), `--shard I/N` runs one shard
/// and emits indexed rows as JSONL for a parent `sfence-sweep` to
/// merge, and `--threads N` caps the worker pool.
pub fn figure_main(experiment: Experiment, render: impl Fn(&SweepResult), paper_notes: &[&str]) {
    let args = cli::FigureArgs::parse().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // The figure renderings are built from cycle counts; an untimed
    // engine can only emit the structured rows. Shard workers are
    // exempt: they emit indexed JSONL and never render.
    if let Some(backend) = args.backend {
        if !backend.timed() && !args.json && !args.rows && args.shard.is_none() {
            eprintln!(
                "error: --backend {} reports no cycle data; pair it with --json or --rows",
                backend.name()
            );
            std::process::exit(2);
        }
    }
    let experiment = args.configure(experiment).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let result = run_experiment(&experiment, &args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let result = match result {
        Some(result) => result,
        // Shard mode already emitted its rows.
        None => return,
    };
    if args.json {
        print!("{}", result.to_json_string());
        return;
    }
    if args.rows {
        print!("{}", result.to_ascii_table());
        return;
    }
    render(&result);
    if !paper_notes.is_empty() {
        println!();
        for note in paper_notes {
            println!("{note}");
        }
    }
}

/// Run an experiment under the shared figure switches. Shard mode
/// prints indexed JSONL rows and returns `None`; otherwise the full
/// result comes back for rendering.
fn run_experiment(
    experiment: &Experiment,
    args: &cli::FigureArgs,
) -> Result<Option<SweepResult>, String> {
    let local = cli::run_local(experiment, args, None)?;
    match local.rows {
        // Shard mode already emitted its indexed JSONL rows.
        None => Ok(None),
        Some(rows) => {
            SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows).map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t3 = table3();
        assert!(t3.contains("8 core CMP"));
        assert!(t3.contains("300-cycle"));
        let t4 = table4();
        assert!(t4.contains("dekker"));
        assert!(t4.contains("Parallel transitive closure"));
        let hc = hwcost_report();
        assert!(hc.contains("bytes"));
    }

    #[test]
    fn experiments_describe_the_paper_sweeps() {
        assert_eq!(fig12_experiment().job_count(), 4 * 6 * 2);
        assert_eq!(fig13_experiment().job_count(), 4 * 4);
        assert_eq!(fig14_experiment().job_count(), 4 * 2);
        assert_eq!(fig15_experiment().job_count(), 4 * 3 * 2);
        assert_eq!(fig16_experiment().job_count(), 4 * 3 * 2);
        for e in hwsweep_experiments() {
            assert_eq!(e.job_count(), 2 * 3 * 2, "{}", e.name);
        }
        assert_eq!(litmus_experiment().job_count(), 5 * 2 * 2);
    }

    #[test]
    fn every_registered_experiment_resolves() {
        for name in experiment_names() {
            let e = experiment_by_name(name).unwrap_or_else(|| panic!("{name} not resolvable"));
            assert!(e.job_count() > 0, "{name} has no jobs");
        }
        assert!(experiment_by_name("nonesuch").is_none());
    }
}
