//! Regenerates Figure 15: memory access latency sweep (200/300/500).
//! Pass `--json` for the structured sweep rows; `--scale small`
//! runs the golden-test problem size, and `--cache-dir`/`--resume`/
//! `--shard`/`--threads` drive cached, sharded sweeps (see
//! `sfence_bench::figure_main`).
fn main() {
    sfence_bench::figure_main(
        sfence_bench::fig15_experiment(),
        |result| {
            sfence_bench::print_bars(
                "Figure 15: varying memory latency; bars <latency><config>, normalized to default T",
                &sfence_bench::fig15_data_from(result),
            )
        },
        &["paper: barnes/radiosity gains grow with latency; pst does not (full fence offsets)"],
    );
}
