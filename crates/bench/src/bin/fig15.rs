//! Regenerates Figure 15: memory access latency sweep (200/300/500).
fn main() {
    let data = sfence_bench::fig15_data();
    sfence_bench::print_bars(
        "Figure 15: varying memory latency; bars <latency><config>, normalized to default T",
        &data,
    );
    println!("\npaper: barnes/radiosity gains grow with latency; pst does not (full fence offsets)");
}
