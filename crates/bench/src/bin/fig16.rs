//! Regenerates Figure 16: ROB size sweep (64/128/256).
fn main() {
    let data = sfence_bench::fig16_data();
    sfence_bench::print_bars(
        "Figure 16: varying ROB size; bars <rob><config>, normalized to default T",
        &data,
    );
    println!("\npaper: barnes improves with bigger ROB; radiosity/pst/ptc saturate");
}
