//! Regenerates Figure 16: ROB size sweep (64/128/256).
//! Pass `--json` for the structured sweep rows; `--scale small`
//! runs the golden-test problem size, and `--cache-dir`/`--resume`/
//! `--shard`/`--threads` drive cached, sharded sweeps (see
//! `sfence_bench::figure_main`).
fn main() {
    sfence_bench::figure_main(
        sfence_bench::fig16_experiment(),
        |result| {
            sfence_bench::print_bars(
                "Figure 16: varying ROB size; bars <rob><config>, normalized to default T",
                &sfence_bench::fig16_data_from(result),
            )
        },
        &["paper: barnes improves with bigger ROB; radiosity/pst/ptc saturate"],
    );
}
