//! Regenerates the golden-row regression files under `tests/golden/`:
//! for each pinned figure, the byte-exact output of
//! `figN --json --scale small`. The CI golden job diffs the binaries'
//! live output against these files; after an intentional simulator or
//! schema change, rerun
//! `cargo run -p sfence-bench --bin regen-golden` and commit the
//! result.

use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for name in sfence_bench::golden_names() {
        let experiment = sfence_bench::experiment_by_name(name)
            .expect("golden names are registered experiments")
            .scale(sfence_workloads::Scale::Small);
        let json = experiment.run_parallel().to_json_string();
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }
}
