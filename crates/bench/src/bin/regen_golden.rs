//! Regenerates the golden regression files under `tests/golden/`:
//!
//! - `figN.json` / `hwsweep.json`: byte-exact output of the
//!   corresponding binary run as `--json --scale small`;
//! - `table3.txt` / `table4.txt`: byte-exact output of the `table3` /
//!   `table4` binaries;
//! - `sim_digests.json`: SHA-256 of every registry workload's
//!   serialized sim report, both scales, all four fence configs
//!   (checked by the `sim_byte_identity` test in this crate).
//!
//! The CI golden job diffs the binaries' live output against these
//! files; after an intentional simulator or schema change, rerun
//! `cargo run -p sfence-bench --bin regen-golden` and commit the
//! result.

use std::path::Path;

fn write(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for name in sfence_bench::golden_names() {
        let experiment = sfence_bench::experiment_by_name(name)
            .expect("golden names are registered experiments")
            .scale(sfence_workloads::Scale::Small);
        write(
            &dir,
            &format!("{name}.json"),
            &experiment.run_parallel().to_json_string(),
        );
    }
    let hwsweep: Vec<_> = sfence_bench::hwsweep_experiments()
        .into_iter()
        .map(|e| e.scale(sfence_workloads::Scale::Small).run_parallel())
        .collect();
    write(
        &dir,
        "hwsweep.json",
        &sfence_bench::hwsweep_merge(&hwsweep).to_json_string(),
    );
    write(&dir, "table3.txt", &sfence_bench::table3());
    write(&dir, "table4.txt", &sfence_bench::table4());
    let mut digests = sfence_bench::digests::digest_rows(sfence_workloads::Scale::Small);
    digests.extend(sfence_bench::digests::digest_rows(
        sfence_workloads::Scale::Eval,
    ));
    write(
        &dir,
        "sim_digests.json",
        &sfence_bench::digests::digests_json(&digests).to_string_pretty(),
    );
}
