//! Prints the §VI-E hardware cost accounting.
fn main() {
    print!("{}", sfence_bench::hwcost_report());
}
