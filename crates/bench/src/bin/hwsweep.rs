//! `hwsweep`: the §VI-D hardware-sensitivity discussion — T vs S
//! across the ROB, store-buffer, FSB and FSS sizing axes (one
//! single-axis sweep per knob, merged into one result).
//!
//! `--json` emits the merged rows (pinned by
//! `tests/golden/hwsweep.json` at `--scale small`); `--rows` prints
//! the raw merged table; the default renders one table per axis. The
//! four sub-sweeps are also individually runnable (with caching and
//! sharding) through `sfence-sweep --experiment hwsweep-<axis>`.

use sfence_bench::cli::FigureArgs;
use sfence_harness::default_threads;

fn main() {
    let args = FigureArgs::parse().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if args.cache_dir.is_some() || args.shard.is_some() || args.resume {
        // Caching/sharding apply per experiment; use the registered
        // hwsweep-<axis> names through sfence-sweep for that.
        eprintln!(
            "error: hwsweep merges four sweeps; run `sfence-sweep --experiment hwsweep-<axis>` \
             for --cache-dir/--resume/--shard"
        );
        std::process::exit(2);
    }
    let experiments: Vec<_> = sfence_bench::hwsweep_experiments()
        .into_iter()
        .map(|e| match args.scale {
            Some(scale) => e.scale(scale),
            None => e,
        })
        .collect();
    let total_jobs: usize = experiments.iter().map(|e| e.job_count()).sum();
    let threads = args.threads.unwrap_or_else(|| default_threads(total_jobs));
    let results: Vec<_> = experiments.iter().map(|e| e.run(threads)).collect();
    let merged = sfence_bench::hwsweep_merge(&results);
    if args.json {
        print!("{}", merged.to_json_string());
        return;
    }
    if args.rows {
        print!("{}", merged.to_ascii_table());
        return;
    }
    for result in &results {
        print!("{}", result.to_ascii_table());
        println!();
    }
    println!("paper (§VI-D): S-Fence's advantage grows with ROB/SB pressure and");
    println!("survives small FSB/FSS sizes — overflow degrades to a full fence,");
    println!("costing performance, never correctness (see sfence-litmus).");
}
