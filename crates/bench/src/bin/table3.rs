//! Prints Table III (architectural parameters actually used).
fn main() {
    print!("{}", sfence_bench::table3());
}
