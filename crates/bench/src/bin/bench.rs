//! `sfence-bench`: the repo-level bench utility. `perf` runs the
//! perf-trajectory suite (golden experiments + functional batches)
//! and writes/updates `BENCH_perf.json`; with `--check` it becomes
//! the CI perf gate, failing on a >25% per-task cells/sec regression
//! against the committed artifact.
//!
//! ```text
//! sfence-bench perf [--runs N] [--threads N] [--out PATH] [--check ARTIFACT] [--profile]
//! ```
//!
//! Exit codes: 0 ok, 1 perf regression (or suite error), 2 usage.

use sfence_bench::cli::{git_describe, take};
use sfence_bench::perf;
use sfence_harness::default_threads;
use sfence_obs::prof;

struct PerfArgs {
    runs: usize,
    threads: Option<usize>,
    out: Option<std::path::PathBuf>,
    check: Option<std::path::PathBuf>,
    profile: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sfence-bench perf [--runs N] [--threads N] [--out PATH] [--check ARTIFACT] [--profile]\n\
         \x20 --runs N        samples per task, median kept (default: 1; the CI gate uses 3)\n\
         \x20 --threads N     worker pool cap (default: one per CPU)\n\
         \x20 --out PATH      write the artifact to PATH instead of stdout\n\
         \x20 --check PATH    gate mode: fail (exit 1) on >{}% cells/sec regression vs PATH\n\
         \x20 --profile       print a hierarchical phase-timing table to stderr after the suite",
        (perf::REGRESSION_THRESHOLD * 100.0) as u32
    );
    std::process::exit(2);
}

fn parse_perf_args(mut it: impl Iterator<Item = String>) -> Result<PerfArgs, String> {
    let mut args = PerfArgs {
        runs: 1,
        threads: None,
        out: None,
        check: None,
        profile: false,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--runs" => {
                args.runs = take(&mut it, "--runs")?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--runs expects a positive integer")?;
            }
            "--threads" => {
                args.threads = Some(
                    take(&mut it, "--threads")?
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--threads expects a positive integer")?,
                );
            }
            "--out" => args.out = Some(take(&mut it, "--out")?.into()),
            "--check" => args.check = Some(take(&mut it, "--check")?.into()),
            "--profile" => args.profile = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn perf_main(args: PerfArgs) -> Result<(), String> {
    // The suite measures wall time per task, so thread count is part
    // of the measurement; default to the machine like the sweeps do.
    let threads = args.threads.unwrap_or_else(|| default_threads(usize::MAX));
    if args.profile {
        prof::enable();
    }
    let rows = perf::run_suite(threads, args.runs)?;
    if args.profile {
        prof::disable();
        eprint!("{}", prof::report().render());
    }
    let stamp = git_describe();
    if stamp.ends_with("-dirty") {
        eprintln!("bench: WARNING: working tree is dirty; stamping perf report as {stamp:?}");
        eprintln!("bench: WARNING: commit first before refreshing a checked-in baseline");
    }
    let report = perf::report_json(&rows, threads, args.runs, &stamp);
    let text = report.to_string_pretty();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("write {}: {e}", path.display()))?
        }
        None => print!("{text}"),
    }
    if let Some(artifact) = &args.check {
        let committed = std::fs::read_to_string(artifact)
            .map_err(|e| format!("read {}: {e}", artifact.display()))?;
        let committed = sfence_harness::json::parse(&committed)
            .and_then(|json| perf::parse_committed(&json))
            .map_err(|e| format!("parse {}: {e}", artifact.display()))?;
        let failures = perf::check_regressions(&rows, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf-gate: FAIL {f}");
            }
            return Err(format!(
                "{} task(s) regressed past the {}% gate",
                failures.len(),
                (perf::REGRESSION_THRESHOLD * 100.0) as u32
            ));
        }
        eprintln!(
            "perf-gate: ok, {} task(s) within {}% of {}",
            committed.len(),
            (perf::REGRESSION_THRESHOLD * 100.0) as u32,
            artifact.display()
        );
    }
    Ok(())
}

fn main() {
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("perf") => {
            let args = parse_perf_args(it).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                usage();
            });
            if let Err(e) = perf_main(args) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
