//! Regenerates Figure 14: class scope vs set scope.
//! Pass `--json` for the structured sweep rows; `--scale small`
//! runs the golden-test problem size, and `--cache-dir`/`--resume`/
//! `--shard`/`--threads` drive cached, sharded sweeps (see
//! `sfence_bench::figure_main`).
fn main() {
    sfence_bench::figure_main(
        sfence_bench::fig14_experiment(),
        |result| {
            sfence_bench::print_bars(
                "Figure 14: class scope (C.S.) vs set scope (S.S.), normalized to class scope",
                &sfence_bench::fig14_data_from(result),
            )
        },
        &["paper: set scope slightly better, difference not significant"],
    );
}
