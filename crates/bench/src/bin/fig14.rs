//! Regenerates Figure 14: class scope vs set scope.
fn main() {
    let data = sfence_bench::fig14_data();
    sfence_bench::print_bars(
        "Figure 14: class scope (C.S.) vs set scope (S.S.), normalized to class scope",
        &data,
    );
    println!("\npaper: set scope slightly better, difference not significant");
}
