//! Regenerates Figure 12: impact of workload on the lock-free
//! algorithms (speedup of S-Fence over traditional fences).
fn main() {
    let rows = sfence_bench::fig12_data();
    sfence_bench::print_fig12(&rows);
    println!("\npaper: peak speedups range 1.13x..1.34x; rise-then-fall with workload");
}
