//! Regenerates Figure 12: impact of workload on the lock-free
//! algorithms (speedup of S-Fence over traditional fences).
//! Pass `--json` for the structured sweep rows; `--scale small`
//! runs the golden-test problem size, and `--cache-dir`/`--resume`/
//! `--shard`/`--threads` drive cached, sharded sweeps (see
//! `sfence_bench::figure_main`).
fn main() {
    sfence_bench::figure_main(
        sfence_bench::fig12_experiment(),
        |result| sfence_bench::print_fig12(&sfence_bench::fig12_data_from(result)),
        &["paper: peak speedups range 1.13x..1.34x; rise-then-fall with workload"],
    );
}
