//! Regenerates Figure 13: normalized execution time of the full
//! applications under T, S, T+ and S+.
//! Pass `--json` for the structured sweep rows; `--scale small`
//! runs the golden-test problem size, and `--cache-dir`/`--resume`/
//! `--shard`/`--threads` drive cached, sharded sweeps (see
//! `sfence_bench::figure_main`).
fn main() {
    sfence_bench::figure_main(
        sfence_bench::fig13_experiment(),
        |result| {
            sfence_bench::print_bars(
                "Figure 13: normalized execution time (T / S / T+ / S+), split into fence stalls and others",
                &sfence_bench::fig13_data_from(result),
            )
        },
        &[
            "paper: S reduces fence stalls; pst limited by its internal full fence;",
            "       in-window speculation (+) reduces stalls for both T and S",
        ],
    );
}
