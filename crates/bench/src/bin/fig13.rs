//! Regenerates Figure 13: normalized execution time of the full
//! applications under T, S, T+ and S+.
fn main() {
    let data = sfence_bench::fig13_data();
    sfence_bench::print_bars(
        "Figure 13: normalized execution time (T / S / T+ / S+), split into fence stalls and others",
        &data,
    );
    println!("\npaper: S reduces fence stalls; pst limited by its internal full fence;");
    println!("       in-window speculation (+) reduces stalls for both T and S");
}
