//! `sfence-dist`: the distributed sweep service CLI — a coordinator
//! that fans a registered experiment's cells out to TCP workers, and
//! the worker that serves them.
//!
//! ```text
//! sfence-dist serve ADDR --experiment NAME     # e.g. 0.0.0.0:7077
//!     [--scale small|eval] [--backend B]       experiment shaping (as sfence-sweep)
//!     [--lease N]                              jobs per lease (default 4)
//!     [--lease-ttl SECS]                       silent-worker lease expiry (default 30)
//!     [--store FILE] [--git STR] [--timestamp SECS]
//!     [--diff] [--diff-run K]                  diff against stored history
//!     [--json | --rows]                        stdout rendering
//!     [--quiet]
//!
//! sfence-dist work ADDR                        # connect and serve leases
//!     [--cache-dir DIR]                        worker-local result cache
//!     [--threads N]                            threads per lease (default: CPUs)
//!     [--name STR]                             worker name (default host-pid)
//!     [--progress]                             throttled done/total + ETA line on stderr
//!     [--quiet]
//!
//! sfence-dist status ADDR                      # probe a live coordinator
//!     [--json]                                 raw MetricsReport JSON instead of a table
//!     [--timeout SECS]                         connect/read bound (default 5)
//! ```
//!
//! The coordinator's merged stdout/store output is byte-identical to
//! `sfence-sweep --experiment NAME` run single-process; workers may
//! join late, die mid-lease, and re-join freely. Mismatched binaries
//! (schema, protocol, or experiment fingerprint) are rejected at the
//! handshake. Exit codes: 0 ok, 1 runtime error, 2 usage error.

use sfence_bench::cli::{self, OutputArgs};
use sfence_dist::{fetch_status, serve, work, CoordinatorOpts, ExperimentSpec, WorkerOpts};
use sfence_harness::{BackendId, SweepResult};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let verb = args.next().unwrap_or_default();
    let result = match verb.as_str() {
        "serve" => cmd_serve(args),
        "work" => cmd_work(args),
        "status" => cmd_status(args),
        "" | "--help" | "-h" => {
            eprintln!("usage: sfence-dist serve ADDR --experiment NAME [options]");
            eprintln!("       sfence-dist work ADDR [options]");
            eprintln!("       sfence-dist status ADDR [--json] [--timeout SECS]");
            std::process::exit(2);
        }
        other => {
            eprintln!("error: unknown subcommand {other:?} (expected serve|work|status)");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage(e: String) -> ! {
    eprintln!("error: {e}");
    eprintln!(
        "usage: sfence-dist serve ADDR --experiment NAME [options] | work ADDR [options] \
         | status ADDR [--json]"
    );
    std::process::exit(2);
}

fn cmd_serve(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut experiment_name: Option<String> = None;
    let mut scale = None;
    let mut backend: Option<BackendId> = None;
    let mut output = OutputArgs::default();
    let mut opts = CoordinatorOpts::default();
    let mut json = false;
    while let Some(arg) = it.next() {
        let parsed = output.accept(&arg, &mut it).unwrap_or_else(|e| usage(e));
        if parsed {
            continue;
        }
        match arg.as_str() {
            "--experiment" => {
                experiment_name =
                    Some(cli::take(&mut it, "--experiment").unwrap_or_else(|e| usage(e)))
            }
            "--scale" => {
                scale = Some(
                    cli::parse_scale(&cli::take(&mut it, "--scale").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--backend" => {
                backend = Some(
                    BackendId::parse(&cli::take(&mut it, "--backend").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--lease" => {
                opts.lease_size = cli::take(&mut it, "--lease")
                    .unwrap_or_else(|e| usage(e))
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--lease expects a positive integer".into()))
            }
            "--lease-ttl" => {
                let secs: u64 = cli::take(&mut it, "--lease-ttl")
                    .unwrap_or_else(|e| usage(e))
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--lease-ttl expects seconds".into()));
                opts.lease_ttl_ms = secs * 1000;
            }
            "--json" => json = true,
            "--rows" => json = false,
            "--quiet" => opts.quiet = true,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("serve needs a bind address (e.g. 0.0.0.0:7077)".into()));
    let name = experiment_name
        .unwrap_or_else(|| usage("--experiment is required (see sfence-sweep --list)".into()));
    let spec = ExperimentSpec::new(&name).scale(scale).backend(backend);
    let experiment = spec
        .resolve(sfence_bench::experiment_by_name)
        .unwrap_or_else(|e| usage(e));

    let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
    eprintln!(
        "dist: serving {} ({} jobs, fingerprint {}) on {local}",
        experiment.name,
        experiment.job_count(),
        &experiment.fingerprint()[..12]
    );
    let summary = serve(&listener, &experiment, &spec, &opts)?;
    eprintln!("{}", summary.summary_line());
    let result = SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows)?;
    cli::finish_run(&experiment, &result, &output, json)
}

fn cmd_work(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut opts = WorkerOpts::default();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(
                    cli::take(&mut it, "--cache-dir").unwrap_or_else(|e| usage(e)),
                ))
            }
            "--threads" => {
                opts.threads = cli::take(&mut it, "--threads")
                    .unwrap_or_else(|e| usage(e))
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--threads expects a positive integer".into()))
            }
            "--name" => opts.name = Some(cli::take(&mut it, "--name").unwrap_or_else(|e| usage(e))),
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("work needs the coordinator address (host:port)".into()));
    work(&addr, sfence_bench::experiment_by_name, &opts).map(|_| ())
}

/// `status ADDR`: probe a live coordinator for its campaign snapshot
/// and print it as a table (default) or as the raw `MetricsReport`
/// JSON (`--json`).
fn cmd_status(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut timeout = Duration::from_secs(5);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--timeout" => {
                let secs: u64 = cli::take(&mut it, "--timeout")
                    .unwrap_or_else(|e| usage(e))
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("--timeout expects seconds".into()));
                timeout = Duration::from_secs(secs);
            }
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("status needs the coordinator address (host:port)".into()));
    let report = fetch_status(&addr, timeout)?;
    if json {
        print!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", report.render());
    }
    Ok(())
}
