//! `sfence-dist`: the distributed sweep service CLI — a coordinator
//! daemon that schedules any number of concurrent campaigns across
//! TCP workers, the worker that serves them, the submitting client,
//! and a status probe.
//!
//! ```text
//! sfence-dist serve ADDR                       # daemon: accept campaigns until killed
//!     [--token-file FILE]                      shared-secret auth for every client flow
//!     [--checkpoint FILE]                      atomic-rename JSONL snapshot for kill/resume
//!     [--checkpoint-every SECS]                snapshot interval (0 = every mutation)
//!     [--lease N]                              default jobs per lease (default 4)
//!     [--lease-ttl SECS]                       silent-worker lease expiry (default 30)
//!     [--retain-fetched SECS]                  evict a completed campaign this long after
//!                                              its rows were first fetched (default 600;
//!                                              0 = keep forever)
//!     [--handshake-timeout SECS]               drop connections with no opening message
//!                                              after this long (default 10; 0 = never)
//!     [--log FILE]                             structured JSONL event log (rotated)
//!     [--log-level error|warn|info|debug]      verbosity for stderr and the event log
//!     [--log-max-bytes N] [--log-max-files N]  event-log rotation policy
//!     [--metrics-log FILE]                     periodic MetricsReport JSONL history
//!     [--metrics-interval SECS]                history snapshot interval (default 10)
//!     [--quiet]
//!
//! sfence-dist serve ADDR --experiment NAME     # one-shot: a single fixed campaign
//!     [--scale small|eval] [--backend B]       experiment shaping (as sfence-sweep)
//!     [--token-file FILE] [--lease N] [--lease-ttl SECS]
//!     [--store FILE] [--git STR] [--timestamp SECS]
//!     [--diff] [--diff-run K]                  diff against stored history
//!     [--json | --rows]                        stdout rendering
//!     [--quiet]
//!
//! sfence-dist submit ADDR --experiment NAME    # register a campaign with a daemon
//!     [--scale small|eval] [--backend B]
//!     [--priority N]                           fair-share weight (default 1)
//!     [--token-file FILE]
//!     [--no-wait]                              print the campaign id and exit
//!     [--poll-ms MS]                           progress poll interval (default 500)
//!     [--retry N]                              polls surviving a daemon outage (default 60)
//!     [--store FILE] [--git STR] [--timestamp SECS]
//!     [--diff] [--diff-run K] [--json | --rows] [--quiet]
//!
//! sfence-dist work ADDR                        # connect and serve leases
//!     [--cache-dir DIR]                        worker-local result cache
//!     [--threads N]                            threads per lease (default: CPUs)
//!     [--name STR]                             worker name (default host-pid)
//!     [--token-file FILE]
//!     [--lease-batch N]                        cells requested per lease (0 = server default)
//!     [--reconnect N]                          retries after a lost coordinator (default 0)
//!     [--idle-exit SECS]                       exit after this long with no work (0 = never)
//!     [--log-level error|warn|info|debug]      stderr verbosity (overrides --quiet)
//!     [--progress] [--quiet]
//!
//! sfence-dist status ADDR                      # probe a live coordinator
//!     [--token-file FILE]
//!     [--json]                                 raw MetricsReport JSON instead of tables
//!     [--timeout SECS]                         connect/read bound (default 5)
//!
//! sfence-dist metrics ADDR                     # Prometheus-style text exposition
//!     [--token-file FILE] [--timeout SECS]
//!
//! sfence-dist dump ADDR                        # flight recorder as JSONL on stdout
//!     [--token-file FILE] [--timeout SECS]
//! ```
//!
//! Every campaign's merged stdout/store output is byte-identical to
//! `sfence-sweep --experiment NAME` run single-process — even
//! interleaved with other campaigns and across a daemon kill/restart
//! (with `--checkpoint`). Mismatched binaries (schema, protocol, or
//! experiment fingerprint) are rejected at the handshake. Exit codes:
//! 0 ok, 1 runtime error, 2 usage error.

use sfence_bench::cli::{self, OutputArgs};
use sfence_dist::{
    client, fetch_dump, fetch_status, render_campaign_table, run_server, serve, work,
    CoordinatorOpts, ExperimentSpec, ServerOpts, WorkerOpts,
};
use sfence_harness::{BackendId, SweepResult};
use sfence_obs::log::{
    install_panic_dump, EventLog, LogLevel, DEFAULT_LOG_MAX_BYTES, DEFAULT_LOG_MAX_FILES,
};
use sfence_obs::prometheus_text;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let verb = args.next().unwrap_or_default();
    let result = match verb.as_str() {
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "work" => cmd_work(args),
        "status" => cmd_status(args),
        "metrics" => cmd_metrics(args),
        "dump" => cmd_dump(args),
        "" | "--help" | "-h" => {
            eprintln!("usage: sfence-dist serve ADDR [--experiment NAME] [options]");
            eprintln!("       sfence-dist submit ADDR --experiment NAME [options]");
            eprintln!("       sfence-dist work ADDR [options]");
            eprintln!("       sfence-dist status ADDR [--json] [--timeout SECS]");
            eprintln!("       sfence-dist metrics ADDR [--timeout SECS]");
            eprintln!("       sfence-dist dump ADDR [--timeout SECS]");
            std::process::exit(2);
        }
        other => {
            eprintln!(
                "error: unknown subcommand {other:?} (expected \
                 serve|submit|work|status|metrics|dump)"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage(e: String) -> ! {
    eprintln!("error: {e}");
    eprintln!(
        "usage: sfence-dist serve ADDR [--experiment NAME] [options] | submit ADDR \
         --experiment NAME [options] | work ADDR [options] | status ADDR [--json]"
    );
    std::process::exit(2);
}

/// Read a `--token-file`: the first line, trimmed, non-empty.
fn read_token(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read token file {path}: {e}"))?;
    let token = text.trim();
    if token.is_empty() {
        return Err(format!("token file {path} is empty"));
    }
    Ok(token.to_string())
}

fn parse_flag<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
    check: impl Fn(&T) -> bool,
    expects: &str,
) -> T {
    cli::take(it, flag)
        .unwrap_or_else(|e| usage(e))
        .parse()
        .ok()
        .filter(check)
        .unwrap_or_else(|| usage(format!("{flag} expects {expects}")))
}

fn cmd_serve(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut experiment_name: Option<String> = None;
    let mut scale = None;
    let mut backend: Option<BackendId> = None;
    let mut output = OutputArgs::default();
    let mut json = false;
    let mut quiet = false;
    let mut lease_size: usize = 4;
    let mut lease_ttl_ms: u64 = 30_000;
    let mut token: Option<String> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut checkpoint_every_ms: u64 = 1000;
    let mut retain_fetched_ms: u64 = 600_000;
    let mut handshake_timeout_ms: u64 = 10_000;
    let mut log_path: Option<PathBuf> = None;
    let mut log_level = LogLevel::Info;
    let mut log_max_bytes: u64 = DEFAULT_LOG_MAX_BYTES;
    let mut log_max_files: usize = DEFAULT_LOG_MAX_FILES;
    let mut metrics_log: Option<PathBuf> = None;
    let mut metrics_interval_ms: u64 = 10_000;
    while let Some(arg) = it.next() {
        let parsed = output.accept(&arg, &mut it).unwrap_or_else(|e| usage(e));
        if parsed {
            continue;
        }
        match arg.as_str() {
            "--experiment" => {
                experiment_name =
                    Some(cli::take(&mut it, "--experiment").unwrap_or_else(|e| usage(e)))
            }
            "--scale" => {
                scale = Some(
                    cli::parse_scale(&cli::take(&mut it, "--scale").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--backend" => {
                backend = Some(
                    BackendId::parse(&cli::take(&mut it, "--backend").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--lease" => {
                lease_size =
                    parse_flag(&mut it, "--lease", |&n: &usize| n > 0, "a positive integer")
            }
            "--lease-ttl" => {
                let secs: u64 = parse_flag(&mut it, "--lease-ttl", |&n| n > 0, "seconds");
                lease_ttl_ms = secs * 1000;
            }
            "--token-file" => {
                token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            "--checkpoint" => {
                checkpoint = Some(PathBuf::from(
                    cli::take(&mut it, "--checkpoint").unwrap_or_else(|e| usage(e)),
                ))
            }
            "--checkpoint-every" => {
                let secs: u64 = parse_flag(&mut it, "--checkpoint-every", |_| true, "seconds");
                checkpoint_every_ms = secs * 1000;
            }
            "--retain-fetched" => {
                let secs: u64 = parse_flag(&mut it, "--retain-fetched", |_| true, "seconds");
                retain_fetched_ms = secs * 1000;
            }
            "--handshake-timeout" => {
                let secs: u64 = parse_flag(&mut it, "--handshake-timeout", |_| true, "seconds");
                handshake_timeout_ms = secs * 1000;
            }
            "--log" => {
                log_path = Some(PathBuf::from(
                    cli::take(&mut it, "--log").unwrap_or_else(|e| usage(e)),
                ))
            }
            "--log-level" => {
                log_level = parse_log_level(&mut it);
            }
            "--log-max-bytes" => {
                log_max_bytes =
                    parse_flag(&mut it, "--log-max-bytes", |&n: &u64| n > 0, "a byte count")
            }
            "--log-max-files" => {
                log_max_files = parse_flag(
                    &mut it,
                    "--log-max-files",
                    |&n: &usize| n > 0,
                    "a file count",
                )
            }
            "--metrics-log" => {
                metrics_log = Some(PathBuf::from(
                    cli::take(&mut it, "--metrics-log").unwrap_or_else(|e| usage(e)),
                ))
            }
            "--metrics-interval" => {
                let secs: u64 = parse_flag(&mut it, "--metrics-interval", |&n| n > 0, "seconds");
                metrics_interval_ms = secs * 1000;
            }
            "--json" => json = true,
            "--rows" => json = false,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("serve needs a bind address (e.g. 0.0.0.0:7077)".into()));
    let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(addr.clone());

    match experiment_name {
        // --- One-shot mode: one fixed campaign, exit at completion.
        Some(name) => {
            let spec = ExperimentSpec::new(&name).scale(scale).backend(backend);
            let experiment = spec
                .resolve(sfence_bench::experiment_by_name)
                .unwrap_or_else(|e| usage(e));
            eprintln!(
                "dist: serving {} ({} jobs, fingerprint {}) on {local}",
                experiment.name,
                experiment.job_count(),
                &experiment.fingerprint()[..12]
            );
            let opts = CoordinatorOpts {
                lease_size,
                lease_ttl_ms,
                quiet,
                token,
                ..CoordinatorOpts::default()
            };
            let summary = serve(&listener, &experiment, &spec, &opts)?;
            eprintln!("{}", summary.summary_line());
            let result =
                SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows)?;
            cli::finish_run(&experiment, &result, &output, json)
        }
        // --- Daemon mode: accept campaigns until killed.
        None => {
            eprintln!(
                "dist: daemon on {local} (auth {}, checkpoint {})",
                if token.is_some() { "on" } else { "off" },
                checkpoint
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "off".into()),
            );
            let stderr_level = if quiet { None } else { Some(log_level) };
            let log = match &log_path {
                Some(path) => Arc::new(
                    EventLog::with_file(
                        "dist",
                        stderr_level,
                        log_level,
                        path,
                        log_max_bytes,
                        log_max_files,
                    )
                    .map_err(|e| format!("open event log {}: {e}", path.display()))?,
                ),
                None => Arc::new(EventLog::to_stderr("dist", stderr_level)),
            };
            // A panicking daemon leaves its flight recorder behind:
            // beside the event log when one is configured, else on
            // stderr.
            let panic_path = log_path.as_ref().map(|p| {
                let mut s = p.as_os_str().to_os_string();
                s.push(".panic");
                PathBuf::from(s)
            });
            install_panic_dump(Arc::clone(&log), panic_path);
            let opts = ServerOpts {
                default_lease: lease_size,
                lease_ttl_ms,
                quiet,
                token,
                checkpoint,
                checkpoint_every_ms,
                retain_fetched_ms,
                handshake_timeout_ms,
                log: Some(log),
                metrics_log,
                metrics_interval_ms,
                ..ServerOpts::default()
            };
            // Runs until the process is killed; the periodic
            // checkpoint is the shutdown story.
            run_server(
                &listener,
                Some(sfence_bench::experiment_by_name),
                Vec::new(),
                &opts,
            )
            .map(|_| ())
        }
    }
}

/// Parse a `--log-level` value.
fn parse_log_level(it: &mut impl Iterator<Item = String>) -> LogLevel {
    let raw = cli::take(it, "--log-level").unwrap_or_else(|e| usage(e));
    LogLevel::parse(&raw).unwrap_or_else(|| {
        usage(format!(
            "--log-level expects error|warn|info|debug, got {raw:?}"
        ))
    })
}

fn cmd_submit(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut experiment_name: Option<String> = None;
    let mut scale = None;
    let mut backend: Option<BackendId> = None;
    let mut output = OutputArgs::default();
    let mut json = false;
    let mut quiet = false;
    let mut priority: u64 = 1;
    let mut token: Option<String> = None;
    let mut no_wait = false;
    let mut wait = client::WaitOpts {
        retries: 60,
        ..Default::default()
    };
    while let Some(arg) = it.next() {
        let parsed = output.accept(&arg, &mut it).unwrap_or_else(|e| usage(e));
        if parsed {
            continue;
        }
        match arg.as_str() {
            "--experiment" => {
                experiment_name =
                    Some(cli::take(&mut it, "--experiment").unwrap_or_else(|e| usage(e)))
            }
            "--scale" => {
                scale = Some(
                    cli::parse_scale(&cli::take(&mut it, "--scale").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--backend" => {
                backend = Some(
                    BackendId::parse(&cli::take(&mut it, "--backend").unwrap_or_else(|e| usage(e)))
                        .unwrap_or_else(|e| usage(e)),
                )
            }
            "--priority" => {
                priority = parse_flag(
                    &mut it,
                    "--priority",
                    |&n: &u64| n > 0,
                    "a positive integer",
                )
            }
            "--token-file" => {
                token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            "--no-wait" => no_wait = true,
            "--poll-ms" => {
                wait.poll_ms = parse_flag(&mut it, "--poll-ms", |&n: &u64| n > 0, "milliseconds")
            }
            "--retry" => wait.retries = parse_flag(&mut it, "--retry", |_| true, "a retry count"),
            "--json" => json = true,
            "--rows" => json = false,
            "--quiet" => quiet = true,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("submit needs the daemon address (host:port)".into()));
    let name = experiment_name
        .unwrap_or_else(|| usage("--experiment is required (see sfence-sweep --list)".into()));
    let spec = ExperimentSpec::new(&name).scale(scale).backend(backend);
    // Resolve locally first: the merge below needs the experiment,
    // and a local resolution error beats a round-trip to find out.
    let experiment = spec
        .resolve(sfence_bench::experiment_by_name)
        .unwrap_or_else(|e| usage(e));
    wait.client.token = token;

    let ticket = client::submit(&addr, &spec, priority, &wait.client)?;
    // The daemon schedules what *its* binary resolves the spec to; if
    // that drifts from ours, the rows we'd fetch aren't the rows this
    // binary's merge expects.
    if ticket.fingerprint != experiment.fingerprint()
        || ticket.job_count != experiment.job_count() as u64
    {
        return Err(format!(
            "daemon resolves {name:?} to fingerprint {} ({} jobs) but this binary gets {} \
             ({} jobs): mismatched builds",
            ticket.fingerprint,
            ticket.job_count,
            experiment.fingerprint(),
            experiment.job_count()
        ));
    }
    if !quiet || no_wait {
        eprintln!(
            "dist: campaign {} submitted ({} jobs, priority {priority})",
            ticket.campaign, ticket.job_count
        );
    }
    if no_wait {
        // The id on stdout is the machine-readable product: scripts
        // capture it and poll later.
        println!("{}", ticket.campaign);
        return Ok(());
    }

    let mut last_done = u64::MAX;
    let rows = client::wait_for_campaign(&addr, &ticket.campaign, &wait, |done, total| {
        if !quiet && done != last_done {
            eprintln!("dist: campaign {}: {done}/{total} jobs", ticket.campaign);
            last_done = done;
        }
    })?;
    let result = SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows)?;
    cli::finish_run(&experiment, &result, &output, json)
}

fn cmd_work(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut opts = WorkerOpts::default();
    let mut log_level: Option<LogLevel> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log-level" => log_level = Some(parse_log_level(&mut it)),
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(
                    cli::take(&mut it, "--cache-dir").unwrap_or_else(|e| usage(e)),
                ))
            }
            "--threads" => {
                opts.threads = parse_flag(
                    &mut it,
                    "--threads",
                    |&n: &usize| n > 0,
                    "a positive integer",
                )
            }
            "--name" => opts.name = Some(cli::take(&mut it, "--name").unwrap_or_else(|e| usage(e))),
            "--token-file" => {
                opts.token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            "--lease-batch" => {
                opts.lease_batch = parse_flag(&mut it, "--lease-batch", |_| true, "a cell count")
            }
            "--reconnect" => {
                opts.reconnect_attempts =
                    parse_flag(&mut it, "--reconnect", |_| true, "an attempt count")
            }
            "--idle-exit" => {
                let secs: u64 = parse_flag(&mut it, "--idle-exit", |_| true, "seconds");
                opts.idle_exit_ms = secs * 1000;
            }
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("work needs the coordinator address (host:port)".into()));
    // An explicit `--log-level` overrides `--quiet` / `--progress`:
    // one knob governs all worker stderr output.
    if let Some(level) = log_level {
        opts.log = Some(Arc::new(EventLog::to_stderr("worker", Some(level))));
    }
    work(&addr, sfence_bench::experiment_by_name, &opts).map(|_| ())
}

/// `status ADDR`: probe a live coordinator for its service snapshot
/// and print a per-campaign table plus the full metric listing
/// (default), or the raw `MetricsReport` JSON (`--json`).
fn cmd_status(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut json = false;
    let mut timeout = Duration::from_secs(5);
    let mut token: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--timeout" => {
                let secs: u64 = parse_flag(&mut it, "--timeout", |&n| n > 0, "seconds");
                timeout = Duration::from_secs(secs);
            }
            "--token-file" => {
                token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("status needs the coordinator address (host:port)".into()));
    let report = fetch_status(&addr, timeout, token.as_deref())?;
    if json {
        print!("{}", report.to_json().to_string_pretty());
    } else {
        print!("{}", render_campaign_table(&report));
        print!("{}", report.render());
    }
    Ok(())
}

/// `metrics ADDR`: probe a live coordinator and print its service
/// snapshot as Prometheus-style text exposition, for scraping into
/// ordinary monitoring tooling (`curl`-shaped, hand-rolled, no
/// external crates).
fn cmd_metrics(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut timeout = Duration::from_secs(5);
    let mut token: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timeout" => {
                let secs: u64 = parse_flag(&mut it, "--timeout", |&n| n > 0, "seconds");
                timeout = Duration::from_secs(secs);
            }
            "--token-file" => {
                token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("metrics needs the coordinator address (host:port)".into()));
    let report = fetch_status(&addr, timeout, token.as_deref())?;
    print!("{}", prometheus_text(&report, "sfence"));
    Ok(())
}

/// `dump ADDR`: fetch the daemon's flight recorder and print it as
/// JSONL on stdout (one event per line, same schema as `--log`
/// files), plus a summary line on stderr.
fn cmd_dump(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut timeout = Duration::from_secs(5);
    let mut token: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timeout" => {
                let secs: u64 = parse_flag(&mut it, "--timeout", |&n| n > 0, "seconds");
                timeout = Duration::from_secs(secs);
            }
            "--token-file" => {
                token = Some(read_token(
                    &cli::take(&mut it, "--token-file").unwrap_or_else(|e| usage(e)),
                )?)
            }
            other if !other.starts_with('-') && addr.is_none() => addr = Some(other.to_string()),
            other => usage(format!("unknown flag {other:?}")),
        }
    }
    let addr =
        addr.unwrap_or_else(|| usage("dump needs the coordinator address (host:port)".into()));
    let (events, dropped) = fetch_dump(&addr, timeout, token.as_deref())?;
    for ev in &events {
        println!("{}", ev.to_json().to_string_compact());
    }
    eprintln!(
        "dist: dumped {} event(s) ({dropped} older event(s) aged out of the ring)",
        events.len()
    );
    Ok(())
}
