//! `sfence-sweep`: the production sweep runner. Runs any registered
//! experiment (fig12..fig16, smoke) with content-addressed result
//! caching, process-level sharding, resume after interruption, an
//! append-only JSONL results store with history diffing, and a
//! loopback-distributed mode that drives `sfence-dist` workers.
//!
//! ```text
//! sfence-sweep --experiment fig13 [--scale small|eval]
//!     [--backend B]            execution engine: sim (default) | functional | enumerative
//!     [--threads N]            worker threads per process
//!     [--cache-dir DIR]        content-addressed RunReport cache
//!     [--resume]               documents resume intent (needs --cache-dir)
//!     [--shard I/N]            run one shard; emit indexed rows as JSONL
//!     [--spawn N]              spawn N shard worker processes and merge
//!     [--workers N]            spawn N sfence-dist workers over loopback and merge
//!     [--max-cells N]          execute at most N uncached cells, then stop
//!     [--progress]             throttled done/total + ETA line on stderr
//!     [--trace PATH]           write a Chrome trace_event JSON pipeline trace
//!     [--store FILE]           append the completed run to a JSONL store
//!     [--git STR]              provenance string (default: git describe)
//!     [--timestamp SECS]       unix time stamped on the store meta line
//!     [--diff]                 diff against the latest stored run
//!     [--diff-run K]           diff against the K-th most recent stored run
//!     [--json | --rows]        machine-readable / raw-table output
//!     [--list]                 print the experiment names and exit (--json for machine-readable)
//! ```
//!
//! Exit codes: 0 complete, 1 runtime error, 2 usage error,
//! 3 incomplete (the `--max-cells` budget ran out — rerun with the
//! same `--cache-dir` to resume). The store is only appended for
//! complete runs, so an interrupted-then-resumed sweep produces a
//! store byte-identical to an uninterrupted one.

use sfence_bench::cli::{self, FigureArgs, OutputArgs};
use sfence_dist::{serve, CoordinatorOpts, ExperimentSpec};
use sfence_harness::{Experiment, IndexedRow, SweepResult};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

struct SweepArgs {
    common: FigureArgs,
    output: OutputArgs,
    experiment: Option<String>,
    spawn: Option<usize>,
    workers: Option<usize>,
    max_cells: Option<usize>,
    list: bool,
}

fn parse_args() -> Result<SweepArgs, String> {
    let mut args = SweepArgs {
        common: FigureArgs::default(),
        output: OutputArgs::default(),
        experiment: None,
        spawn: None,
        workers: None,
        max_cells: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if args.output.accept(&arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--experiment" => args.experiment = Some(cli::take(&mut it, "--experiment")?),
            "--spawn" => {
                let n: usize = cli::take(&mut it, "--spawn")?
                    .parse()
                    .map_err(|_| "--spawn expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--spawn expects a positive integer".into());
                }
                args.spawn = Some(n);
            }
            "--workers" => {
                let n: usize = cli::take(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--workers expects a positive integer".into());
                }
                args.workers = Some(n);
            }
            "--max-cells" => {
                args.max_cells = Some(
                    cli::take(&mut it, "--max-cells")?
                        .parse()
                        .map_err(|_| "--max-cells expects an integer".to_string())?,
                );
            }
            "--list" => args.list = true,
            other if !other.starts_with('-') && args.experiment.is_none() => {
                args.experiment = Some(other.to_string());
            }
            other => args.common.accept(other, &mut it)?,
        }
    }
    args.common.validate()?;
    if args.spawn.is_some() && args.workers.is_some() {
        return Err("--spawn and --workers are mutually exclusive".into());
    }
    if args.workers.is_some() && args.common.shard.is_some() {
        return Err("--workers and --shard are mutually exclusive".into());
    }
    if args.spawn.is_some() && args.common.shard.is_some() {
        return Err("--spawn and --shard are mutually exclusive".into());
    }
    if (args.spawn.is_some() || args.workers.is_some()) && args.max_cells.is_some() {
        return Err("--max-cells applies to in-process runs, not spawned workers".into());
    }
    if (args.spawn.is_some() || args.workers.is_some()) && args.common.trace.is_some() {
        // Rows come back over a pipe/socket as serialized reports,
        // which deliberately carry no pipe events.
        return Err("--trace applies to in-process runs, not spawned workers".into());
    }
    if args.common.shard.is_some() && args.output.wants_store_or_diff() {
        // A shard worker emits partial rows for a parent to merge;
        // silently skipping the store/diff would look like data loss.
        return Err("--store/--diff apply to merged runs, not --shard workers".into());
    }
    Ok(args)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("usage: sfence-sweep --experiment <name> [options]; --list for names");
        std::process::exit(2);
    });
    if args.list {
        if args.common.json {
            print!("{}", sfence_bench::list_json().to_string_pretty());
        } else {
            print_list();
        }
        return;
    }
    let name = args.experiment.clone().unwrap_or_else(|| {
        eprintln!("error: --experiment is required (--list for names)");
        std::process::exit(2);
    });
    let experiment = sfence_bench::experiment_by_name(&name).unwrap_or_else(|| {
        eprintln!("error: unknown experiment {name:?} (--list for names)");
        std::process::exit(2);
    });
    let experiment = args.common.configure(experiment).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if let Err(e) = run(&name, &experiment, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(name: &str, experiment: &Experiment, args: &SweepArgs) -> Result<(), String> {
    let rows = if let Some(workers) = args.workers {
        run_distributed(name, experiment, args, workers)?
    } else if let Some(workers) = args.spawn {
        run_spawned(name, experiment, args, workers)?
    } else {
        match run_local(experiment, args)? {
            Some(rows) => rows,
            // Shard mode already emitted its rows.
            None => return Ok(()),
        }
    };
    let result = SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows)?;
    cli::finish_run(experiment, &result, &args.output, args.common.json)
}

/// Run (a shard of) the experiment in this process via the shared
/// `cli::run_local`. Returns `None` after emitting indexed JSONL in
/// shard mode; exits with code 3 if the `--max-cells` budget left
/// cells unrun.
fn run_local(experiment: &Experiment, args: &SweepArgs) -> Result<Option<Vec<IndexedRow>>, String> {
    let local = cli::run_local(experiment, &args.common, args.max_cells)?;
    if !local.complete {
        eprintln!("sweep: incomplete (budget ran out) — rerun with the same --cache-dir to resume");
        std::process::exit(3);
    }
    Ok(local.rows)
}

/// Split the machine across worker processes so N of them don't each
/// start a per-CPU thread pool (N-fold oversubscription).
fn threads_per_worker(requested: Option<usize>, workers: usize) -> usize {
    requested.unwrap_or_else(|| {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cpus / workers).max(1)
    })
}

/// `--workers N`: the convenience face of the distributed runner —
/// an in-process coordinator on a loopback port and N spawned
/// `sfence-dist work` processes, merged exactly like remote workers
/// would be.
fn run_distributed(
    name: &str,
    experiment: &Experiment,
    args: &SweepArgs,
    workers: usize,
) -> Result<Vec<IndexedRow>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dist = exe
        .parent()
        .map(|dir| dir.join("sfence-dist"))
        .filter(|p| p.exists())
        .ok_or("sfence-dist binary not found next to sfence-sweep (build sfence-bench)")?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .to_string();
    let spec = ExperimentSpec::new(name)
        .scale(args.common.scale)
        .backend(args.common.backend);
    let threads = threads_per_worker(args.common.threads, workers);

    let mut children = Vec::new();
    for index in 0..workers {
        let mut cmd = Command::new(&dist);
        cmd.arg("work")
            .arg(&addr)
            .arg("--threads")
            .arg(threads.to_string())
            .arg("--name")
            .arg(format!("local-{index}"))
            .stdout(Stdio::null());
        if let Some(dir) = &args.common.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        if args.common.progress {
            cmd.arg("--progress");
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker {index}: {e}"))?;
        children.push(child);
    }

    // If every worker dies (bad binary, panic) the coordinator must
    // error out rather than wait forever for jobs nobody will run.
    let abort = Arc::new(AtomicBool::new(false));
    let served_done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let abort = Arc::clone(&abort);
        let done = Arc::clone(&served_done);
        std::thread::spawn(move || -> Vec<Child> {
            loop {
                if done.load(Ordering::SeqCst) {
                    return children;
                }
                let all_exited = children
                    .iter_mut()
                    .all(|c| matches!(c.try_wait(), Ok(Some(_))));
                if all_exited {
                    abort.store(true, Ordering::SeqCst);
                    return children;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        })
    };

    let opts = CoordinatorOpts {
        abort: Some(Arc::clone(&abort)),
        ..CoordinatorOpts::default()
    };
    let served = serve(&listener, experiment, &spec, &opts);
    served_done.store(true, Ordering::SeqCst);
    // Close the listen socket before waiting: a worker that tries to
    // connect from here on gets an immediate reset instead of a
    // connection nobody will ever serve.
    drop(listener);
    let children = monitor.join().expect("monitor thread");
    for (index, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .map_err(|e| format!("wait for worker {index}: {e}"))?;
        if !status.success() && served.is_ok() {
            eprintln!("warning: worker {index} exited with {status}");
        }
    }
    let summary = served?;
    eprintln!("{}", summary.summary_line());
    Ok(summary.rows)
}

/// Spawn one worker process per shard and merge their indexed rows.
fn run_spawned(
    name: &str,
    experiment: &Experiment,
    args: &SweepArgs,
    workers: usize,
) -> Result<Vec<IndexedRow>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let threads_per_worker = threads_per_worker(args.common.threads, workers);
    let mut children = Vec::new();
    for index in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("--experiment")
            .arg(name)
            .arg("--shard")
            .arg(format!("{index}/{workers}"))
            .stdout(Stdio::piped());
        if let Some(scale) = args.common.scale {
            cmd.arg("--scale").arg(match scale {
                sfence_workloads::Scale::Eval => "eval",
                sfence_workloads::Scale::Small => "small",
            });
        }
        if let Some(backend) = args.common.backend {
            cmd.arg("--backend").arg(backend.name());
        }
        if let Some(dir) = &args.common.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        cmd.arg("--threads").arg(threads_per_worker.to_string());
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn shard {index}/{workers}: {e}"))?;
        children.push((index, child));
    }
    let mut rows = Vec::with_capacity(experiment.job_count());
    for (index, child) in children {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("wait for shard {index}/{workers}: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "shard worker {index}/{workers} failed: {}",
                out.status
            ));
        }
        let stdout = String::from_utf8(out.stdout)
            .map_err(|_| format!("shard worker {index}/{workers} emitted invalid UTF-8"))?;
        for line in stdout.lines().filter(|l| !l.trim().is_empty()) {
            let doc = sfence_harness::json::parse(line)
                .map_err(|e| format!("shard worker {index}/{workers} line: {e}"))?;
            rows.push(IndexedRow::from_json(&doc)?);
        }
    }
    Ok(rows)
}

/// `--list`: enumerate every registered experiment (axis, fence
/// configs, job count, workloads) plus the litmus scenario families,
/// so discovery never requires reading `catalog.rs`. `--list --json`
/// emits the same inventory machine-readably ([`sfence_bench::list_json`]) —
/// coordinators and tooling validate requests against it.
fn print_list() {
    println!("experiments (sfence-sweep --experiment <name>):");
    for name in sfence_bench::experiment_names() {
        let e = sfence_bench::experiment_by_name(name).expect("registered name");
        let axis = if e.axis_name().is_empty() {
            "-"
        } else {
            e.axis_name()
        };
        println!(
            "  {:<12} axis={:<12} jobs={:<4} workloads: {}",
            name,
            axis,
            e.job_count(),
            e.workload_names().join(", ")
        );
    }
    println!();
    println!("backends (--backend): sim (default, cycle-accurate), functional (fast SC");
    println!("  interpreter, no timing fields), enumerative (rows carry the SC allowed-state");
    println!("  set size; full sets live in the cached reports)");
    println!();
    println!(
        "litmus families (workload names litmus/<family>/<seed>; campaigns via sfence-litmus):"
    );
    print!(
        "{}",
        sfence_workloads::litmus::family_listing(|f| format!("litmus/{}/<seed>", f.name()))
    );
}
