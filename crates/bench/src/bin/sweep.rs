//! `sfence-sweep`: the production sweep runner. Runs any registered
//! experiment (fig12..fig16, smoke) with content-addressed result
//! caching, process-level sharding, resume after interruption, and an
//! append-only JSONL results store with history diffing.
//!
//! ```text
//! sfence-sweep --experiment fig13 [--scale small|eval]
//!     [--backend B]            execution engine: sim (default) | functional | enumerative
//!     [--threads N]            worker threads per process
//!     [--cache-dir DIR]        content-addressed RunReport cache
//!     [--resume]               documents resume intent (needs --cache-dir)
//!     [--shard I/N]            run one shard; emit indexed rows as JSONL
//!     [--spawn N]              spawn N shard worker processes and merge
//!     [--max-cells N]          execute at most N uncached cells, then stop
//!     [--store FILE]           append the completed run to a JSONL store
//!     [--git STR]              provenance string (default: git describe)
//!     [--timestamp SECS]       unix time stamped on the store meta line
//!     [--diff]                 diff against the latest stored run
//!     [--json | --rows]        machine-readable / raw-table output
//!     [--list]                 print the experiment names and exit
//! ```
//!
//! Exit codes: 0 complete, 1 runtime error, 2 usage error,
//! 3 incomplete (the `--max-cells` budget ran out — rerun with the
//! same `--cache-dir` to resume). The store is only appended for
//! complete runs, so an interrupted-then-resumed sweep produces a
//! store byte-identical to an uninterrupted one.

use sfence_bench::cli::{self, FigureArgs};
use sfence_harness::{diff_rows, Experiment, IndexedRow, ResultStore, RunMeta, SweepResult};
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct SweepArgs {
    common: FigureArgs,
    experiment: Option<String>,
    spawn: Option<usize>,
    max_cells: Option<usize>,
    store: Option<PathBuf>,
    git: Option<String>,
    timestamp: Option<u64>,
    diff: bool,
    list: bool,
}

fn parse_args() -> Result<SweepArgs, String> {
    let mut args = SweepArgs {
        common: FigureArgs::default(),
        experiment: None,
        spawn: None,
        max_cells: None,
        store: None,
        git: None,
        timestamp: None,
        diff: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--experiment" => args.experiment = Some(cli::take(&mut it, "--experiment")?),
            "--spawn" => {
                let n: usize = cli::take(&mut it, "--spawn")?
                    .parse()
                    .map_err(|_| "--spawn expects a positive integer".to_string())?;
                if n == 0 {
                    return Err("--spawn expects a positive integer".into());
                }
                args.spawn = Some(n);
            }
            "--max-cells" => {
                args.max_cells = Some(
                    cli::take(&mut it, "--max-cells")?
                        .parse()
                        .map_err(|_| "--max-cells expects an integer".to_string())?,
                );
            }
            "--store" => args.store = Some(PathBuf::from(cli::take(&mut it, "--store")?)),
            "--git" => args.git = Some(cli::take(&mut it, "--git")?),
            "--timestamp" => {
                args.timestamp = Some(
                    cli::take(&mut it, "--timestamp")?
                        .parse()
                        .map_err(|_| "--timestamp expects unix seconds".to_string())?,
                );
            }
            "--diff" => args.diff = true,
            "--list" => args.list = true,
            other if !other.starts_with('-') && args.experiment.is_none() => {
                args.experiment = Some(other.to_string());
            }
            other => args.common.accept(other, &mut it)?,
        }
    }
    args.common.validate()?;
    if args.spawn.is_some() && args.common.shard.is_some() {
        return Err("--spawn and --shard are mutually exclusive".into());
    }
    if args.spawn.is_some() && args.max_cells.is_some() {
        return Err("--max-cells applies to in-process runs, not --spawn workers".into());
    }
    if args.common.shard.is_some() && (args.store.is_some() || args.diff) {
        // A shard worker emits partial rows for a parent to merge;
        // silently skipping the store/diff would look like data loss.
        return Err("--store/--diff apply to merged runs, not --shard workers".into());
    }
    Ok(args)
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("usage: sfence-sweep --experiment <name> [options]; --list for names");
        std::process::exit(2);
    });
    if args.list {
        print_list();
        return;
    }
    let name = args.experiment.clone().unwrap_or_else(|| {
        eprintln!("error: --experiment is required (--list for names)");
        std::process::exit(2);
    });
    let experiment = sfence_bench::experiment_by_name(&name).unwrap_or_else(|| {
        eprintln!("error: unknown experiment {name:?} (--list for names)");
        std::process::exit(2);
    });
    let experiment = args.common.configure(experiment).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if let Err(e) = run(&name, &experiment, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(name: &str, experiment: &Experiment, args: &SweepArgs) -> Result<(), String> {
    let rows = if let Some(workers) = args.spawn {
        run_spawned(name, experiment, args, workers)?
    } else {
        match run_local(experiment, args)? {
            Some(rows) => rows,
            // Shard mode already emitted its rows.
            None => return Ok(()),
        }
    };
    let result = SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows)?;
    // Stamped into the store meta and matched on diff: cycle counts
    // across problem scales are incomparable. Derived from the
    // experiment's resolved parameters (not the --scale flag), so a
    // run without the flag and one naming the same scale explicitly
    // land in — and diff against — the same history.
    let scale = match experiment.uniform_scale() {
        Some(sfence_workloads::Scale::Small) => "small",
        Some(sfence_workloads::Scale::Eval) => "eval",
        None => "mixed",
    };
    // Same idea for the execution engine: sim and functional runs of
    // one experiment are separate histories ("mixed" = Axis::Backend).
    let backend = match experiment.uniform_backend() {
        Some(b) => b.name(),
        None => "mixed",
    };

    if args.diff {
        let store = args
            .store
            .as_ref()
            .ok_or("--diff requires --store (the history to diff against)")?;
        match ResultStore::new(store).latest_at(&result.experiment, scale, backend)? {
            None => eprintln!(
                "diff: no stored run of {} at scale {scale} on the {backend} backend yet",
                result.experiment
            ),
            Some(prev) => {
                let diff = diff_rows(&prev.rows, &result.rows);
                if diff.is_empty() {
                    eprintln!(
                        "diff: identical to the stored run from {} ({})",
                        prev.meta.git, prev.meta.timestamp
                    );
                } else {
                    eprint!("{}", diff.to_report());
                }
            }
        }
    }
    if let Some(store) = &args.store {
        let git = match &args.git {
            Some(git) => git.clone(),
            None => git_describe(),
        };
        let timestamp = match args.timestamp {
            Some(t) => t,
            None => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        };
        let meta = RunMeta::new(
            &result.experiment,
            experiment.axis_name(),
            scale,
            backend,
            git,
            timestamp,
        );
        ResultStore::new(store)
            .append(&meta, &result)
            .map_err(|e| format!("append to {}: {e}", store.display()))?;
    }

    if args.common.json {
        print!("{}", result.to_json_string());
    } else {
        print!("{}", result.to_ascii_table());
    }
    Ok(())
}

/// Run (a shard of) the experiment in this process via the shared
/// `cli::run_local`. Returns `None` after emitting indexed JSONL in
/// shard mode; exits with code 3 if the `--max-cells` budget left
/// cells unrun.
fn run_local(experiment: &Experiment, args: &SweepArgs) -> Result<Option<Vec<IndexedRow>>, String> {
    let local = cli::run_local(experiment, &args.common, args.max_cells)?;
    if !local.complete {
        eprintln!("sweep: incomplete (budget ran out) — rerun with the same --cache-dir to resume");
        std::process::exit(3);
    }
    Ok(local.rows)
}

/// Spawn one worker process per shard and merge their indexed rows.
fn run_spawned(
    name: &str,
    experiment: &Experiment,
    args: &SweepArgs,
    workers: usize,
) -> Result<Vec<IndexedRow>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    // Split the machine across workers so N processes don't each
    // start a per-CPU thread pool (N-fold oversubscription).
    let threads_per_worker = args.common.threads.unwrap_or_else(|| {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (cpus / workers).max(1)
    });
    let mut children = Vec::new();
    for index in 0..workers {
        let mut cmd = Command::new(&exe);
        cmd.arg("--experiment")
            .arg(name)
            .arg("--shard")
            .arg(format!("{index}/{workers}"))
            .stdout(Stdio::piped());
        if let Some(scale) = args.common.scale {
            cmd.arg("--scale").arg(match scale {
                sfence_workloads::Scale::Eval => "eval",
                sfence_workloads::Scale::Small => "small",
            });
        }
        if let Some(backend) = args.common.backend {
            cmd.arg("--backend").arg(backend.name());
        }
        if let Some(dir) = &args.common.cache_dir {
            cmd.arg("--cache-dir").arg(dir);
        }
        cmd.arg("--threads").arg(threads_per_worker.to_string());
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawn shard {index}/{workers}: {e}"))?;
        children.push((index, child));
    }
    let mut rows = Vec::with_capacity(experiment.job_count());
    for (index, child) in children {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("wait for shard {index}/{workers}: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "shard worker {index}/{workers} failed: {}",
                out.status
            ));
        }
        let stdout = String::from_utf8(out.stdout)
            .map_err(|_| format!("shard worker {index}/{workers} emitted invalid UTF-8"))?;
        for line in stdout.lines().filter(|l| !l.trim().is_empty()) {
            let doc = sfence_harness::json::parse(line)
                .map_err(|e| format!("shard worker {index}/{workers} line: {e}"))?;
            rows.push(IndexedRow::from_json(&doc)?);
        }
    }
    Ok(rows)
}

/// `--list`: enumerate every registered experiment (axis, fence
/// configs, job count, workloads) plus the litmus scenario families,
/// so discovery never requires reading `catalog.rs`.
fn print_list() {
    println!("experiments (sfence-sweep --experiment <name>):");
    for name in sfence_bench::experiment_names() {
        let e = sfence_bench::experiment_by_name(name).expect("registered name");
        let axis = if e.axis_name().is_empty() {
            "-"
        } else {
            e.axis_name()
        };
        println!(
            "  {:<12} axis={:<12} jobs={:<4} workloads: {}",
            name,
            axis,
            e.job_count(),
            e.workload_names().join(", ")
        );
    }
    println!();
    println!("backends (--backend): sim (default, cycle-accurate), functional (fast SC");
    println!("  interpreter, no timing fields), enumerative (rows carry the SC allowed-state");
    println!("  set size; full sets live in the cached reports)");
    println!();
    println!(
        "litmus families (workload names litmus/<family>/<seed>; campaigns via sfence-litmus):"
    );
    print!(
        "{}",
        sfence_workloads::litmus::family_listing(|f| format!("litmus/{}/<seed>", f.name()))
    );
}

fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
