//! Prints Table IV (benchmark inventory).
fn main() {
    print!("{}", sfence_bench::table4());
}
