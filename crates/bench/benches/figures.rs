//! Criterion bench: one representative measurement per paper figure
//! family, so `cargo bench` regenerates every figure's machinery.
//! The full sweeps (all levels / all apps) live in the `fig*`
//! binaries; here each family runs a single representative point and
//! asserts the headline direction (S-Fence never loses) while
//! Criterion measures harness cost.

use criterion::{criterion_group, criterion_main, Criterion};
use sfence_sim::FenceConfig;
use sfence_workloads::ScopeMode;

fn fig12_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("wsq_level3_speedup", |b| {
        let w = sfence_bench::build_wsq(3, ScopeMode::Class);
        b.iter(|| {
            let t = w.run(sfence_bench::machine().with_fence(FenceConfig::TRADITIONAL));
            let s = w.run(sfence_bench::machine().with_fence(FenceConfig::SFENCE));
            assert!(s.cycles <= t.cycles);
            t.cycles as f64 / s.cycles as f64
        });
    });
    g.finish();
}

fn fig13_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("radiosity_T_vs_S", |b| {
        let w = sfence_bench::build_radiosity();
        b.iter(|| {
            let t = w.run(sfence_bench::machine().with_fence(FenceConfig::TRADITIONAL));
            let s = w.run(sfence_bench::machine().with_fence(FenceConfig::SFENCE));
            assert!(s.total_fence_stalls() < t.total_fence_stalls());
            (t.cycles, s.cycles)
        });
    });
    g.finish();
}

fn fig15_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.bench_function("radiosity_latency500", |b| {
        let w = sfence_bench::build_radiosity();
        b.iter(|| {
            let cfg = sfence_bench::machine()
                .with_mem_latency(500)
                .with_fence(FenceConfig::SFENCE);
            w.run(cfg).cycles
        });
    });
    g.finish();
}

fn fig16_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.bench_function("barnes_rob256", |b| {
        let w = sfence_bench::build_barnes();
        b.iter(|| {
            let cfg = sfence_bench::machine()
                .with_rob(256)
                .with_fence(FenceConfig::SFENCE);
            w.run(cfg).cycles
        });
    });
    g.finish();
}

criterion_group!(benches, fig12_point, fig13_point, fig15_point, fig16_point);
criterion_main!(benches);
