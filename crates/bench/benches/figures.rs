//! Plain timing harness (`cargo bench`): one representative
//! measurement per paper figure family, so the figure machinery is
//! exercised and its host cost visible without any external bench
//! framework. Each family runs a single representative point and
//! asserts the headline direction (S-Fence never loses).

use sfence_harness::Session;
use sfence_obs::prof;
use sfence_sim::FenceConfig;
use sfence_workloads::{catalog, ScopeMode, WorkloadParams};

fn timed<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) {
    // One warmup, then the timed iterations.
    let _ = f();
    let (_, total_ms) = prof::measure(label, || {
        for _ in 0..iters {
            let _ = f();
        }
    });
    println!(
        "{label:<28} {:>9.2} ms/iter ({iters} iters)",
        total_ms / iters as f64
    );
}

fn main() {
    let params = WorkloadParams::default().level(3);

    timed("fig12/wsq_level3_speedup", 3, || {
        let w = catalog::build("wsq", &params);
        let t = Session::for_workload(&w)
            .config(sfence_bench::machine())
            .fence(FenceConfig::TRADITIONAL)
            .run();
        let s = Session::for_workload(&w)
            .config(sfence_bench::machine())
            .fence(FenceConfig::SFENCE)
            .run();
        assert!(s.timed_cycles() <= t.timed_cycles());
        t.timed_cycles() as f64 / s.timed_cycles() as f64
    });

    timed("fig13/radiosity_T_vs_S", 3, || {
        let w = catalog::build("radiosity", &params);
        let t = Session::for_workload(&w)
            .config(sfence_bench::machine())
            .fence(FenceConfig::TRADITIONAL)
            .run();
        let s = Session::for_workload(&w)
            .config(sfence_bench::machine())
            .fence(FenceConfig::SFENCE)
            .run();
        assert!(s.timed_cycles() <= t.timed_cycles());
        t.timed_cycles() as f64 / s.timed_cycles() as f64
    });

    timed("fig14/msn_class_vs_set", 3, || {
        let class = catalog::build("msn", &params.scope(ScopeMode::Class));
        let set = catalog::build("msn", &params.scope(ScopeMode::Set));
        let c = Session::for_workload(&class)
            .config(sfence_bench::machine())
            .fence(FenceConfig::SFENCE)
            .run();
        let s = Session::for_workload(&set)
            .config(sfence_bench::machine())
            .fence(FenceConfig::SFENCE)
            .run();
        (c.timed_cycles(), s.timed_cycles())
    });

    timed("fig15/barnes_latency500", 3, || {
        let w = catalog::build("barnes", &params);
        let mut cfg = sfence_bench::machine().with_mem_latency(500);
        cfg = cfg.with_fence(FenceConfig::TRADITIONAL);
        let t = Session::for_workload(&w).config(cfg.clone()).run();
        let s = Session::for_workload(&w)
            .config(cfg.with_fence(FenceConfig::SFENCE))
            .run();
        assert!(s.timed_cycles() <= t.timed_cycles());
        t.timed_cycles() as f64 / s.timed_cycles() as f64
    });

    timed("fig16/wsq_rob256", 3, || {
        let w = catalog::build("wsq", &params);
        let base = sfence_bench::machine().with_rob(256);
        let t = Session::for_workload(&w)
            .config(base.clone().with_fence(FenceConfig::TRADITIONAL))
            .run();
        let s = Session::for_workload(&w)
            .config(base.with_fence(FenceConfig::SFENCE))
            .run();
        assert!(s.timed_cycles() <= t.timed_cycles());
        t.timed_cycles() as f64 / s.timed_cycles() as f64
    });
}
