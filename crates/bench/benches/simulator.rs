//! Plain timing harness (`cargo bench`): raw simulator throughput
//! (host time per simulated workload) for the lock-free benchmarks
//! under T and S.

use sfence_harness::Session;
use sfence_obs::prof;
use sfence_sim::FenceConfig;
use sfence_workloads::{catalog, WorkloadParams};

fn main() {
    let params = WorkloadParams::default().level(2);
    for (label, name, fence) in [
        ("simulator/wsq_T", "wsq", FenceConfig::TRADITIONAL),
        ("simulator/wsq_S", "wsq", FenceConfig::SFENCE),
        ("simulator/dekker_S", "dekker", FenceConfig::SFENCE),
    ] {
        let w = catalog::build(name, &params);
        // One warmup, then timed iterations.
        let run = || {
            Session::for_workload(&w)
                .config(sfence_bench::machine())
                .fence(fence)
                .run()
        };
        let report = run();
        let iters = 3u32;
        let (_, total_ms) = prof::measure(label, || {
            for _ in 0..iters {
                let _ = run();
            }
        });
        println!(
            "{label:<22} {:>9.2} ms/iter   {} simulated cycles",
            total_ms / iters as f64,
            report.timed_cycles()
        );
    }
}
