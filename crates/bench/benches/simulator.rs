//! Criterion bench: raw simulator throughput (host time per simulated
//! workload) for the lock-free benchmarks under T and S.

use criterion::{criterion_group, criterion_main, Criterion};
use sfence_sim::FenceConfig;
use sfence_workloads::ScopeMode;

fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for (name, fence) in [("wsq_T", FenceConfig::TRADITIONAL), ("wsq_S", FenceConfig::SFENCE)] {
        g.bench_function(name, |b| {
            let w = sfence_bench::build_wsq(2, ScopeMode::Class);
            b.iter(|| w.run(sfence_bench::machine().with_fence(fence)).cycles);
        });
    }
    g.bench_function("dekker_S", |b| {
        let w = sfence_bench::build_dekker(2);
        b.iter(|| w.run(sfence_bench::machine().with_fence(FenceConfig::SFENCE)).cycles);
    });
    g.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
