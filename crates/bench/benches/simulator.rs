//! Plain timing harness (`cargo bench`): raw simulator throughput
//! (host time per simulated workload) for the lock-free benchmarks
//! under T and S.

use sfence_harness::Session;
use sfence_sim::FenceConfig;
use sfence_workloads::{catalog, WorkloadParams};
use std::time::Instant;

fn main() {
    let params = WorkloadParams::default().level(2);
    for (label, name, fence) in [
        ("simulator/wsq_T", "wsq", FenceConfig::TRADITIONAL),
        ("simulator/wsq_S", "wsq", FenceConfig::SFENCE),
        ("simulator/dekker_S", "dekker", FenceConfig::SFENCE),
    ] {
        let w = catalog::build(name, &params);
        // One warmup, then timed iterations.
        let run = || {
            Session::for_workload(&w)
                .config(sfence_bench::machine())
                .fence(fence)
                .run()
        };
        let report = run();
        let iters = 3u32;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = run();
        }
        let per_iter = start.elapsed() / iters;
        println!(
            "{label:<22} {per_iter:>12.2?}/iter   {} simulated cycles",
            report.timed_cycles()
        );
    }
}
