//! The pipeline trace's portability contract: for a fixed seed, the
//! Chrome `trace_event` JSON written by `--trace` is byte-identical
//! no matter how many worker threads executed the sweep. Per-core
//! event streams are merged by `(cycle, core)` and jobs are emitted
//! in index order, so thread scheduling can never reorder the file.

use sfence_bench::experiment_by_name;
use sfence_harness::{RunOptions, Session};
use sfence_obs::write_chrome_trace;
use sfence_workloads::{catalog, Scale, WorkloadParams};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfence-trace-{}-{tag}.json", std::process::id()))
}

fn run_traced(name: &str, scale: Scale, threads: usize, tag: &str) -> (Vec<u8>, usize) {
    let e = experiment_by_name(name)
        .expect("registered experiment")
        .scale(scale);
    let outcome = e.run_with(RunOptions::new(threads).pipe_trace());
    assert!(outcome.complete, "{name} completes");
    let path = scratch(tag);
    write_chrome_trace(&path, &outcome.traces).expect("trace written");
    let bytes = std::fs::read(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    (bytes, outcome.traces.len())
}

#[test]
fn fig13_small_trace_is_byte_identical_across_thread_counts() {
    let (one, jobs_one) = run_traced("fig13", Scale::Small, 1, "t1");
    let (four, jobs_four) = run_traced("fig13", Scale::Small, 4, "t4");
    assert_eq!(jobs_one, jobs_four);
    assert!(jobs_one > 0, "fig13 produced traced jobs");
    assert_eq!(one, four, "trace bytes must not depend on --threads");

    // The file is one valid JSON document in Chrome's trace_event
    // object form, with a non-empty event array.
    let text = String::from_utf8(one).expect("trace is UTF-8");
    let doc = sfence_harness::json::parse(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(sfence_harness::Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        let ph = e
            .get("ph")
            .and_then(sfence_harness::Json::as_str)
            .expect("event has ph");
        assert!(matches!(ph, "i" | "X" | "M"), "unexpected phase {ph:?}");
    }
}

#[test]
fn fixed_seed_litmus_trace_is_reproducible() {
    // A deterministic litmus scenario traced twice through the
    // Session front end yields identical event streams — the
    // fixed-seed half of the determinism contract.
    let w = catalog::build("litmus/sb/17", &WorkloadParams::small());
    let run = || Session::for_workload(&w).pipe_trace().run();
    let a = run();
    let b = run();
    assert!(!a.pipe.is_empty(), "tracing on produces events");
    assert_eq!(a.pipe, b.pipe);

    let path = scratch("litmus");
    write_chrome_trace(&path, &[("litmus/sb/17".to_string(), a.pipe.clone())])
        .expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let _ = std::fs::remove_file(&path);
    let doc = sfence_harness::json::parse(&text).expect("trace parses");
    assert!(doc.get("traceEvents").is_some());
}

#[test]
fn tracing_off_leaves_reports_event_free() {
    // The zero-cost contract's observable half: with `pipe_trace`
    // unset, no events are collected anywhere in the stack.
    let w = catalog::build("dekker", &WorkloadParams::small());
    let report = Session::for_workload(&w).run();
    assert!(report.pipe.is_empty());
}
