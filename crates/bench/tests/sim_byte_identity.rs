//! The hot-loop work's permanent safety net: the cycle-accurate
//! simulator's serialized output for every registry workload must
//! equal the checked-in digests — cycle counts, every stats counter,
//! the final memory image and registers, under all four fence
//! configs. A perf change that shifts any of them lands here before
//! it lands in a figure.
//!
//! The Small scale always runs. The Eval scale — the figures'
//! problem size, minutes under a debug build — is asserted only in
//! release builds, where the whole sweep is a few seconds.
//!
//! After an intentional behavior change:
//! `cargo run --release -p sfence-bench --bin regen-golden`.

use sfence_bench::digests::{digest_rows, parse_digests, DigestRow};
use sfence_workloads::Scale;
use std::path::Path;

fn committed() -> Vec<DigestRow> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/sim_digests.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let json = sfence_harness::json::parse(&text).expect("sim_digests.json parses");
    parse_digests(&json).expect("sim_digests.json rows parse")
}

fn assert_scale_matches(scale: Scale, scale_name: &str, committed: &[DigestRow]) {
    let fresh = digest_rows(scale);
    let pinned: Vec<&DigestRow> = committed.iter().filter(|r| r.scale == scale_name).collect();
    assert_eq!(
        pinned.len(),
        fresh.len(),
        "{scale_name}: committed digest count diverged from the registry \
         (regenerate with regen-golden)"
    );
    let mut diverged = Vec::new();
    for f in &fresh {
        match pinned
            .iter()
            .find(|c| c.workload == f.workload && c.fence == f.fence)
        {
            None => diverged.push(format!(
                "{}/{} missing from the golden",
                f.workload, f.fence
            )),
            Some(c) if c.sha256 != f.sha256 => diverged.push(format!(
                "{}/{}: {} != committed {}",
                f.workload, f.fence, f.sha256, c.sha256
            )),
            Some(_) => {}
        }
    }
    assert!(
        diverged.is_empty(),
        "{scale_name}: sim output diverged from tests/golden/sim_digests.json \
         (intentional? regenerate with regen-golden):\n  {}",
        diverged.join("\n  ")
    );
}

#[test]
fn small_scale_sim_output_matches_committed_digests() {
    assert_scale_matches(Scale::Small, "small", &committed());
}

#[test]
fn eval_scale_sim_output_matches_committed_digests() {
    if cfg!(debug_assertions) {
        // Minutes per workload under a debug build; the release CI
        // lanes (build-test release, perf-gate) keep this asserted.
        eprintln!("skipping Eval-scale byte-identity under a debug build");
        return;
    }
    assert_scale_matches(Scale::Eval, "eval", &committed());
}
