//! `msn` — the Michael–Scott non-blocking queue (multiple producers,
//! multiple consumers), with **class scope**: the publish fence in
//! `enqueue` (node fields before the link CAS) and the validation
//! fence in `dequeue` only order the queue's own variables.
//!
//! Nodes come from per-thread allocate-only pools (no reclamation →
//! no ABA; see DESIGN.md substitutions).

use crate::support::{
    compile, declare_padding, declare_padding_locals, emit_padding, BuiltWorkload, ScopeMode,
};
use sfence_isa::ir::*;

/// Storage handles.
#[derive(Debug, Clone, Copy)]
pub struct Msn {
    pub qhead: Global,
    pub qtail: Global,
    pub val: Global,
    pub next: Global,
}

/// Register the `Msn` class (methods `Msn::enqueue`, `Msn::dequeue`).
/// `pool` is the total node count (node 0 is the initial dummy).
/// Threads allocate from disjoint ranges via the local `alloc_cur`.
pub fn register(p: &mut IrProgram, pool: usize, mode: ScopeMode) -> Msn {
    let qhead = p.shared_line("MSN_HEAD");
    let qtail = p.shared_line("MSN_TAIL");
    let val = p.shared_array("MSN_VAL", pool);
    let next = p.shared_array("MSN_NEXT", pool);
    let cls = p.class("Msn");
    // Dummy node 0: next = -1 (null); HEAD = TAIL = 0.
    p.init_elem(next, 0, -1);

    let fence = move |b: &mut BlockBuilder| match mode {
        ScopeMode::Class => b.fence_class(),
        ScopeMode::Set => b.fence_set(&[qhead, qtail, val, next]),
    };

    // enqueue(n, v): n is a fresh node index owned by the caller.
    p.method(cls, "enqueue", &["n", "v"], move |b| {
        b.store(val.at(l("n")), l("v"));
        b.store(next.at(l("n")), c(-1));
        fence(b); // publish node fields before the link CAS
        b.loop_(move |lp| {
            lp.let_("t", ld(qtail.cell()));
            lp.let_("nx", ld(next.at(l("t"))));
            // Classic MS consistency check: t still the tail?
            lp.if_(l("t").ne(ld(qtail.cell())), |x| x.continue_());
            lp.if_else(
                l("nx").eq(c(-1)),
                move |tb| {
                    tb.cas("linked", next.at(l("t")), c(-1), l("n"));
                    tb.if_(l("linked").eq(c(1)), |x| x.break_());
                },
                move |eb| {
                    // Tail lags: help swing it forward.
                    eb.cas("helped", qtail.cell(), l("t"), l("nx"));
                },
            );
        });
        b.cas("swung", qtail.cell(), l("t"), l("n"));
    });

    // dequeue() -> value, or 0 when empty.
    p.method(cls, "dequeue", &[], move |b| {
        b.loop_(move |lp| {
            lp.let_("h", ld(qhead.cell()));
            lp.let_("t", ld(qtail.cell()));
            lp.let_("nx", ld(next.at(l("h"))));
            fence(lp); // validate: loads above ordered before the checks
                       // Classic MS consistency check: h still the head? (Also
                       // guards the val/CAS below against a stale nx.)
            lp.if_(l("h").ne(ld(qhead.cell())), |x| x.continue_());
            lp.if_(l("nx").eq(c(-1)).bitand(l("h").ne(l("t"))), |x| {
                x.continue_()
            });
            lp.if_else(
                l("h").eq(l("t")),
                move |tb| {
                    tb.if_(l("nx").eq(c(-1)), |x| {
                        x.ret(Some(c(0))); // empty
                    });
                    tb.cas("helped", qtail.cell(), l("t"), l("nx"));
                },
                move |eb| {
                    eb.let_("v", ld(val.at(l("nx"))));
                    eb.cas("won", qhead.cell(), l("h"), l("nx"));
                    eb.if_(l("won").eq(c(1)), |x| {
                        x.ret(Some(l("v")));
                    });
                },
            );
        });
    });

    Msn {
        qhead,
        qtail,
        val,
        next,
    }
}

/// Parameters for the msn harness.
#[derive(Debug, Clone, Copy)]
pub struct MsnParams {
    /// Items enqueued per producer.
    pub items: u32,
    pub producers: usize,
    pub consumers: usize,
    pub workload: u32,
    pub scope: ScopeMode,
}

impl Default for MsnParams {
    fn default() -> Self {
        Self {
            items: 40,
            producers: 2,
            consumers: 2,
            workload: 3,
            scope: ScopeMode::Class,
        }
    }
}

/// Build the msn benchmark: producers enqueue tagged values
/// `p * TAG + i`, consumers dequeue into per-consumer logs until
/// everything is accounted for.
///
/// Invariants: the multiset of consumed values equals the produced
/// one, and within each consumer's log the values of any single
/// producer appear in FIFO order.
pub fn build(params: MsnParams) -> BuiltWorkload {
    const TAG: i64 = 1 << 20;
    let threads = params.producers + params.consumers;
    let total = (params.items as usize) * params.producers;
    let pool = 1 + params.producers * params.items as usize;
    let mut p = IrProgram::new();
    register(&mut p, pool, params.scope);
    let consumed = p.shared_line("CONSUMED");
    let logs = p.shared_array("LOGS", params.consumers * total.max(1));
    let log_lens = p.shared_array("LOG_LENS", params.consumers * 8);
    let pad = declare_padding(&mut p, threads);

    // Producers.
    for pr in 0..params.producers {
        let items = params.items;
        let workload = params.workload;
        p.thread(move |b| {
            declare_padding_locals(b, pr);
            // Disjoint node range: [1 + pr*items, ...).
            b.let_("alloc", c(1 + (pr as i64) * items as i64));
            b.let_("i", c(1));
            b.while_(l("i").le(c(items as i64)), move |w| {
                w.call(
                    "Msn::enqueue",
                    &[l("alloc"), c(pr as i64 * TAG).add(l("i"))],
                );
                w.assign("alloc", l("alloc").add(c(1)));
                emit_padding(w, pad, pr, workload);
                w.assign("i", l("i").add(c(1)));
            });
            b.halt();
        });
    }

    // Consumers.
    for co in 0..params.consumers {
        let tid = params.producers + co;
        let workload = params.workload;
        let total64 = total as i64;
        p.thread(move |b| {
            declare_padding_locals(b, tid);
            b.let_("mylen", c(0));
            b.while_(ld(consumed.cell()).lt(c(total64)), move |w| {
                w.call_ret("v", "Msn::dequeue", &[]);
                w.if_(l("v").gt(c(0)), move |t| {
                    t.store(logs.at(c(co as i64 * total64).add(l("mylen"))), l("v"));
                    t.assign("mylen", l("mylen").add(c(1)));
                    // fetch-and-increment CONSUMED
                    t.let_("got", c(0));
                    t.while_(l("got").eq(c(0)), move |ww| {
                        ww.let_("cur", ld(consumed.cell()));
                        ww.cas("got", consumed.cell(), l("cur"), l("cur").add(c(1)));
                    });
                });
                emit_padding(w, pad, tid, workload);
            });
            b.store(log_lens.at(c((co * 8) as i64)), l("mylen"));
            b.halt();
        });
    }

    let program = compile(&p);
    let producers = params.producers;
    let consumers = params.consumers;
    let items = params.items as i64;
    BuiltWorkload {
        name: "msn".into(),
        program,
        check: Box::new(move |prog, mem| {
            let logs_base = prog.addr_of("LOGS");
            let lens_base = prog.addr_of("LOG_LENS");
            let mut seen: Vec<i64> = Vec::new();
            for co in 0..consumers {
                let len = mem[lens_base + co * 8] as usize;
                let base = logs_base + co * total;
                let mut last_per_producer = vec![0i64; producers];
                for k in 0..len {
                    let v = mem[base + k];
                    let pr = (v / TAG) as usize;
                    let seqno = v % TAG;
                    if pr >= producers || seqno < 1 || seqno > items {
                        return Err(format!("consumer {co} saw bogus value {v}"));
                    }
                    if seqno <= last_per_producer[pr] {
                        return Err(format!(
                            "FIFO violated for producer {pr} at consumer {co}: {seqno} after {}",
                            last_per_producer[pr]
                        ));
                    }
                    last_per_producer[pr] = seqno;
                    seen.push(v);
                }
            }
            if seen.len() != total {
                return Err(format!("consumed {} of {total} items", seen.len()));
            }
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != total {
                return Err("duplicate items consumed".into());
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 300_000_000;
        cfg
    }

    #[test]
    fn fifo_and_exactly_once_under_all_configs() {
        let w = build(MsnParams {
            items: 25,
            producers: 2,
            consumers: 2,
            workload: 2,
            scope: ScopeMode::Class,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn single_producer_single_consumer() {
        let w = build(MsnParams {
            items: 30,
            producers: 1,
            consumers: 1,
            workload: 1,
            scope: ScopeMode::Class,
        });
        run(&w, cfg(FenceConfig::SFENCE, 2));
    }

    #[test]
    fn set_scope_variant_correct() {
        let w = build(MsnParams {
            items: 20,
            producers: 2,
            consumers: 2,
            workload: 2,
            scope: ScopeMode::Set,
        });
        run(&w, cfg(FenceConfig::SFENCE, 4));
    }

    #[test]
    fn sfence_beats_traditional() {
        let w = build(MsnParams {
            items: 30,
            producers: 2,
            consumers: 2,
            workload: 4,
            scope: ScopeMode::Class,
        });
        let t = run(&w, cfg(FenceConfig::TRADITIONAL, 4));
        let s = run(&w, cfg(FenceConfig::SFENCE, 4));
        assert!(
            s.timed_cycles() < t.timed_cycles(),
            "S ({}) must beat T ({})",
            s.timed_cycles(),
            t.timed_cycles()
        );
    }
}
