//! `harris` — Harris's lock-free sorted linked-list set, with **class
//! scope**: the publish fence in `insert` (node fields before the link
//! CAS) only orders the list's own variables.
//!
//! Deleted nodes are *logically* marked (low bit of the next pointer)
//! and unlinked best-effort, exactly as in the original algorithm.
//! Nodes come from allocate-only per-thread pools (no reclamation →
//! no ABA).
//!
//! Pointer encoding: `NEXT[n] = node_index * 2 + mark`; `-2` encodes
//! null (never appears inside the list because of the tail sentinel).

use crate::support::{
    compile, declare_padding, declare_padding_locals, emit_padding, BuiltWorkload, ScopeMode,
};
use sfence_isa::ir::*;

/// Storage handles. Node 0 is the head sentinel (key -1), node 1 the
/// tail sentinel (key `KEY_MAX`).
#[derive(Debug, Clone, Copy)]
pub struct Harris {
    pub val: Global,
    pub next: Global,
}

/// Sentinel key of the tail node; user keys must be smaller.
pub const KEY_MAX: i64 = 1 << 40;

/// Register the `Harris` class (methods `Harris::search`,
/// `Harris::insert`, `Harris::remove`, `Harris::contains`).
///
/// `Harris::search(key)` returns `left * 2^20 + right` (node indices);
/// insert/remove return 1 on success, 0 otherwise. `n` arguments are
/// caller-allocated node indices.
pub fn register(p: &mut IrProgram, pool: usize, mode: ScopeMode) -> Harris {
    assert!(pool < (1 << 20));
    let val = p.shared_array("HAR_VAL", pool);
    let next = p.shared_array("HAR_NEXT", pool);
    let cls = p.class("Harris");
    // head(0) -> tail(1); tail.next = null(-2).
    p.init_elem(val, 0, -1);
    p.init_elem(val, 1, KEY_MAX);
    p.init_elem(next, 0, 2); // pack(1, 0)
    p.init_elem(next, 1, -2);
    const PACK: i64 = 1 << 20;

    let fence = move |b: &mut BlockBuilder| match mode {
        ScopeMode::Class => b.fence_class(),
        ScopeMode::Set => b.fence_set(&[val, next]),
    };

    // search(key) -> left*PACK + right, with marked-chain cleanup.
    p.method(cls, "search", &["key"], move |b| {
        b.loop_(move |retry| {
            // Walk from the head, remembering the last unmarked node.
            retry.let_("left", c(0));
            retry.let_("left_next", ld(next.at(c(0))));
            retry.let_("t", l("left_next").shr(c(1)));
            retry.let_("t_next", ld(next.at(l("t"))));
            retry.loop_(move |walk| {
                walk.if_(
                    l("t_next")
                        .bitand(c(1))
                        .eq(c(0))
                        .bitand(ld(val.at(l("t"))).ge(l("key"))),
                    |x| x.break_(),
                );
                walk.if_(l("t_next").bitand(c(1)).eq(c(0)), move |un| {
                    un.assign("left", l("t"));
                    un.assign("left_next", l("t_next"));
                });
                walk.assign("t", l("t_next").shr(c(1)));
                walk.assign("t_next", ld(next.at(l("t"))));
            });
            retry.let_("right", l("t"));
            // Adjacent already?
            retry.if_(l("left_next").shr(c(1)).eq(l("right")), move |ok| {
                ok.ret(Some(l("left").mul(c(PACK)).add(l("right"))));
            });
            // Unlink the marked chain between left and right.
            retry.cas(
                "cleaned",
                next.at(l("left")),
                l("left_next"),
                l("right").mul(c(2)),
            );
            retry.if_(l("cleaned").eq(c(1)), move |ok| {
                ok.ret(Some(l("left").mul(c(PACK)).add(l("right"))));
            });
            // Lost a race: retry the walk.
        });
    });

    // insert(n, key): n is a fresh caller-owned node.
    p.method(cls, "insert", &["n", "key"], move |b| {
        b.loop_(move |lp| {
            lp.call_ret("pr", "Harris::search", &[l("key")]);
            lp.let_("left", l("pr").div(c(PACK)));
            lp.let_("right", l("pr").rem(c(PACK)));
            lp.if_(ld(val.at(l("right"))).eq(l("key")), |x| {
                x.ret(Some(c(0))); // already present
            });
            lp.store(val.at(l("n")), l("key"));
            lp.store(next.at(l("n")), l("right").mul(c(2)));
            fence(lp); // publish node fields before linking
            lp.cas(
                "linked",
                next.at(l("left")),
                l("right").mul(c(2)),
                l("n").mul(c(2)),
            );
            lp.if_(l("linked").eq(c(1)), |x| {
                x.ret(Some(c(1)));
            });
        });
    });

    // remove(key): logical delete (mark), then best-effort unlink.
    p.method(cls, "remove", &["key"], move |b| {
        b.loop_(move |lp| {
            lp.call_ret("pr", "Harris::search", &[l("key")]);
            lp.let_("left", l("pr").div(c(PACK)));
            lp.let_("right", l("pr").rem(c(PACK)));
            lp.if_(ld(val.at(l("right"))).ne(l("key")), |x| {
                x.ret(Some(c(0))); // absent
            });
            lp.let_("rnext", ld(next.at(l("right"))));
            lp.if_(l("rnext").bitand(c(1)).eq(c(0)), move |unmarked| {
                unmarked.cas(
                    "marked",
                    next.at(l("right")),
                    l("rnext"),
                    l("rnext").bitor(c(1)),
                );
                unmarked.if_(l("marked").eq(c(1)), move |won| {
                    // Best-effort physical unlink; search cleans up on
                    // failure.
                    won.cas(
                        "unlinked",
                        next.at(l("left")),
                        l("right").mul(c(2)),
                        l("rnext"),
                    );
                    won.ret(Some(c(1)));
                });
            });
        });
    });

    // contains(key).
    p.method(cls, "contains", &["key"], move |b| {
        b.call_ret("pr", "Harris::search", &[l("key")]);
        b.let_("right", l("pr").rem(c(PACK)));
        b.ret(Some(ld(val.at(l("right"))).eq(l("key"))));
    });

    Harris { val, next }
}

/// Parameters for the harris harness.
#[derive(Debug, Clone, Copy)]
pub struct HarrisParams {
    /// Operations per thread.
    pub ops: u32,
    pub threads: usize,
    /// Key range (small → contention).
    pub key_range: i64,
    pub workload: u32,
    pub scope: ScopeMode,
}

impl Default for HarrisParams {
    fn default() -> Self {
        Self {
            ops: 40,
            threads: 4,
            key_range: 32,
            workload: 3,
            scope: ScopeMode::Class,
        }
    }
}

/// Build the harris benchmark: each thread runs a deterministic
/// per-thread mix of inserts and removes over a small key range,
/// counting successes.
///
/// Invariants (checked by walking the final list on the host): the
/// unmarked list is strictly sorted and duplicate-free, and its size
/// equals `successful inserts - successful removes`.
pub fn build(params: HarrisParams) -> BuiltWorkload {
    let threads = params.threads;
    let pool = 2 + threads * params.ops as usize;
    let mut p = IrProgram::new();
    register(&mut p, pool, params.scope);
    let ins_ok = p.shared_array("INS_OK", threads * 8);
    let del_ok = p.shared_array("DEL_OK", threads * 8);
    let pad = declare_padding(&mut p, threads);

    for t in 0..threads {
        let ops = params.ops;
        let range = params.key_range;
        let workload = params.workload;
        p.thread(move |b| {
            declare_padding_locals(b, t);
            b.let_("rng", c(t as i64 * 1234567 + 89));
            b.let_("alloc", c(2 + (t as i64) * ops as i64));
            b.let_("nins", c(0));
            b.let_("ndel", c(0));
            b.let_("i", c(0));
            b.while_(l("i").lt(c(ops as i64)), move |w| {
                w.assign(
                    "rng",
                    l("rng")
                        .mul(c(6364136223846793005))
                        .add(c(1442695040888963407)),
                );
                w.let_("key", l("rng").shr(c(33)).bitand(c(i64::MAX)).rem(c(range)));
                w.if_else(
                    l("rng").shr(c(13)).bitand(c(1)).eq(c(0)),
                    move |ins| {
                        ins.call_ret("ok", "Harris::insert", &[l("alloc"), l("key")]);
                        ins.assign("alloc", l("alloc").add(l("ok"))); // consume node only on success... but retry reuses
                        ins.assign("nins", l("nins").add(l("ok")));
                    },
                    move |del| {
                        del.call_ret("ok", "Harris::remove", &[l("key")]);
                        del.assign("ndel", l("ndel").add(l("ok")));
                    },
                );
                emit_padding(w, pad, t, workload);
                w.assign("i", l("i").add(c(1)));
            });
            b.store(ins_ok.at(c((t * 8) as i64)), l("nins"));
            b.store(del_ok.at(c((t * 8) as i64)), l("ndel"));
            b.halt();
        });
    }

    let program = compile(&p);
    let key_range = params.key_range;
    BuiltWorkload {
        name: "harris".into(),
        program,
        check: Box::new(move |prog, mem| {
            let val_base = prog.addr_of("HAR_VAL");
            let next_base = prog.addr_of("HAR_NEXT");
            let ins_base = prog.addr_of("INS_OK");
            let del_base = prog.addr_of("DEL_OK");
            let (mut nins, mut ndel) = (0i64, 0i64);
            for t in 0..threads {
                nins += mem[ins_base + t * 8];
                ndel += mem[del_base + t * 8];
            }
            // Walk unmarked nodes from the head sentinel.
            let mut n = (mem[next_base] >> 1) as usize;
            let mut last_key = -1i64;
            let mut size = 0i64;
            let mut hops = 0;
            while mem[val_base + n] != KEY_MAX {
                hops += 1;
                if hops > pool {
                    return Err("cycle in list".into());
                }
                let nx = mem[next_base + n];
                if nx & 1 == 0 {
                    let k = mem[val_base + n];
                    if k <= last_key {
                        return Err(format!("list not strictly sorted: {k} after {last_key}"));
                    }
                    if k < 0 || k >= key_range {
                        return Err(format!("key {k} out of range"));
                    }
                    last_key = k;
                    size += 1;
                }
                n = (nx >> 1) as usize;
            }
            if size != nins - ndel {
                return Err(format!(
                    "size {size} != inserts {nins} - removes {ndel} = {}",
                    nins - ndel
                ));
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 400_000_000;
        cfg
    }

    #[test]
    fn single_thread_set_semantics() {
        let w = build(HarrisParams {
            ops: 40,
            threads: 1,
            key_range: 16,
            workload: 1,
            scope: ScopeMode::Class,
        });
        run(&w, cfg(FenceConfig::SFENCE, 1));
    }

    #[test]
    fn concurrent_set_consistent_under_all_configs() {
        let w = build(HarrisParams {
            ops: 20,
            threads: 4,
            key_range: 12,
            workload: 2,
            scope: ScopeMode::Class,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn set_scope_variant_correct() {
        let w = build(HarrisParams {
            ops: 20,
            threads: 4,
            key_range: 12,
            workload: 2,
            scope: ScopeMode::Set,
        });
        run(&w, cfg(FenceConfig::SFENCE, 4));
    }
}
