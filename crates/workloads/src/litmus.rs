//! Deterministic litmus-test synthesis.
//!
//! Each *family* is a parameterized concurrent shape — message
//! passing, store buffering, IRIW, CAS loops, fenced
//! producer/consumer — whose ordering points carry fences of a chosen
//! scope, placed so the scope either *covers* the racing accesses
//! (the outcome must be SC-allowed on S-Fence hardware) or
//! deliberately does not (the relaxed outcome must survive — the
//! defining property of scope). The generator is seeded by a
//! [`Prng`]: the same `(family, seed)` always emits a byte-identical
//! program, and the seed varies data values, filler work, item counts
//! and scope-nesting depth without disturbing the racy skeleton. All
//! random draws happen *before* any IR is emitted, so generation
//! order can never perturb determinism.
//!
//! Every observed location is declared through
//! [`IrProgram::observer`], so the program's final state is exactly
//! `Program::observed_state(&mem)` — the surface the `sfence-litmus`
//! SC reference checker enumerates and its differential runner
//! compares.
//!
//! Scenarios register into the workload catalog under
//! `litmus/<family>/<seed>` ([`parse_name`] / `catalog::build`), so
//! `Experiment` sweeps, the result cache, sharding and the store all
//! work on them unchanged.

use crate::support::{BuiltWorkload, Prng};
use sfence_isa::ir::{c, l, ld, BlockBuilder, Global, IrProgram};
use sfence_isa::{CompileOpts, WORDS_PER_LINE};

/// Registry namespace for generated scenarios.
pub const LITMUS_PREFIX: &str = "litmus/";

/// The scenario families. `*WrongSet` / `*ClassWrong` place a scoped
/// fence whose scope deliberately fails to cover the race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Message passing, full fences on both sides.
    Mp,
    /// Message passing, set fences over `{data, flag}`.
    MpSet,
    /// Message passing, set fences over an unrelated variable
    /// (non-covering: the relaxed outcome is expected on S).
    MpWrongSet,
    /// Store buffering (Dekker core), full fences.
    Sb,
    /// Store buffering, set fences over the flags.
    SbSet,
    /// Store buffering, set fences over an unrelated variable
    /// (non-covering).
    SbWrongSet,
    /// Store buffering with store+fence+load inside a class method
    /// (class scope covers the race).
    SbClass,
    /// Store buffering with the racy store *outside* the class and
    /// only the fence+load inside (class scope does not cover the
    /// store: non-covering).
    SbClassWrong,
    /// Independent reads of independent writes, full fences between
    /// the reader loads.
    Iriw,
    /// Two threads CAS-incrementing a shared counter through a class
    /// method with a class fence.
    Cas,
    /// Producer/consumer mailbox class: slots published under a class
    /// fence, consumed under a class fence.
    PcClass,
    /// `PcClass` called through a seed-varied stack of instrumented
    /// wrapper classes — deep scope nesting that overflows the FSS
    /// and exercises the degrade-to-full-fence path.
    PcDeep,
    /// Replays a minimized divergence found by `sfence-fuzz`
    /// ([`crate::synth::REGRESSIONS`]). Unlike the seeded families,
    /// the "seed" is a fixed registry index: `litmus/regression/<id>`
    /// re-emits entry `<id>` byte-identically forever. Not part of
    /// [`FAMILIES`] — campaigns append it with its exact entry count.
    Regression,
}

/// Every family, in the deterministic campaign order.
pub const FAMILIES: [Family; 12] = [
    Family::Mp,
    Family::MpSet,
    Family::MpWrongSet,
    Family::Sb,
    Family::SbSet,
    Family::SbWrongSet,
    Family::SbClass,
    Family::SbClassWrong,
    Family::Iriw,
    Family::Cas,
    Family::PcClass,
    Family::PcDeep,
];

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::Mp => "mp",
            Family::MpSet => "mp-set",
            Family::MpWrongSet => "mp-wrongset",
            Family::Sb => "sb",
            Family::SbSet => "sb-set",
            Family::SbWrongSet => "sb-wrongset",
            Family::SbClass => "sb-class",
            Family::SbClassWrong => "sb-classwrong",
            Family::Iriw => "iriw",
            Family::Cas => "cas",
            Family::PcClass => "pc-class",
            Family::PcDeep => "pc-deep",
            Family::Regression => "regression",
        }
    }

    pub fn from_name(name: &str) -> Option<Family> {
        if name == "regression" {
            return Some(Family::Regression);
        }
        FAMILIES.iter().copied().find(|f| f.name() == name)
    }

    /// Does the fence scope cover the racing accesses? Covering
    /// families must observe only SC-allowed final states on S-Fence
    /// hardware; non-covering families are *expected* to demonstrate
    /// relaxed outcomes there (while remaining SC under traditional
    /// fences, which ignore scopes).
    pub fn covering(self) -> bool {
        !matches!(
            self,
            Family::MpWrongSet | Family::SbWrongSet | Family::SbClassWrong
        )
    }

    /// One-line description for discovery listings.
    pub fn description(self) -> &'static str {
        match self {
            Family::Mp => "message passing, full fences",
            Family::MpSet => "message passing, covering set fences",
            Family::MpWrongSet => "message passing, NON-covering set fences",
            Family::Sb => "store buffering, full fences",
            Family::SbSet => "store buffering, covering set fences",
            Family::SbWrongSet => "store buffering, NON-covering set fences",
            Family::SbClass => "store buffering inside a class scope",
            Family::SbClassWrong => "store buffering, racy store outside the class scope",
            Family::Iriw => "independent reads of independent writes, full fences",
            Family::Cas => "CAS-loop counter through a class fence",
            Family::PcClass => "producer/consumer mailbox class",
            Family::PcDeep => "producer/consumer under deep scope nesting (FSS overflow)",
            Family::Regression => "minimized sfence-fuzz divergence (fixed registry ids)",
        }
    }
}

/// One concrete scenario: a family instance at a seed, optionally
/// with every fence stripped (the differential runner's
/// "fence-removed" configuration).
#[derive(Debug, Clone, Copy)]
pub struct LitmusSpec {
    pub family: Family,
    pub seed: u64,
    /// Emit no fences at all. Class methods lose their fences too, so
    /// no class is instrumented and no scope markers are emitted.
    pub strip_fences: bool,
}

impl LitmusSpec {
    pub fn new(family: Family, seed: u64) -> Self {
        LitmusSpec {
            family,
            seed,
            strip_fences: false,
        }
    }

    pub fn stripped(mut self) -> Self {
        self.strip_fences = true;
        self
    }

    /// The registry name, `litmus/<family>/<seed>`.
    pub fn name(&self) -> String {
        scenario_name(self.family, self.seed)
    }
}

/// The one family-listing renderer shared by `sfence-litmus
/// --list-families` and `sfence-sweep --list`: one aligned row per
/// family (name cell via `render_name`, coverage, description).
pub fn family_listing(render_name: impl Fn(Family) -> String) -> String {
    let rows: Vec<(String, &'static str, &'static str)> = FAMILIES
        .iter()
        .map(|&f| {
            (
                render_name(f),
                if f.covering() {
                    "covering"
                } else {
                    "non-covering"
                },
                f.description(),
            )
        })
        .collect();
    let width = rows.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    rows.into_iter()
        .map(|(n, c, d)| format!("  {n:<width$} {c:<12} {d}\n"))
        .collect()
}

/// The registry name of a scenario.
pub fn scenario_name(family: Family, seed: u64) -> String {
    format!("{LITMUS_PREFIX}{}/{seed}", family.name())
}

/// Parse a `litmus/<family>/<seed>` registry name. Regression ids
/// (unlike seeds) are bounds-checked against the registry, so
/// `exists` answers honestly for `litmus/regression/<id>`.
pub fn parse_name(name: &str) -> Option<(Family, u64)> {
    let rest = name.strip_prefix(LITMUS_PREFIX)?;
    let (family, seed) = rest.rsplit_once('/')?;
    let family = Family::from_name(family)?;
    let seed: u64 = seed.parse().ok()?;
    if family == Family::Regression && crate::synth::regression(seed).is_none() {
        return None;
    }
    Some((family, seed))
}

/// The fence emitted at each ordering point of a skeleton.
#[derive(Clone)]
enum FenceAt {
    None,
    Full,
    Set(Vec<Global>),
}

impl FenceAt {
    fn emit(&self, b: &mut BlockBuilder) {
        match self {
            FenceAt::None => {}
            FenceAt::Full => b.fence(),
            FenceAt::Set(vars) => b.fence_set(vars),
        }
    }
}

/// Seed-derived knobs, all drawn up front. `filler_units[t]` is the
/// amount of private warm-up work thread `t` performs; `values` are
/// the (nonzero) data values the skeleton publishes.
struct Knobs {
    filler_units: Vec<usize>,
    values: Vec<i64>,
    /// Items for `pc`, iterations for `cas`, wrapper depth for
    /// `pc-deep`.
    count: usize,
}

impl Knobs {
    fn new(family: Family, seed: u64, threads: usize, values: usize) -> Self {
        let idx = FAMILIES.iter().position(|&f| f == family).unwrap() as u64;
        let mut rng = Prng::seed_from_u64(seed.wrapping_mul(1_000_003).wrapping_add(idx));
        // Draw order is fixed: counts, then filler, then values —
        // never reorder these without regenerating goldens.
        let count = rng.gen_range(0..64);
        let filler_units = (0..threads).map(|_| rng.gen_range(0..4)).collect();
        let values = (0..values)
            .map(|_| 1 + (rng.next_u64() % 97) as i64)
            .collect();
        Knobs {
            filler_units,
            values,
            count,
        }
    }
}

/// Emit `units` chunks of private filler work: a dependent arithmetic
/// chain plus a private store per chunk. Varies the instruction
/// stream and store-buffer pressure without touching the racy
/// skeleton.
fn emit_filler(b: &mut BlockBuilder, scratch: Global, tid: usize, units: usize) {
    b.let_("fil", c(tid as i64 * 7919 + 12345));
    for k in 0..units {
        b.assign(
            "fil",
            l("fil")
                .mul(c(6364136223846793005))
                .add(c(1442695040888963407 + tid as i64)),
        );
        b.store(scratch.at(c((k % WORDS_PER_LINE) as i64)), l("fil"));
    }
}

/// Build the IR of a scenario. Exposed so checkers and tests can
/// compile with custom options.
pub fn ir(spec: &LitmusSpec) -> IrProgram {
    let strip = spec.strip_fences;
    match spec.family {
        Family::Mp | Family::MpSet | Family::MpWrongSet => mp(spec.family, spec.seed, strip),
        Family::Sb | Family::SbSet | Family::SbWrongSet => sb(spec.family, spec.seed, strip),
        Family::SbClass | Family::SbClassWrong => sb_class(spec.family, spec.seed, strip),
        Family::Iriw => iriw(spec.seed, strip),
        Family::Cas => cas(spec.seed, strip),
        Family::PcClass => pc(Family::PcClass, spec.seed, strip),
        Family::PcDeep => pc(Family::PcDeep, spec.seed, strip),
        Family::Regression => {
            let synth = crate::synth::regression(spec.seed)
                .unwrap_or_else(|| panic!("regression id {} not registered", spec.seed));
            crate::synth::ir(&synth, strip)
        }
    }
}

/// Build a scenario into a registry workload. The invariant check
/// asserts completion only: relaxed final states are legitimate
/// observations here — SC-membership verdicts are the litmus
/// differential runner's job, not the workload's.
pub fn build(spec: &LitmusSpec) -> BuiltWorkload {
    let program = ir(spec)
        .compile(&CompileOpts::default())
        .expect("litmus scenario must compile");
    BuiltWorkload {
        name: spec.name(),
        program,
        check: Box::new(|_, _| Ok(())),
    }
}

/// Build by registry name (`litmus/<family>/<seed>`); used by
/// `catalog::build`.
pub fn build_named(name: &str) -> Option<BuiltWorkload> {
    let (family, seed) = parse_name(name)?;
    Some(build(&LitmusSpec::new(family, seed)))
}

// ---------------------------------------------------------------------
// Skeletons

/// Message passing: producer publishes `data` then `flag`; the
/// consumer spins on `flag` and then reads `data`. SC admits only
/// `[v]`. The producer warms the flag line first so its drain is a
/// fast upgrade while the data store drains cold — the relaxed
/// machine reorders the drains unless a covering fence intervenes.
fn mp(family: Family, seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(family, seed, 2, 1);
    let mut p = IrProgram::new();
    let data = p.shared_line("data");
    let flag = p.shared_line("flag");
    let dummy = p.shared_line("dummy");
    let obs = p.observer("data");
    let scratch0 = p.global_line("scratch0");
    let v = k.values[0];
    let fence = if strip {
        FenceAt::None
    } else {
        match family {
            Family::Mp => FenceAt::Full,
            Family::MpSet => FenceAt::Set(vec![data, flag]),
            Family::MpWrongSet => FenceAt::Set(vec![dummy]),
            _ => unreachable!(),
        }
    };
    let pf = fence.clone();
    let units = k.filler_units.clone();
    p.thread(move |b| {
        b.let_("warm", ld(flag.cell()));
        emit_filler(b, scratch0, 0, units[0]);
        b.store(data.cell(), c(v));
        pf.emit(b);
        b.store(flag.cell(), c(1));
        b.halt();
    });
    p.thread(move |b| {
        b.spin_until(ld(flag.cell()).eq(c(1)));
        fence.emit(b);
        b.store(obs.cell(), ld(data.cell()));
        b.halt();
    });
    p
}

/// Store buffering: each thread publishes its flag and then reads the
/// other's. SC forbids both reads returning 0. Both flag lines are
/// pre-warmed in both cores so the loads hit in L1 and bind before
/// either store drains.
fn sb(family: Family, seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(family, seed, 2, 2);
    let mut p = IrProgram::new();
    let f0 = p.shared_line("flag0");
    let f1 = p.shared_line("flag1");
    let dummy = p.shared_line("dummy");
    let r0 = p.observer("r0");
    let r1 = p.observer("r1");
    let fence = if strip {
        FenceAt::None
    } else {
        match family {
            Family::Sb => FenceAt::Full,
            Family::SbSet => FenceAt::Set(vec![f0, f1]),
            Family::SbWrongSet => FenceAt::Set(vec![dummy]),
            _ => unreachable!(),
        }
    };
    for (mine, theirs, val, out, tid) in [
        (f0, f1, k.values[0], r0, 0usize),
        (f1, f0, k.values[1], r1, 1),
    ] {
        let fence = fence.clone();
        let scratch = p.global_line(&format!("scratch{tid}"));
        let units = k.filler_units[tid];
        p.thread(move |b| {
            b.let_("w0", ld(f0.cell()));
            b.let_("w1", ld(f1.cell()));
            emit_filler(b, scratch, tid, units);
            b.store(mine.cell(), c(val));
            fence.emit(b);
            b.store(out.cell(), ld(theirs.cell()));
            b.halt();
        });
    }
    p
}

/// Store buffering through a class scope. `SbClass` keeps both racy
/// accesses inside the method (covered); `SbClassWrong` performs the
/// racy store in the thread body *before* the call, so the class
/// fence has no prior in-scope access to wait for and the load runs
/// ahead of the store's drain.
fn sb_class(family: Family, seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(family, seed, 2, 2);
    let mut p = IrProgram::new();
    let f0 = p.shared_line("flag0");
    let f1 = p.shared_line("flag1");
    let r0 = p.observer("r0");
    let r1 = p.observer("r1");
    let covered = family == Family::SbClass;
    let cls = p.class("Sync");
    if covered {
        // store mine; class fence; return load of theirs.
        p.method(cls, "sig", &["mine", "val"], move |b| {
            b.if_else(
                l("mine").eq(c(0)),
                move |t| t.store(f0.cell(), l("val")),
                move |e| e.store(f1.cell(), l("val")),
            );
            if !strip {
                b.fence_class();
            }
            b.if_else(
                l("mine").eq(c(0)),
                move |t| t.ret(Some(ld(f1.cell()))),
                move |e| e.ret(Some(ld(f0.cell()))),
            );
        });
    } else {
        // Only fence + load inside the class; the store stays
        // outside, so the fence's scope never covers it.
        p.method(cls, "check", &["mine"], move |b| {
            if !strip {
                b.fence_class();
            }
            b.if_else(
                l("mine").eq(c(0)),
                move |t| t.ret(Some(ld(f1.cell()))),
                move |e| e.ret(Some(ld(f0.cell()))),
            );
        });
    }
    for (mine_idx, mine, val, out, tid) in [
        (0i64, f0, k.values[0], r0, 0usize),
        (1, f1, k.values[1], r1, 1),
    ] {
        let scratch = p.global_line(&format!("scratch{tid}"));
        let units = k.filler_units[tid];
        p.thread(move |b| {
            b.let_("w0", ld(f0.cell()));
            b.let_("w1", ld(f1.cell()));
            emit_filler(b, scratch, tid, units);
            if covered {
                b.call_ret("r", "Sync::sig", &[c(mine_idx), c(val)]);
            } else {
                b.store(mine.cell(), c(val));
                b.call_ret("r", "Sync::check", &[c(mine_idx)]);
            }
            b.store(out.cell(), l("r"));
            b.halt();
        });
    }
    p
}

/// IRIW: two writers, two readers reading in opposite orders with a
/// fence between their loads. SC forbids the readers disagreeing on
/// the order of the writes.
fn iriw(seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(Family::Iriw, seed, 4, 2);
    let mut p = IrProgram::new();
    let x = p.shared_line("x");
    let y = p.shared_line("y");
    let oa = p.observer("a");
    let ob = p.observer("b");
    let oc = p.observer("c");
    let od = p.observer("d");
    let vx = k.values[0];
    let vy = k.values[1];
    p.thread(move |b| {
        b.store(x.cell(), c(vx));
        b.halt();
    });
    p.thread(move |b| {
        b.store(y.cell(), c(vy));
        b.halt();
    });
    for (first, second, out1, out2, tid) in [(x, y, oa, ob, 2usize), (y, x, oc, od, 3)] {
        let scratch = p.global_line(&format!("scratch{tid}"));
        let units = k.filler_units[tid];
        p.thread(move |b| {
            emit_filler(b, scratch, tid, units);
            b.let_("p", ld(first.cell()));
            if !strip {
                b.fence();
            }
            b.let_("q", ld(second.cell()));
            b.store(out1.cell(), l("p"));
            b.store(out2.cell(), l("q"));
            b.halt();
        });
    }
    p
}

/// Two threads CAS-increment a shared counter `iters` times each
/// through a class method. The only SC-allowed final counter value is
/// `2 * iters`; anything else means a lost update (an atomicity bug,
/// not a fence-scope property — this family pins CAS semantics).
fn cas(seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(Family::Cas, seed, 2, 0);
    let iters = 1 + (k.count % 2) as i64; // 1..=2 per thread
    let mut p = IrProgram::new();
    let ctr = p.shared_observer("ctr");
    let cls = p.class("Counter");
    p.method(cls, "inc", &[], move |b| {
        b.let_("ok", c(0));
        b.while_(l("ok").eq(c(0)), move |w| {
            w.let_("cur", ld(ctr.cell()));
            w.cas("ok", ctr.cell(), l("cur"), l("cur").add(c(1)));
        });
        if !strip {
            b.fence_class();
        }
    });
    for tid in 0..2usize {
        let scratch = p.global_line(&format!("scratch{tid}"));
        let units = k.filler_units[tid];
        p.thread(move |b| {
            emit_filler(b, scratch, tid, units);
            b.let_("i", c(0));
            b.while_(l("i").lt(c(iters)), move |w| {
                w.call("Counter::inc", &[]);
                w.assign("i", l("i").add(c(1)));
            });
            b.halt();
        });
    }
    p
}

/// Producer/consumer mailbox: the producer fills `items` slots and
/// publishes the count under a class fence; the consumer spins on the
/// count and reads the last slot under the same class's fence. For
/// [`Family::PcDeep`] the producer call goes through a seed-varied
/// stack of instrumented wrapper classes, nesting scopes deep enough
/// to overflow the FSS (degrading the inner fences to full fences —
/// which must preserve the outcome).
fn pc(family: Family, seed: u64, strip: bool) -> IrProgram {
    let k = Knobs::new(family, seed, 2, 3);
    let items = 1 + k.count % 3; // 1..=3 slots
    let depth = match family {
        Family::PcDeep => 3 + (k.count / 3) % 4, // 3..=6 wrappers
        _ => 0,
    };
    let mut p = IrProgram::new();
    let slots = p.shared_array("slots", items * WORDS_PER_LINE);
    let count = p.shared_line("count");
    let obs = p.observer("last");
    let vals: Vec<i64> = k.values[..items].to_vec();
    let cls = p.class("Mailbox");
    {
        let vals = vals.clone();
        p.method(cls, "put", &[], move |b| {
            for (i, &v) in vals.iter().enumerate() {
                b.store(slots.at(c((i * WORDS_PER_LINE) as i64)), c(v));
            }
            if !strip {
                b.fence_class();
            }
            b.store(count.cell(), c(items as i64));
        });
    }
    p.method(cls, "get", &[], move |b| {
        b.spin_until(ld(count.cell()).eq(c(items as i64)));
        if !strip {
            b.fence_class();
        }
        b.ret(Some(ld(slots.at(c(((items - 1) * WORDS_PER_LINE) as i64)))));
    });
    // Wrapper classes W0..W{depth-1}: W_i::call invokes the next
    // level; each carries a (cheap) class fence so it is instrumented
    // and pushes a scope of its own.
    for d in 0..depth {
        let cd = p.class(&format!("W{d}"));
        let inner = if d + 1 == depth {
            "Mailbox::put".to_string()
        } else {
            format!("W{}::call", d + 1)
        };
        p.method(cd, "call", &[], move |b| {
            if !strip {
                b.fence_class();
            }
            b.call(&inner, &[]);
        });
    }
    let producer_entry = if depth == 0 {
        "Mailbox::put"
    } else {
        "W0::call"
    }
    .to_string();
    let scratch0 = p.global_line("scratch0");
    let units0 = k.filler_units[0];
    p.thread(move |b| {
        b.let_("warm", ld(count.cell()));
        emit_filler(b, scratch0, 0, units0);
        b.call(&producer_entry, &[]);
        b.halt();
    });
    p.thread(move |b| {
        b.call_ret("r", "Mailbox::get", &[]);
        b.store(obs.cell(), l("r"));
        b.halt();
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for family in FAMILIES {
            for seed in [0u64, 7, 123] {
                let name = scenario_name(family, seed);
                assert_eq!(parse_name(&name), Some((family, seed)));
            }
        }
        assert_eq!(parse_name("litmus/nonesuch/3"), None);
        assert_eq!(parse_name("litmus/mp/x"), None);
        assert_eq!(parse_name("dekker"), None);
    }

    #[test]
    fn same_seed_same_program() {
        for family in FAMILIES {
            let a = build(&LitmusSpec::new(family, 42));
            let b = build(&LitmusSpec::new(family, 42));
            assert_eq!(
                a.program.threads,
                b.program.threads,
                "{}: generation must be deterministic",
                family.name()
            );
        }
    }

    #[test]
    fn seeds_vary_the_program() {
        for family in FAMILIES {
            let mut distinct = false;
            let base = build(&LitmusSpec::new(family, 0));
            for seed in 1..8 {
                if build(&LitmusSpec::new(family, seed)).program.threads != base.program.threads {
                    distinct = true;
                    break;
                }
            }
            assert!(distinct, "{}: seeds never vary the program", family.name());
        }
    }

    #[test]
    fn every_family_compiles_and_observes() {
        for family in FAMILIES {
            for seed in 0..3 {
                let w = build(&LitmusSpec::new(family, seed));
                assert!(w.program.validate().is_ok(), "{}", family.name());
                assert!(
                    !w.program.observed_symbols().is_empty(),
                    "{}: no observed locations",
                    family.name()
                );
                let stripped = build(&LitmusSpec::new(family, seed).stripped());
                assert!(stripped.program.validate().is_ok());
            }
        }
    }

    #[test]
    fn stripped_variant_has_no_fences() {
        use sfence_isa::Instr;
        for family in FAMILIES {
            let w = build(&LitmusSpec::new(family, 5).stripped());
            for t in &w.program.threads {
                assert!(
                    !t.iter().any(|i| matches!(
                        i,
                        Instr::Fence { .. } | Instr::FsStart { .. } | Instr::FsEnd { .. }
                    )),
                    "{}: stripped program still fenced",
                    family.name()
                );
            }
        }
    }

    /// A minimized fuzzer finding must rebuild byte-identically from
    /// its registry name, and agree with direct synth emission of the
    /// archived encoding.
    #[test]
    fn regression_scenarios_round_trip_byte_identically() {
        for (i, enc) in crate::synth::REGRESSIONS.iter().enumerate() {
            let i = i as u64;
            let name = scenario_name(Family::Regression, i);
            assert_eq!(parse_name(&name), Some((Family::Regression, i)));
            let a = build_named(&name).expect("registered regression builds");
            let b = build_named(&name).expect("registered regression builds");
            assert_eq!(a.name, name);
            assert_eq!(
                a.program.threads, b.program.threads,
                "{name}: not deterministic"
            );
            let synth = crate::synth::SynthSpec::decode(enc).unwrap();
            let direct = crate::synth::ir(&synth, false)
                .compile(&CompileOpts::default())
                .unwrap();
            assert_eq!(
                a.program.threads, direct.threads,
                "{name}: registry dispatch and direct emission disagree"
            );
            // The stripped variant (the campaign's S-nofence row)
            // must lose every fence and scope marker.
            let stripped = build(&LitmusSpec::new(Family::Regression, i).stripped());
            use sfence_isa::Instr;
            for t in &stripped.program.threads {
                assert!(!t.iter().any(|ins| matches!(
                    ins,
                    Instr::Fence { .. } | Instr::FsStart { .. } | Instr::FsEnd { .. }
                )));
            }
        }
        let out_of_range = crate::synth::REGRESSIONS.len() as u64;
        assert_eq!(
            parse_name(&scenario_name(Family::Regression, out_of_range)),
            None
        );
        assert_eq!(Family::from_name("regression"), Some(Family::Regression));
        assert!(Family::Regression.covering());
        assert!(!FAMILIES.contains(&Family::Regression));
    }
}
