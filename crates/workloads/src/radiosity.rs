//! `radiosity` — a diffuse-radiosity-style kernel used as the paper
//! uses SPLASH-2 radiosity: an irregular task-parallel loop over
//! patch interactions with shared accumulation under per-patch CAS
//! locks, made SC-safe by the delay-set fence-insertion pass with
//! **set scope** (private scratch traffic is never ordered).
//!
//! Energy transfers are constants (`FF[i]`), so the final per-patch
//! energies are exactly checkable on the host: any lost update (a
//! broken lock or a missing release fence) shows up immediately.

use crate::support::{compile, register_barrier, BuiltWorkload};
use sfence_isa::ir::*;
use sfence_isa::passes::{enforce_sc, ScStyle};

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct RadiosityParams {
    pub patches: usize,
    pub interactions: usize,
    pub rounds: usize,
    pub threads: usize,
    pub seed: u64,
    /// Private scratch stores per interaction (the long-latency work).
    pub scratch_work: u32,
    pub style: ScStyle,
}

impl Default for RadiosityParams {
    fn default() -> Self {
        Self {
            patches: 24,
            interactions: 160,
            rounds: 2,
            threads: 4,
            seed: 44,
            scratch_work: 4,
            style: ScStyle::SetScope,
        }
    }
}

/// Host-side interaction list and exact final energies.
fn make_interactions(params: &RadiosityParams) -> (Vec<usize>, Vec<usize>, Vec<i64>, Vec<i64>) {
    let mut rng = crate::support::Prng::seed_from_u64(params.seed);
    let mut src = Vec::with_capacity(params.interactions);
    let mut dst = Vec::with_capacity(params.interactions);
    let mut ff = Vec::with_capacity(params.interactions);
    for _ in 0..params.interactions {
        let s = rng.gen_range(0..params.patches);
        let mut d = rng.gen_range(0..params.patches);
        if d == s {
            d = (d + 1) % params.patches;
        }
        src.push(s);
        dst.push(d);
        ff.push(rng.gen_range(1..100) as i64);
    }
    let mut energy = vec![100i64; params.patches];
    for r in 0..params.rounds {
        let _ = r;
        for i in 0..params.interactions {
            energy[dst[i]] += ff[i];
        }
    }
    (src, dst, ff, energy)
}

/// Build the radiosity benchmark.
pub fn build(params: RadiosityParams) -> BuiltWorkload {
    let threads = params.threads;
    let np = params.patches;
    let ni = params.interactions;
    let (src, dst, ff, expected) = make_interactions(&params);

    let mut p = IrProgram::new();
    register_barrier(&mut p);
    let energy = p.shared_array("ENERGY", np * 8); // line-padded
    let lock = p.shared_array("LOCK", np * 8);
    let work_idx = p.shared_line("WORK_IDX");
    // Read-only interaction tables: not conflicting, declared private
    // so the delay-set pass leaves them unordered (paper: read-only
    // data is never flagged).
    let src_g = p.array("SRC", ni);
    let dst_g = p.array("DST", ni);
    let ff_g = p.array("FF", ni);
    let scratch = p.array("SCRATCH", threads * 4096);
    for i in 0..ni {
        p.init_elem(src_g, i, src[i] as i64);
        p.init_elem(dst_g, i, dst[i] as i64);
        p.init_elem(ff_g, i, ff[i]);
    }
    for j in 0..np {
        p.init_elem(energy, j * 8, 100);
    }

    for t in 0..threads {
        let rounds = params.rounds;
        let scratch_work = params.scratch_work;
        p.thread(move |b| {
            b.let_("bar_sense", c(1));
            b.let_("sc_cur", c((t * 4096) as i64));
            b.let_("round", c(0));
            b.while_(l("round").lt(c(rounds as i64)), move |w| {
                let bound = move |r: Expr| r.add(c(1)).mul(c(ni as i64));
                w.loop_(move |grab| {
                    // idx = fetch-and-increment WORK_IDX, bounded by
                    // this round's share.
                    grab.let_("idx", ld(work_idx.cell()));
                    grab.if_(l("idx").ge(bound(l("round"))), |x| x.break_());
                    grab.cas("got", work_idx.cell(), l("idx"), l("idx").add(c(1)));
                    grab.if_(l("got").eq(c(0)), |x| x.continue_());
                    grab.let_("i", l("idx").rem(c(ni as i64)));
                    grab.let_("s", ld(src_g.at(l("i"))));
                    grab.let_("d", ld(dst_g.at(l("i"))));
                    grab.let_("de", ld(ff_g.at(l("i"))));
                    // Private long-latency work: read the source
                    // energy, mix into scratch lines.
                    grab.let_("mix", ld(energy.at(l("s").mul(c(8)))));
                    grab.let_("k", c(0));
                    grab.while_(l("k").lt(c(scratch_work as i64)), move |sw| {
                        sw.assign("mix", l("mix").mul(c(2654435761)).add(l("k")));
                        sw.store(
                            scratch
                                .at(c((t * 4096) as i64)
                                    .add(l("mix").bitand(c(4095)).bitand(c(!7)))),
                            l("mix"),
                        );
                        sw.assign("k", l("k").add(c(1)));
                    });
                    // Lock patch d, accumulate, unlock. The SC pass
                    // inserts the fences that make this a correct
                    // acquire/release on the relaxed machine.
                    grab.let_("held", c(0));
                    grab.while_(l("held").eq(c(0)), move |sp| {
                        sp.cas("held", lock.at(l("d").mul(c(8))), c(0), c(1));
                    });
                    grab.store(
                        energy.at(l("d").mul(c(8))),
                        ld(energy.at(l("d").mul(c(8)))).add(l("de")),
                    );
                    grab.store(lock.at(l("d").mul(c(8))), c(0));
                });
                w.call_ret("bar_sense", "barrier", &[c(threads as i64), l("bar_sense")]);
                w.assign("round", l("round").add(c(1)));
            });
            b.halt();
        });
    }

    enforce_sc(&mut p, params.style);

    let program = compile(&p);
    BuiltWorkload {
        name: "radiosity".into(),
        program,
        check: Box::new(move |prog, mem| {
            let e_base = prog.addr_of("ENERGY");
            let l_base = prog.addr_of("LOCK");
            for j in 0..np {
                if mem[l_base + j * 8] != 0 {
                    return Err(format!("lock {j} left held"));
                }
                let got = mem[e_base + j * 8];
                if got != expected[j] {
                    return Err(format!(
                        "patch {j}: energy {got}, expected {} (lost update?)",
                        expected[j]
                    ));
                }
            }
            if mem[prog.addr_of("WORK_IDX")] != (ni * params.rounds) as i64 {
                return Err("work index did not cover all interactions".into());
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 500_000_000;
        cfg
    }

    fn small() -> RadiosityParams {
        RadiosityParams {
            patches: 10,
            interactions: 60,
            rounds: 2,
            threads: 4,
            seed: 11,
            scratch_work: 3,
            style: ScStyle::SetScope,
        }
    }

    #[test]
    fn energies_exact_under_all_configs() {
        let w = build(small());
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn single_thread_exact() {
        let w = build(RadiosityParams {
            threads: 1,
            ..small()
        });
        run(&w, cfg(FenceConfig::SFENCE, 1));
    }

    #[test]
    fn sfence_reduces_fence_stalls() {
        let w = build(RadiosityParams {
            interactions: 100,
            scratch_work: 6,
            ..small()
        });
        let t = run(&w, cfg(FenceConfig::TRADITIONAL, 4));
        let s = run(&w, cfg(FenceConfig::SFENCE, 4));
        assert!(
            s.total_fence_stalls() < t.total_fence_stalls(),
            "S stalls {} must be below T stalls {}",
            s.total_fence_stalls(),
            t.total_fence_stalls()
        );
    }
}
