//! Program-synthesis grammar for the S-Fence fuzzer.
//!
//! The litmus module ([`crate::litmus`]) hand-writes a dozen scenario
//! *families*; this module generalizes them into a small racy-program
//! grammar the coverage-guided fuzzer (`sfence-fuzz`) can synthesize,
//! mutate, minimize and re-emit deterministically:
//!
//! - a [`SynthSpec`] is 1–4 shared cache-line variables, a set-scope
//!   membership mask, and 1–4 straight-line threads of [`SynthOp`]s
//!   (stores, observed loads, the three fence flavours, class-scope
//!   region brackets, and private filler work);
//! - [`SynthSpec::encode`]/[`SynthSpec::decode`] give every spec a
//!   compact printable name, registered in the workload catalog as
//!   `fuzz/<encoded>` so corpus entries flow through the `Backend`
//!   trait, the result cache and `sfence-dist` job specs unchanged;
//! - [`SynthSpec::covering`] is a conservative static analysis that
//!   decides whether every racy pair is ordered by an *in-scope*
//!   fence on correct S-Fence hardware (the fuzzer's SC expectation
//!   for the scoped rows), and [`SynthSpec::fenced_traditional`] the
//!   same under traditional fences (scopes widened to full);
//! - [`mutate`] applies the fuzzer's mutation operators (splice,
//!   insert/delete, scope permutation, covering↔non-covering set
//!   swaps, region deepening past FSS capacity) using the
//!   deterministic [`Prng`];
//! - [`REGRESSIONS`] archives minimized divergences found by the
//!   fuzzer; `litmus/regression/<id>` scenarios re-emit them forever
//!   in every campaign.
//!
//! ## Soundness of the covering analysis
//!
//! The machine (RMO store buffer, OOO execution) can reorder
//! store→store (out-of-order drain), store→load (buffered store
//! bypassed by a later load) and load→load (a younger load binding
//! early). It can never make a *store* visible before an older
//! *load* completes: stores drain after retirement and loads bind
//! before it. So each adjacent pair of same-thread shared accesses
//! except load→store needs an ordering fence between the two, and a
//! fence orders the pair iff the earlier access is in its scope:
//!
//! - a full fence always is;
//! - a class fence covers accesses issued inside its innermost
//!   enclosing region (nested ops flag all outer FSB columns, and
//!   FSS overflow degrades the fence to full — strictly stronger);
//!   outside any region it *compiles* to a full fence;
//! - a set fence covers accesses to variables in the program's set
//!   union (the compiler flags exactly those).
//!
//! If every such pair is ordered, per-thread completion order equals
//! program order and every execution is sequentially consistent, so
//! `covering()` specs must stay inside the SC enumerator's state set
//! on correct hardware — any escape is a hardware (or injected) bug.

use crate::support::{compile, BuiltWorkload, Prng};
use sfence_isa::ir::{c, l, ld, BlockBuilder, Class, Global, IrProgram};
use sfence_isa::WORDS_PER_LINE;

/// Catalog namespace for encoded synthesized programs.
pub const SYNTH_PREFIX: &str = "fuzz/";

/// Grammar bounds: they keep candidates small enough for the SC
/// enumerator to close over and give every field a single encoded
/// digit.
pub const MAX_VARS: u8 = 4;
/// Distinct class-scope ids (`C0`..`C3`).
pub const MAX_CLASSES: u8 = 4;
/// Threads per candidate.
pub const MAX_THREADS: usize = 4;
/// Ops per thread (region brackets included).
pub const MAX_OPS_PER_THREAD: usize = 16;
/// Region nesting depth — deliberately deeper than the default FSS
/// capacity so mutations can push past it.
pub const MAX_DEPTH: usize = 4;

/// One grammar token. Threads are straight-line sequences; region
/// brackets must balance (checked by [`SynthSpec::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthOp {
    /// Enter a class-scope region of class `C<id>` (a method call on
    /// an instrumented class after emission).
    Begin(u8),
    /// Leave the innermost region.
    End,
    /// Store the (nonzero, single-digit) value to a shared variable.
    Store(u8, u8),
    /// Load a shared variable into a fresh observer cell.
    Load(u8),
    /// Traditional full fence.
    FenceFull,
    /// `S-FENCE[class]` — full fence when emitted outside a region.
    FenceClass,
    /// `S-FENCE[set]` over the spec's [`SynthSpec::set_vars`] mask.
    FenceSet,
    /// Private filler arithmetic + store (timing perturbation only).
    LocalWork(u8),
}

/// A synthesized racy program: the fuzzer's genome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SynthSpec {
    /// Number of shared single-line variables `x0..`.
    pub vars: u8,
    /// Bitmask over `vars`: members of the set scope named by every
    /// [`SynthOp::FenceSet`] (the compiler flags accesses to the
    /// union, so one program-wide mask is the faithful model).
    pub set_vars: u8,
    /// One op sequence per thread.
    pub threads: Vec<Vec<SynthOp>>,
}

fn digit(b: u8) -> Option<u8> {
    (b as char).to_digit(16).map(|d| d as u8)
}

impl SynthSpec {
    /// Compact printable encoding, the spec's identity: header
    /// `v<vars>m<set-mask-hex>:` then threads joined by `~`, ops as
    /// `(<class>`, `)`, `s<var><val>`, `l<var>`, `f` (full), `c`
    /// (class), `z` (set), `w<units>`.
    pub fn encode(&self) -> String {
        let mut s = format!("v{}m{:x}:", self.vars, self.set_vars);
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                s.push('~');
            }
            for op in t {
                match op {
                    SynthOp::Begin(cl) => {
                        s.push('(');
                        s.push(char::from_digit(*cl as u32, 16).unwrap());
                    }
                    SynthOp::End => s.push(')'),
                    SynthOp::Store(v, val) => {
                        s.push('s');
                        s.push(char::from_digit(*v as u32, 16).unwrap());
                        s.push(char::from_digit(*val as u32, 16).unwrap());
                    }
                    SynthOp::Load(v) => {
                        s.push('l');
                        s.push(char::from_digit(*v as u32, 16).unwrap());
                    }
                    SynthOp::FenceFull => s.push('f'),
                    SynthOp::FenceClass => s.push('c'),
                    SynthOp::FenceSet => s.push('z'),
                    SynthOp::LocalWork(n) => {
                        s.push('w');
                        s.push(char::from_digit(*n as u32, 16).unwrap());
                    }
                }
            }
        }
        s
    }

    /// Inverse of [`Self::encode`]; `None` on malformed or
    /// out-of-bounds input (never panics — registry names come from
    /// the command line).
    pub fn decode(s: &str) -> Option<SynthSpec> {
        let b = s.as_bytes();
        if b.len() < 5 || b[0] != b'v' || b[2] != b'm' || b[4] != b':' {
            return None;
        }
        let vars = digit(b[1])?;
        let set_vars = digit(b[3])?;
        let mut threads = vec![Vec::new()];
        let mut i = 5;
        while i < b.len() {
            let t = threads.last_mut().unwrap();
            match b[i] {
                b'~' => {
                    threads.push(Vec::new());
                    i += 1;
                }
                b'(' => {
                    t.push(SynthOp::Begin(digit(*b.get(i + 1)?)?));
                    i += 2;
                }
                b')' => {
                    t.push(SynthOp::End);
                    i += 1;
                }
                b's' => {
                    t.push(SynthOp::Store(
                        digit(*b.get(i + 1)?)?,
                        digit(*b.get(i + 2)?)?,
                    ));
                    i += 3;
                }
                b'l' => {
                    t.push(SynthOp::Load(digit(*b.get(i + 1)?)?));
                    i += 2;
                }
                b'f' => {
                    t.push(SynthOp::FenceFull);
                    i += 1;
                }
                b'c' => {
                    t.push(SynthOp::FenceClass);
                    i += 1;
                }
                b'z' => {
                    t.push(SynthOp::FenceSet);
                    i += 1;
                }
                b'w' => {
                    t.push(SynthOp::LocalWork(digit(*b.get(i + 1)?)?));
                    i += 2;
                }
                _ => return None,
            }
        }
        let spec = SynthSpec {
            vars,
            set_vars,
            threads,
        };
        spec.validate().then_some(spec)
    }

    /// Structural well-formedness: bounds, balanced regions within
    /// depth, and at least one observed load (a spec with no
    /// observers has an empty final state and nothing to check).
    pub fn validate(&self) -> bool {
        if self.vars == 0 || self.vars > MAX_VARS || self.set_vars >= 1 << self.vars {
            return false;
        }
        if self.threads.is_empty() || self.threads.len() > MAX_THREADS {
            return false;
        }
        let mut loads = 0usize;
        for t in &self.threads {
            if t.is_empty() || t.len() > MAX_OPS_PER_THREAD {
                return false;
            }
            let mut depth = 0usize;
            for op in t {
                match op {
                    SynthOp::Begin(cl) => {
                        if *cl >= MAX_CLASSES {
                            return false;
                        }
                        depth += 1;
                        if depth > MAX_DEPTH {
                            return false;
                        }
                    }
                    SynthOp::End => {
                        if depth == 0 {
                            return false;
                        }
                        depth -= 1;
                    }
                    SynthOp::Store(v, val) => {
                        if *v >= self.vars || *val == 0 || *val > 9 {
                            return false;
                        }
                    }
                    SynthOp::Load(v) => {
                        if *v >= self.vars {
                            return false;
                        }
                        loads += 1;
                    }
                    SynthOp::LocalWork(n) => {
                        if *n == 0 || *n > 9 {
                            return false;
                        }
                    }
                    SynthOp::FenceFull | SynthOp::FenceClass | SynthOp::FenceSet => {}
                }
            }
            if depth != 0 {
                return false;
            }
        }
        loads > 0
    }

    /// Is every racy pair ordered by an *in-scope* fence under
    /// S-Fence semantics? See the module docs for the soundness
    /// argument. `true` means every execution on correct hardware is
    /// SC — the fuzzer's expectation for the scoped rows.
    pub fn covering(&self) -> bool {
        self.ordered(true)
    }

    /// Same analysis under traditional fences (every fence flavour
    /// widens to full) — the expectation for the `T` row, where a
    /// wrong-scope fence still orders everything.
    pub fn fenced_traditional(&self) -> bool {
        self.ordered(false)
    }

    fn ordered(&self, honor_scopes: bool) -> bool {
        for t in &self.threads {
            let flat = flatten(t);
            let accesses: Vec<usize> = (0..flat.len())
                .filter(|&i| matches!(flat[i].0, SynthOp::Store(..) | SynthOp::Load(_)))
                .collect();
            for pair in accesses.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let (aop, apath) = &flat[a];
                // Stores drain after retirement, loads bind before
                // it: load→store never reorders and needs no fence.
                if matches!(aop, SynthOp::Load(_)) && matches!(flat[b].0, SynthOp::Store(..)) {
                    continue;
                }
                let avar = match aop {
                    SynthOp::Store(v, _) | SynthOp::Load(v) => *v,
                    _ => unreachable!(),
                };
                let covered = flat[a + 1..b].iter().any(|(op, fpath)| match op {
                    SynthOp::FenceFull => true,
                    SynthOp::FenceClass => {
                        !honor_scopes
                            || match fpath.last() {
                                // Covered iff the earlier access ran
                                // inside the fence's innermost region.
                                Some(inst) => apath.contains(inst),
                                // Outside any region this op is
                                // emitted as a full fence.
                                None => true,
                            }
                    }
                    SynthOp::FenceSet => !honor_scopes || (self.set_vars >> avar) & 1 == 1,
                    _ => false,
                });
                if !covered {
                    return false;
                }
            }
        }
        true
    }

    /// Catalog name: `fuzz/<encoded>`.
    pub fn name(&self) -> String {
        format!("{SYNTH_PREFIX}{}", self.encode())
    }
}

/// Flatten one thread's ops, dropping region brackets and tagging
/// every remaining op with its region-instance path (instance ids
/// are unique per thread).
fn flatten(ops: &[SynthOp]) -> Vec<(SynthOp, Vec<usize>)> {
    let mut path = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    for op in ops {
        match op {
            SynthOp::Begin(_) => {
                path.push(next);
                next += 1;
            }
            SynthOp::End => {
                path.pop();
            }
            _ => out.push((*op, path.clone())),
        }
    }
    out
}

/// Parse `litmus/regression/...`-style names in this namespace:
/// `fuzz/<encoded>` → spec.
pub fn parse_name(name: &str) -> Option<SynthSpec> {
    name.strip_prefix(SYNTH_PREFIX).and_then(SynthSpec::decode)
}

/// Build a catalog workload from a `fuzz/<encoded>` name. Synthesized
/// programs carry no structural invariant beyond SC conformance —
/// the differential oracle, not a final-memory check, judges them.
pub fn build_named(name: &str) -> Option<BuiltWorkload> {
    let spec = parse_name(name)?;
    Some(BuiltWorkload {
        name: name.to_string(),
        program: compile(&ir(&spec, false)),
        check: Box::new(|_, _| Ok(())),
    })
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Region tree of one thread (brackets made structural).
enum Node {
    Op(SynthOp),
    Region(u8, Vec<Node>),
}

/// Build the region tree. [`SynthSpec::validate`] guarantees balance;
/// for robustness unmatched brackets are dropped/closed rather than
/// panicking.
fn tree(ops: &[SynthOp]) -> Vec<Node> {
    let mut stack: Vec<(u8, Vec<Node>)> = Vec::new();
    let mut top: Vec<Node> = Vec::new();
    for op in ops {
        match op {
            SynthOp::Begin(cl) => stack.push((*cl, Vec::new())),
            SynthOp::End => {
                if let Some((cl, kids)) = stack.pop() {
                    match stack.last_mut() {
                        Some((_, dst)) => dst.push(Node::Region(cl, kids)),
                        None => top.push(Node::Region(cl, kids)),
                    }
                }
            }
            other => match stack.last_mut() {
                Some((_, dst)) => dst.push(Node::Op(*other)),
                None => top.push(Node::Op(*other)),
            },
        }
    }
    while let Some((cl, kids)) = stack.pop() {
        match stack.last_mut() {
            Some((_, dst)) => dst.push(Node::Region(cl, kids)),
            None => top.push(Node::Region(cl, kids)),
        }
    }
    top
}

/// One lowered statement of a region or thread body.
enum Item {
    Store(Global, i64),
    /// (shared var, observer destination)
    Load(Global, Global),
    FenceFull,
    FenceClass,
    FenceSet,
    /// (unique local name, units, seed)
    Work(String, u8, i64),
    Call(String),
}

struct Lower {
    vars: Vec<Global>,
    set: Vec<Global>,
    classes: [Option<Class>; MAX_CLASSES as usize],
    method_idx: usize,
    work_idx: usize,
}

/// Per-thread lowering context: identity for observer/filler naming
/// plus the thread's private scratch line and the strip flag.
struct ThreadCtx {
    tid: usize,
    obs_idx: usize,
    scratch: Global,
    strip: bool,
}

impl Lower {
    fn lower(
        &mut self,
        p: &mut IrProgram,
        nodes: &[Node],
        ctx: &mut ThreadCtx,
        in_region: bool,
    ) -> Vec<Item> {
        let mut items = Vec::new();
        for node in nodes {
            match node {
                Node::Op(SynthOp::Store(v, val)) => {
                    items.push(Item::Store(self.vars[*v as usize], *val as i64));
                }
                Node::Op(SynthOp::Load(v)) => {
                    let obs = p.observer(&format!("t{}o{}", ctx.tid, ctx.obs_idx));
                    ctx.obs_idx += 1;
                    items.push(Item::Load(self.vars[*v as usize], obs));
                }
                Node::Op(SynthOp::FenceFull) => items.push(Item::FenceFull),
                // A class fence outside any region would not compile
                // (no enclosing class); the scope unit treats an
                // empty-stack class fence as full, so emit exactly
                // that.
                Node::Op(SynthOp::FenceClass) if !in_region => items.push(Item::FenceFull),
                Node::Op(SynthOp::FenceClass) => items.push(Item::FenceClass),
                Node::Op(SynthOp::FenceSet) => items.push(Item::FenceSet),
                Node::Op(SynthOp::LocalWork(n)) => {
                    let name = format!("fil{}", self.work_idx);
                    self.work_idx += 1;
                    items.push(Item::Work(name, *n, ctx.tid as i64 * 7919 + 12345));
                }
                Node::Op(SynthOp::Begin(_)) | Node::Op(SynthOp::End) => unreachable!(),
                Node::Region(cl, kids) => {
                    let inner = self.lower(p, kids, ctx, true);
                    let class = match self.classes[*cl as usize] {
                        Some(class) => class,
                        None => {
                            let class = p.class(&format!("C{cl}"));
                            self.classes[*cl as usize] = Some(class);
                            class
                        }
                    };
                    let mname = format!("m{}", self.method_idx);
                    self.method_idx += 1;
                    let set = self.set.clone();
                    let (scratch, strip) = (ctx.scratch, ctx.strip);
                    p.method(class, &mname, &[], |b| {
                        emit_items(b, &inner, &set, scratch, strip)
                    });
                    items.push(Item::Call(format!("C{cl}::{mname}")));
                }
            }
        }
        items
    }
}

fn emit_items(b: &mut BlockBuilder, items: &[Item], set: &[Global], scratch: Global, strip: bool) {
    for item in items {
        match item {
            Item::Store(g, v) => b.store(g.cell(), c(*v)),
            Item::Load(g, obs) => b.store(obs.cell(), ld(g.cell())),
            Item::FenceFull => {
                if !strip {
                    b.fence()
                }
            }
            Item::FenceClass => {
                if !strip {
                    b.fence_class()
                }
            }
            Item::FenceSet => {
                if !strip {
                    b.fence_set(set)
                }
            }
            Item::Work(name, units, seed) => {
                b.let_(name, c(*seed));
                for k in 0..*units as usize {
                    b.assign(
                        name,
                        l(name)
                            .mul(c(6364136223846793005))
                            .add(c(1442695040888963407 + k as i64)),
                    );
                    b.store(scratch.at(c((k % WORDS_PER_LINE) as i64)), l(name));
                }
            }
            Item::Call(name) => b.call(name, &[]),
        }
    }
}

/// Emit a spec as an IR program. `strip` removes every fence (the
/// campaign's `S-nofence` row): with no class fences left no class is
/// instrumented, so the stripped binary carries no scope markers
/// either — exactly like [`crate::litmus::LitmusSpec::stripped`].
pub fn ir(spec: &SynthSpec, strip: bool) -> IrProgram {
    assert!(spec.validate(), "invalid synth spec {:?}", spec.encode());
    let mut p = IrProgram::new();
    let vars: Vec<Global> = (0..spec.vars)
        .map(|i| p.shared_line(&format!("x{i}")))
        .collect();
    let set: Vec<Global> = (0..spec.vars)
        .filter(|i| (spec.set_vars >> i) & 1 == 1)
        .map(|i| vars[i as usize])
        .collect();
    let mut lower = Lower {
        vars,
        set,
        classes: [None; MAX_CLASSES as usize],
        method_idx: 0,
        work_idx: 0,
    };
    let mut bodies = Vec::new();
    for (tid, ops) in spec.threads.iter().enumerate() {
        let mut ctx = ThreadCtx {
            tid,
            obs_idx: 0,
            scratch: p.global_line(&format!("scratch{tid}")),
            strip,
        };
        let nodes = tree(ops);
        let items = lower.lower(&mut p, &nodes, &mut ctx, false);
        bodies.push((items, ctx.scratch));
    }
    let set = lower.set.clone();
    for (items, scratch) in &bodies {
        p.thread(|b| {
            emit_items(b, items, &set, *scratch, strip);
            b.halt();
        });
    }
    p
}

// ---------------------------------------------------------------------------
// Mutation operators
// ---------------------------------------------------------------------------

/// Draw a random leaf op (never a region bracket).
fn random_op(spec: &SynthSpec, rng: &mut Prng) -> SynthOp {
    let var = rng.gen_range(0..spec.vars as usize) as u8;
    match rng.gen_range(0..6) {
        0 => SynthOp::Store(var, 1 + rng.gen_range(0..9) as u8),
        1 => SynthOp::Load(var),
        2 => SynthOp::FenceFull,
        3 => SynthOp::FenceClass,
        4 => SynthOp::FenceSet,
        _ => SynthOp::LocalWork(1 + rng.gen_range(0..9) as u8),
    }
}

/// Is `ops[i..j]` region-balanced (net depth zero, never negative)?
fn balanced(ops: &[SynthOp]) -> bool {
    let mut depth = 0i32;
    for op in ops {
        match op {
            SynthOp::Begin(_) => depth += 1,
            SynthOp::End => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

/// Pick a random balanced span of a thread (possibly empty).
fn balanced_span(ops: &[SynthOp], rng: &mut Prng) -> Option<(usize, usize)> {
    let i = rng.gen_range(0..ops.len() + 1);
    let j = i + rng.gen_range(0..ops.len() + 1 - i);
    balanced(&ops[i..j]).then_some((i, j))
}

/// Index of the `End` matching the `Begin` at `i` (or the `Begin`
/// matching the `End` at `i`, searching backwards). Public so the
/// fuzzer's delta-minimizer can drop a bracket together with its
/// partner, the same way the delete mutation does.
pub fn matching_bracket(ops: &[SynthOp], i: usize) -> Option<usize> {
    match ops[i] {
        SynthOp::Begin(_) => {
            let mut depth = 0i32;
            for (j, op) in ops.iter().enumerate().skip(i) {
                match op {
                    SynthOp::Begin(_) => depth += 1,
                    SynthOp::End => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        SynthOp::End => {
            let mut depth = 0i32;
            for j in (0..=i).rev() {
                match ops[j] {
                    SynthOp::End => depth += 1,
                    SynthOp::Begin(_) => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        _ => None,
    }
}

/// One mutation step: apply a random operator, retrying until the
/// result validates (falling back to a clone of the input). Fully
/// deterministic in the [`Prng`] state.
pub fn mutate(spec: &SynthSpec, rng: &mut Prng) -> SynthSpec {
    for _ in 0..16 {
        let mut cand = spec.clone();
        let applied = match rng.gen_range(0..9) {
            // Splice: copy a balanced span from one thread into
            // another position.
            0 => {
                let src = rng.gen_range(0..cand.threads.len());
                let dst = rng.gen_range(0..cand.threads.len());
                match balanced_span(&cand.threads[src], rng) {
                    Some((i, j)) if i < j => {
                        let span: Vec<SynthOp> = cand.threads[src][i..j].to_vec();
                        let at = rng.gen_range(0..cand.threads[dst].len() + 1);
                        cand.threads[dst].splice(at..at, span);
                        true
                    }
                    _ => false,
                }
            }
            // Insert a random leaf op.
            1 => {
                let t = rng.gen_range(0..cand.threads.len());
                let at = rng.gen_range(0..cand.threads[t].len() + 1);
                let op = random_op(&cand, rng);
                cand.threads[t].insert(at, op);
                true
            }
            // Delete an op (a bracket takes its partner with it).
            2 => {
                let t = rng.gen_range(0..cand.threads.len());
                let i = rng.gen_range(0..cand.threads[t].len());
                match matching_bracket(&cand.threads[t], i) {
                    Some(j) => {
                        let (lo, hi) = (i.min(j), i.max(j));
                        cand.threads[t].remove(hi);
                        cand.threads[t].remove(lo);
                    }
                    None => {
                        cand.threads[t].remove(i);
                    }
                }
                !cand.threads[t].is_empty()
            }
            // Permute scopes: retarget a region to another class.
            3 => {
                let t = rng.gen_range(0..cand.threads.len());
                let cl = rng.gen_range(0..MAX_CLASSES as usize) as u8;
                let begins: Vec<usize> = (0..cand.threads[t].len())
                    .filter(|&i| matches!(cand.threads[t][i], SynthOp::Begin(_)))
                    .collect();
                match begins.is_empty() {
                    true => false,
                    false => {
                        let i = begins[rng.gen_range(0..begins.len())];
                        cand.threads[t][i] = SynthOp::Begin(cl);
                        true
                    }
                }
            }
            // Swap covering↔non-covering sets: toggle a mask bit.
            4 => {
                cand.set_vars ^= 1 << rng.gen_range(0..cand.vars as usize);
                true
            }
            // Deepen: wrap a balanced span in a fresh region (push
            // class nesting past FSS capacity).
            5 => {
                let t = rng.gen_range(0..cand.threads.len());
                let cl = rng.gen_range(0..MAX_CLASSES as usize) as u8;
                match balanced_span(&cand.threads[t], rng) {
                    Some((i, j)) if i < j => {
                        cand.threads[t].insert(j, SynthOp::End);
                        cand.threads[t].insert(i, SynthOp::Begin(cl));
                        true
                    }
                    _ => false,
                }
            }
            // Tweak a leaf in place.
            6 => {
                let t = rng.gen_range(0..cand.threads.len());
                let i = rng.gen_range(0..cand.threads[t].len());
                let var = rng.gen_range(0..cand.vars as usize) as u8;
                match &mut cand.threads[t][i] {
                    SynthOp::Store(v, val) => {
                        *v = var;
                        *val = 1 + rng.gen_range(0..9) as u8;
                        true
                    }
                    SynthOp::Load(v) => {
                        *v = var;
                        true
                    }
                    SynthOp::LocalWork(n) => {
                        *n = 1 + rng.gen_range(0..9) as u8;
                        true
                    }
                    _ => false,
                }
            }
            // Add a small racy thread.
            7 => {
                let var = rng.gen_range(0..cand.vars as usize) as u8;
                let other = rng.gen_range(0..cand.vars as usize) as u8;
                cand.threads.push(vec![
                    SynthOp::Store(var, 1 + rng.gen_range(0..9) as u8),
                    SynthOp::FenceFull,
                    SynthOp::Load(other),
                ]);
                true
            }
            // Drop a thread.
            _ => match cand.threads.len() > 1 {
                true => {
                    let t = rng.gen_range(0..cand.threads.len());
                    cand.threads.remove(t);
                    true
                }
                false => false,
            },
        };
        if applied && cand.validate() {
            return cand;
        }
    }
    spec.clone()
}

/// The fuzzer's seed corpus: hand-shaped templates spanning the
/// grammar — each litmus archetype (SB, MP, IRIW), each fence
/// flavour, covering and deliberately non-covering scopes, warm-up
/// loads (a load→store prefix is free under the analysis) and
/// FSS-overflow-deep nesting.
pub fn seed_corpus() -> Vec<SynthSpec> {
    [
        // Store buffering, full fences (covering).
        "v2m0:l1s01fl1~l0s11fl0",
        // SB, class fences inside single regions (covering).
        "v2m0:l1(0s01c)l1~l0(1s11c)l0",
        // SB, covering set fences.
        "v2m3:l1s01zl1~l0s11zl0",
        // SB, wrong-scope set fences (fenced under T, not covering).
        "v2m0:s01zl1~s11zl0",
        // SB with nesting past the overflow config's FSS capacity:
        // the degrade-on-overflow path must still order it. Both
        // classes carry a fence (a class with no fence in any method
        // is not instrumented and would never push the FSS).
        "v2m0:l1(0c(1s01c))l1~l0(0c(1s11c))l0",
        // Message passing through a class region, consumer delayed.
        "v2m0:l1(0s05c)s11~w3l1fl0",
        // Unfenced MP (relaxation demo: no expectation anywhere).
        "v2m0:s05s11~l1l0",
        // IRIW: two writers, two fenced readers.
        "v2m0:s01~s11~l0fl1~l1fl0",
        // Deep nesting + set/class mix on three vars.
        "v3m5:l2(0(1(2s01c)s12c))l2~s21fl1",
    ]
    .iter()
    .map(|s| SynthSpec::decode(s).expect("seed template must decode"))
    .collect()
}

// ---------------------------------------------------------------------------
// Regression registry
// ---------------------------------------------------------------------------

/// Minimized divergences harvested by `sfence-fuzz`, re-emitted
/// forever as `litmus/regression/<index>` scenarios by every litmus
/// campaign, sweep and CI job. Every entry must be `covering()` —
/// the campaign expects its scoped rows to stay SC, so a hardware
/// regression that re-breaks the path trips the verdict.
///
/// Provenance of each entry is recorded alongside it; entries are
/// append-only (indices are stable registry names).
pub const REGRESSIONS: &[&str] = &[
    // #0 — found by `sfence-fuzz --inject-bug --minimize` (seed 1):
    // symmetric SB where each store sits in a class region nested
    // past the overflow config's FSS capacity. The degraded class
    // fence must widen to a full fence; the injected
    // `skip_degrade_on_overflow` bug made it wait on nothing, letting
    // both warm loads bind before either store drained (forbidden
    // SB outcome 0/0 on the S-overflow row). The minimizer dropped
    // thread 0's outer `c` — class C0 stays instrumented because its
    // thread-1 method still fences — but kept every warm load: the
    // divergence is timing-real and needs both lines warm.
    "v2m0:l1(0(1s01c))l1~l0(0c(1s11c))l0",
];

/// Decode regression `idx`, if registered.
pub fn regression(idx: u64) -> Option<SynthSpec> {
    let encoded = REGRESSIONS.get(usize::try_from(idx).ok()?)?;
    Some(SynthSpec::decode(encoded).expect("registered regression must decode"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::CompileOpts;
    use sfence_isa::Instr;

    #[test]
    fn seed_corpus_round_trips_and_validates() {
        for spec in seed_corpus() {
            assert!(spec.validate());
            let enc = spec.encode();
            assert_eq!(SynthSpec::decode(&enc).as_ref(), Some(&spec), "{enc}");
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        for bad in [
            "",
            "v2m0:",                  // no ops → no load
            "v2m0:s01",               // no load anywhere
            "v0m0:l0",                // zero vars
            "v2m4:l0",                // set mask out of range
            "v2m0:l3",                // var out of range
            "v2m0:)l0",               // unmatched close
            "v2m0:(0l0",              // unclosed region
            "v2m0:s00l0",             // zero store value
            "v2m0:x",                 // unknown token
            "v2m0:l0~",               // empty thread
            "v2m0:l0~~l1",            // empty middle thread
            "v2m0:(5l0)",             // class out of range
            "v2m0:(0(1(2(3(0l0)))))", // depth past MAX_DEPTH
        ] {
            assert!(SynthSpec::decode(bad).is_none(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn covering_analysis_classifies_the_templates() {
        let cov = |s: &str| SynthSpec::decode(s).unwrap().covering();
        let trad = |s: &str| SynthSpec::decode(s).unwrap().fenced_traditional();

        // Full fences between racy pairs: covered everywhere.
        assert!(cov("v2m0:s01fl1~s11fl0"));
        // No fence at all: neither.
        assert!(!cov("v2m0:s01l1~s11l0"));
        assert!(!trad("v2m0:s01l1~s11l0"));
        // Wrong-scope set fence: ordered under T, not under S.
        assert!(!cov("v2m0:s01zl1~s11zl0"));
        assert!(trad("v2m0:s01zl1~s11zl0"));
        // Matching set fence: covered.
        assert!(cov("v2m3:s01zl1~s11zl0"));
        // Class fence whose region contains the store: covered.
        assert!(cov("v2m0:(0s01c)l1~s11fl0"));
        // Class fence in a region that does NOT contain the store.
        assert!(!cov("v2m0:s01(0c)l1~s11fl0"));
        assert!(trad("v2m0:s01(0c)l1~s11fl0"));
        // Class fence outside any region is a full fence.
        assert!(cov("v2m0:s01cl1~s11cl0"));
        // Warm-up load before a store needs no fence (load→store
        // never reorders) …
        assert!(cov("v2m0:l1s01fl1~l0s11fl0"));
        // … but load→load does.
        assert!(!cov("v2m0:l1l0~s01fl1"));
        // Deep nesting: fence's innermost region contains the store.
        assert!(cov("v2m0:l1(0(1s01c))l1~l0(0(1s11c))l0"));
    }

    #[test]
    fn emission_compiles_and_observes_both_variants() {
        for spec in seed_corpus() {
            for strip in [false, true] {
                let prog = ir(&spec, strip)
                    .compile(&CompileOpts::default())
                    .unwrap_or_else(|e| panic!("{}: {e:?}", spec.encode()));
                assert!(
                    !prog.observed_symbols().is_empty(),
                    "{}: no observers",
                    spec.encode()
                );
                if strip {
                    for t in &prog.threads {
                        for instr in t {
                            assert!(
                                !matches!(
                                    instr,
                                    Instr::Fence { .. }
                                        | Instr::FsStart { .. }
                                        | Instr::FsEnd { .. }
                                ),
                                "{}: stripped variant still carries {instr:?}",
                                spec.encode()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn emission_is_deterministic() {
        let spec = &seed_corpus()[4];
        let a = ir(spec, false).compile(&CompileOpts::default()).unwrap();
        let b = ir(spec, false).compile(&CompileOpts::default()).unwrap();
        assert_eq!(a.threads, b.threads);
    }

    #[test]
    fn mutation_is_deterministic_and_valid() {
        let corpus = seed_corpus();
        for seed in 0..8u64 {
            let mut r1 = Prng::seed_from_u64(seed);
            let mut r2 = Prng::seed_from_u64(seed);
            for spec in &corpus {
                let a = mutate(spec, &mut r1);
                let b = mutate(spec, &mut r2);
                assert_eq!(a, b, "mutation must be a pure function of the PRNG");
                assert!(a.validate(), "mutant must validate: {}", a.encode());
            }
        }
    }

    #[test]
    fn mutations_reach_every_operator() {
        // Drive enough steps that each operator class fires and the
        // population stays structurally valid.
        let mut rng = Prng::seed_from_u64(7);
        let mut pool = seed_corpus();
        for i in 0..200 {
            let parent = pool[i % pool.len()].clone();
            let child = mutate(&parent, &mut rng);
            assert!(child.validate());
            pool.push(child);
        }
        // At least one mutant must differ from every seed (the
        // operators actually move the genome).
        let seeds = seed_corpus();
        assert!(pool.iter().any(|s| !seeds.contains(s)));
    }

    #[test]
    fn regressions_decode_and_are_covering() {
        assert!(!REGRESSIONS.is_empty());
        for (i, enc) in REGRESSIONS.iter().enumerate() {
            let spec = regression(i as u64).expect("registered regression");
            assert_eq!(&spec.encode(), enc, "registry stores canonical encodings");
            assert!(spec.covering(), "regression #{i} must be covering");
            assert!(spec.fenced_traditional());
        }
        assert!(regression(REGRESSIONS.len() as u64).is_none());
    }
}
