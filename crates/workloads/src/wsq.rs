//! `wsq` — the Chase–Lev work-stealing deque (paper Fig. 2), with
//! **class scope**: the `storestore` fence in `put` and the
//! `storeload` fence in `take` only order the queue's own variables.
//!
//! The queue is registered as a class whose methods take a queue index
//! `q`, so one registration serves both the Fig. 12 harness (one
//! queue, one owner, thieves) and the full applications `pst`/`ptc`
//! (one queue per thread).

use crate::support::{
    compile, declare_padding, declare_padding_locals, emit_padding, BuiltWorkload, ScopeMode,
};
use sfence_isa::ir::*;

/// Handles to the queue's storage.
#[derive(Debug, Clone, Copy)]
pub struct Wsq {
    /// `HEAD[q * 8]` — head indices, line-padded per queue.
    pub heads: Global,
    /// `TAIL[q * 8]` — tail indices, line-padded per queue.
    pub tails: Global,
    /// `BUF[q * cap + (i & (cap-1))]` — the cyclic arrays.
    pub buf: Global,
    pub cap: usize,
}

/// Task value returned by `take`/`steal` for an empty queue.
pub const EMPTY: i64 = 0;
/// Task value returned by `steal` when its CAS lost a race.
pub const ABORT: i64 = -1;

/// Register the `Wsq` class (methods `Wsq::put`, `Wsq::take`,
/// `Wsq::steal`) for `nq` queues of capacity `cap` (power of two).
/// Tasks must be positive.
pub fn register(p: &mut IrProgram, nq: usize, cap: usize, mode: ScopeMode) -> Wsq {
    assert!(cap.is_power_of_two());
    let heads = p.shared_array("WSQ_HEAD", nq * 8);
    let tails = p.shared_array("WSQ_TAIL", nq * 8);
    let buf = p.shared_array("WSQ_BUF", nq * cap);
    let cls = p.class("Wsq");
    let mask = (cap - 1) as i64;
    let capi = cap as i64;

    let fence = move |b: &mut BlockBuilder| match mode {
        ScopeMode::Class => b.fence_class(),
        ScopeMode::Set => b.fence_set(&[heads, tails, buf]),
    };

    // put(q, task) — Fig. 2 lines 1-6.
    p.method(cls, "put", &["q", "task"], move |b| {
        b.let_("tail", ld(tails.at(l("q").mul(c(8)))));
        b.store(
            buf.at(l("q").mul(c(capi)).add(l("tail").bitand(c(mask)))),
            l("task"),
        );
        fence(b); // storestore: task visible before TAIL moves
        b.store(tails.at(l("q").mul(c(8))), l("tail").add(c(1)));
    });

    // take(q) — Fig. 2 lines 7-25.
    p.method(cls, "take", &["q"], move |b| {
        b.let_("tail", ld(tails.at(l("q").mul(c(8)))).sub(c(1)));
        b.store(tails.at(l("q").mul(c(8))), l("tail"));
        fence(b); // storeload: TAIL store vs HEAD load
        b.let_("head", ld(heads.at(l("q").mul(c(8)))));
        b.if_(l("tail").lt(l("head")), move |t| {
            t.store(tails.at(l("q").mul(c(8))), l("head"));
            t.ret(Some(c(EMPTY)));
        });
        b.let_(
            "task",
            ld(buf.at(l("q").mul(c(capi)).add(l("tail").bitand(c(mask))))),
        );
        b.if_(l("tail").gt(l("head")), |t| {
            t.ret(Some(l("task")));
        });
        // Last element: race against thieves.
        b.store(tails.at(l("q").mul(c(8))), l("head").add(c(1)));
        b.cas(
            "won",
            heads.at(l("q").mul(c(8))),
            l("head"),
            l("head").add(c(1)),
        );
        b.if_(l("won").eq(c(0)), |t| {
            t.ret(Some(c(EMPTY)));
        });
        b.store(tails.at(l("q").mul(c(8))), l("tail").add(c(1)));
        b.ret(Some(l("task")));
    });

    // steal(q) — Fig. 2 lines 26-36 (plus the RMO head->tail fence).
    p.method(cls, "steal", &["q"], move |b| {
        b.let_("head", ld(heads.at(l("q").mul(c(8)))));
        fence(b); // loadload under RMO: head before tail
        b.let_("tail", ld(tails.at(l("q").mul(c(8)))));
        b.if_(l("head").ge(l("tail")), |t| {
            t.ret(Some(c(EMPTY)));
        });
        b.let_(
            "task",
            ld(buf.at(l("q").mul(c(capi)).add(l("head").bitand(c(mask))))),
        );
        b.cas(
            "won",
            heads.at(l("q").mul(c(8))),
            l("head"),
            l("head").add(c(1)),
        );
        b.if_(l("won").eq(c(0)), |t| {
            t.ret(Some(c(ABORT)));
        });
        b.ret(Some(l("task")));
    });

    Wsq {
        heads,
        tails,
        buf,
        cap,
    }
}

/// Parameters for the Fig. 12 wsq harness.
#[derive(Debug, Clone, Copy)]
pub struct WsqParams {
    /// Tasks the owner puts.
    pub tasks: u32,
    /// Thief threads (total threads = thieves + 1).
    pub thieves: usize,
    /// Fig. 12 workload level.
    pub workload: u32,
    pub scope: ScopeMode,
}

impl Default for WsqParams {
    fn default() -> Self {
        Self {
            tasks: 120,
            thieves: 3,
            workload: 3,
            scope: ScopeMode::Class,
        }
    }
}

/// Build the wsq benchmark: one owner `put`s tasks 1..=N (with private
/// workload between operations) and periodically `take`s; thieves
/// `steal` until the owner drains the queue and raises `DONE`.
///
/// Invariant: every task is consumed exactly once — checked via the
/// count, sum and sum-of-squares of consumed task ids.
pub fn build(params: WsqParams) -> BuiltWorkload {
    let threads = params.thieves + 1;
    let n = params.tasks;
    let cap = (n as usize).next_power_of_two().max(8);
    let mut p = IrProgram::new();
    let q = register(&mut p, 1, cap, params.scope);
    let done = p.shared_line("DONE");
    let sums = p.shared_array("SUMS", threads * 8);
    let cnts = p.shared_array("CNTS", threads * 8);
    let sqs = p.shared_array("SQS", threads * 8);
    let pad = declare_padding(&mut p, threads);
    let _ = q;

    let record = move |b: &mut BlockBuilder, tid: usize| {
        let t8 = (tid * 8) as i64;
        b.if_(l("task").gt(c(0)), move |r| {
            r.store(sums.at(c(t8)), ld(sums.at(c(t8))).add(l("task")));
            r.store(cnts.at(c(t8)), ld(cnts.at(c(t8))).add(c(1)));
            r.store(
                sqs.at(c(t8)),
                ld(sqs.at(c(t8))).add(l("task").mul(l("task"))),
            );
        });
    };

    // Owner.
    let workload = params.workload;
    p.thread(move |b| {
        declare_padding_locals(b, 0);
        b.let_("i", c(1));
        b.while_(l("i").le(c(n as i64)), move |w| {
            w.call("Wsq::put", &[c(0), l("i")]);
            emit_padding(w, pad, 0, workload);
            w.if_(l("i").rem(c(3)).eq(c(0)), move |t| {
                t.call_ret("task", "Wsq::take", &[c(0)]);
                record(t, 0);
            });
            w.assign("i", l("i").add(c(1)));
        });
        // Drain.
        b.loop_(move |d| {
            d.call_ret("task", "Wsq::take", &[c(0)]);
            d.if_(l("task").eq(c(EMPTY)), |x| x.break_());
            record(d, 0);
        });
        b.store(done.cell(), c(1));
        b.halt();
    });

    // Thieves.
    for t in 1..threads {
        let workload = params.workload;
        p.thread(move |b| {
            declare_padding_locals(b, t);
            b.while_(ld(done.cell()).eq(c(0)), move |w| {
                w.call_ret("task", "Wsq::steal", &[c(0)]);
                record(w, t);
                emit_padding(w, pad, t, workload);
            });
            b.halt();
        });
    }

    let program = compile(&p);
    let n64 = n as i64;
    let exp_cnt = n64;
    let exp_sum = n64 * (n64 + 1) / 2;
    let exp_sq: i64 = (1..=n64).map(|i| i * i).sum();
    BuiltWorkload {
        name: "wsq".into(),
        program,
        check: Box::new(move |prog, mem| {
            let read = |name: &str| -> i64 {
                let base = prog.addr_of(name);
                (0..threads).map(|t| mem[base + t * 8]).sum()
            };
            let (cnt, sum, sq) = (read("CNTS"), read("SUMS"), read("SQS"));
            if (cnt, sum, sq) != (exp_cnt, exp_sum, exp_sq) {
                return Err(format!(
                    "task accounting wrong: cnt={cnt}/{exp_cnt} sum={sum}/{exp_sum} sq={sq}/{exp_sq} \
                     (lost or duplicated tasks)"
                ));
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 200_000_000;
        cfg
    }

    #[test]
    fn single_owner_no_thieves_is_a_stack() {
        let w = build(WsqParams {
            tasks: 40,
            thieves: 0,
            workload: 1,
            scope: ScopeMode::Class,
        });
        run(&w, cfg(FenceConfig::SFENCE, 1));
    }

    #[test]
    fn tasks_consumed_exactly_once_under_all_configs() {
        let w = build(WsqParams {
            tasks: 60,
            thieves: 3,
            workload: 2,
            scope: ScopeMode::Class,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn set_scope_variant_also_correct() {
        let w = build(WsqParams {
            tasks: 60,
            thieves: 3,
            workload: 2,
            scope: ScopeMode::Set,
        });
        run(&w, cfg(FenceConfig::SFENCE, 4));
    }

    #[test]
    fn sfence_beats_traditional() {
        let w = build(WsqParams {
            tasks: 60,
            thieves: 3,
            workload: 3,
            scope: ScopeMode::Class,
        });
        let t = run(&w, cfg(FenceConfig::TRADITIONAL, 4));
        let s = run(&w, cfg(FenceConfig::SFENCE, 4));
        assert!(
            s.timed_cycles() < t.timed_cycles(),
            "S ({}) must beat T ({})",
            s.timed_cycles(),
            t.timed_cycles()
        );
    }
}
