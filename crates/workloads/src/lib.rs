//! # sfence-workloads
//!
//! The paper's eight benchmarks (Table IV), written in the `sfence-isa`
//! IR and compiled onto the simulator:
//!
//! - **Lock-free algorithms** (Fig. 12 group, with the workload knob):
//!   [`dekker`] (set scope), [`wsq`] (Chase–Lev deque, class scope),
//!   [`msn`] (Michael–Scott queue, class scope), [`harris`]
//!   (lock-free sorted-list set, class scope).
//! - **Full applications** (Fig. 13 group): [`pst`] and [`ptc`]
//!   (work-stealing graph algorithms over the wsq class), [`barnes`]
//!   and [`radiosity`] (SC-enforced kernels via the delay-set pass,
//!   set scope).
//!
//! Every workload carries an invariant checker that runs on the final
//! memory image: timing comparisons are made only between runs whose
//! semantics have been validated.
//!
//! Beyond Table IV, [`litmus`] synthesizes deterministic scenario
//! families (message passing, store buffering, IRIW, CAS loops,
//! producer/consumer — with covering and deliberately non-covering
//! fence scopes) that register into the catalog as
//! `litmus/<family>/<seed>`.
//!
//! [`synth`] generalizes those families into the fuzzer's
//! program-synthesis grammar: encoded candidates register as
//! `fuzz/<encoded>`, and minimized fuzzer findings are archived as
//! `litmus/regression/<id>` scenarios.

pub mod barnes;
pub mod catalog;
pub mod dekker;
pub mod harris;
pub mod litmus;
pub mod msn;
pub mod pst;
pub mod ptc;
pub mod radiosity;
pub mod support;
pub mod synth;
pub mod wsq;

pub use catalog::{Scale, Workload, WorkloadParams, REGISTRY};
pub use support::{BuiltWorkload, ScopeMode};
