//! Table IV of the paper, promoted from a static info table to a
//! **workload registry**: every benchmark is a named entry mapping to
//! a parameterized builder, so experiment layers can sweep workloads
//! by name instead of hardcoding per-benchmark constructors.

use crate::support::{BuiltWorkload, ScopeMode};
use crate::{barnes, dekker, harris, msn, pst, ptc, radiosity, wsq};
use sfence_isa::passes::ScStyle;

/// Scope type used by a benchmark (Table IV "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchType {
    Set,
    Class,
}

/// One Table IV row.
#[derive(Debug, Clone, Copy)]
pub struct BenchInfo {
    pub name: &'static str,
    pub ty: BenchType,
    pub description: &'static str,
    /// Lock-free algorithm (Fig. 12 group) or full application
    /// (Fig. 13 group)?
    pub full_app: bool,
}

/// Problem size of a build: the paper's evaluation scale (figures)
/// or the small scale the fast integration tests run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    #[default]
    Eval,
    Small,
}

/// Parameters every registry builder understands. Knobs that a
/// benchmark does not have (the workload level on full applications,
/// the scope mode on set-scope benchmarks) are ignored by it.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadParams {
    /// Fig. 12 workload knob (lock-free algorithms).
    pub level: u32,
    /// Class scope vs set scope (class-scope benchmarks, Fig. 14).
    pub scope: ScopeMode,
    pub scale: Scale,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self {
            level: 3,
            scope: ScopeMode::Class,
            scale: Scale::Eval,
        }
    }
}

impl WorkloadParams {
    pub fn level(mut self, level: u32) -> Self {
        self.level = level;
        self
    }

    pub fn scope(mut self, scope: ScopeMode) -> Self {
        self.scope = scope;
        self
    }

    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    pub fn small() -> Self {
        Self::default().scale(Scale::Small).level(2)
    }
}

/// A registry entry: the Table IV row plus the parameterized builder.
#[derive(Clone, Copy)]
pub struct Workload {
    pub info: BenchInfo,
    builder: fn(&WorkloadParams) -> BuiltWorkload,
}

impl Workload {
    pub fn name(&self) -> &'static str {
        self.info.name
    }

    pub fn build(&self, params: &WorkloadParams) -> BuiltWorkload {
        (self.builder)(params)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("info", &self.info)
            .finish()
    }
}

fn build_dekker(p: &WorkloadParams) -> BuiltWorkload {
    dekker::build(dekker::DekkerParams {
        iters: match p.scale {
            Scale::Eval => 40,
            Scale::Small => 20,
        },
        workload: p.level,
    })
}

fn build_wsq(p: &WorkloadParams) -> BuiltWorkload {
    let (tasks, thieves) = match p.scale {
        Scale::Eval => (120, 7),
        Scale::Small => (40, 3),
    };
    wsq::build(wsq::WsqParams {
        tasks,
        thieves,
        workload: p.level,
        scope: p.scope,
    })
}

fn build_msn(p: &WorkloadParams) -> BuiltWorkload {
    let (items, producers, consumers) = match p.scale {
        Scale::Eval => (30, 4, 4),
        Scale::Small => (15, 2, 2),
    };
    msn::build(msn::MsnParams {
        items,
        producers,
        consumers,
        workload: p.level,
        scope: p.scope,
    })
}

fn build_harris(p: &WorkloadParams) -> BuiltWorkload {
    let (ops, threads, key_range) = match p.scale {
        Scale::Eval => (30, 8, 48),
        Scale::Small => (15, 4, 12),
    };
    harris::build(harris::HarrisParams {
        ops,
        threads,
        key_range,
        workload: p.level,
        scope: p.scope,
    })
}

fn build_pst(p: &WorkloadParams) -> BuiltWorkload {
    let (nodes, extra_edges, threads, seed) = match p.scale {
        Scale::Eval => (1000, 1000, 8, 42),
        Scale::Small => (120, 120, 4, 9),
    };
    pst::build(pst::PstParams {
        nodes,
        extra_edges,
        threads,
        seed,
        scope: p.scope,
    })
}

fn build_ptc(p: &WorkloadParams) -> BuiltWorkload {
    let (nodes, edges, threads, seed, task_work) = match p.scale {
        Scale::Eval => (1000, 3000, 8, 43, 12),
        Scale::Small => (120, 360, 4, 10, 4),
    };
    ptc::build(ptc::PtcParams {
        nodes,
        edges,
        threads,
        seed,
        task_work,
        scope: p.scope,
    })
}

fn build_barnes(p: &WorkloadParams) -> BuiltWorkload {
    let (bodies_per_thread, cells_per_thread, samples, steps, threads) = match p.scale {
        Scale::Eval => (96, 4, 4, 2, 8),
        Scale::Small => (16, 2, 3, 2, 4),
    };
    barnes::build(barnes::BarnesParams {
        bodies_per_thread,
        cells_per_thread,
        samples,
        steps,
        threads,
        style: ScStyle::SetScope,
    })
}

fn build_radiosity(p: &WorkloadParams) -> BuiltWorkload {
    let (patches, interactions, rounds, threads, seed, scratch_work) = match p.scale {
        Scale::Eval => (24, 200, 2, 8, 44, 6),
        Scale::Small => (8, 40, 2, 4, 3, 2),
    };
    radiosity::build(radiosity::RadiosityParams {
        patches,
        interactions,
        rounds,
        threads,
        seed,
        scratch_work,
        style: ScStyle::SetScope,
    })
}

/// The eight benchmarks of Table IV, each with its builder.
pub const REGISTRY: [Workload; 8] = [
    Workload {
        info: BenchInfo {
            name: "dekker",
            ty: BenchType::Set,
            description: "Dekker algorithm [12]",
            full_app: false,
        },
        builder: build_dekker,
    },
    Workload {
        info: BenchInfo {
            name: "wsq",
            ty: BenchType::Class,
            description: "Work-stealing queue [10]",
            full_app: false,
        },
        builder: build_wsq,
    },
    Workload {
        info: BenchInfo {
            name: "msn",
            ty: BenchType::Class,
            description: "Non-blocking Queue [33]",
            full_app: false,
        },
        builder: build_msn,
    },
    Workload {
        info: BenchInfo {
            name: "harris",
            ty: BenchType::Class,
            description: "Harris's set [20]",
            full_app: false,
        },
        builder: build_harris,
    },
    Workload {
        info: BenchInfo {
            name: "barnes",
            ty: BenchType::Set,
            description: "Barnes-Hut n-body [43]",
            full_app: true,
        },
        builder: build_barnes,
    },
    Workload {
        info: BenchInfo {
            name: "radiosity",
            ty: BenchType::Set,
            description: "Diffuse radiosity method [43]",
            full_app: true,
        },
        builder: build_radiosity,
    },
    Workload {
        info: BenchInfo {
            name: "pst",
            ty: BenchType::Class,
            description: "Parallel spanning tree [5]",
            full_app: true,
        },
        builder: build_pst,
    },
    Workload {
        info: BenchInfo {
            name: "ptc",
            ty: BenchType::Class,
            description: "Parallel transitive closure [15]",
            full_app: true,
        },
        builder: build_ptc,
    },
];

/// Look a benchmark up by name. Generated litmus scenarios are not
/// table entries; use [`exists`] / [`build`] for name-based dispatch
/// that covers both.
pub fn find(name: &str) -> Option<&'static Workload> {
    REGISTRY.iter().find(|w| w.info.name == name)
}

/// Is `name` buildable — a Table IV benchmark, a generated litmus
/// scenario (`litmus/<family>/<seed>`, including the bounds-checked
/// `litmus/regression/<id>` namespace), or an encoded fuzzer
/// candidate (`fuzz/<encoded>`)?
pub fn exists(name: &str) -> bool {
    find(name).is_some()
        || crate::litmus::parse_name(name).is_some()
        || crate::synth::parse_name(name).is_some()
}

/// Build a benchmark by name; panics on unknown names (experiment
/// specs are static, so an unknown name is a programming error).
///
/// Names under `litmus/` dispatch to the deterministic scenario
/// generator ([`crate::litmus`]); the seed is part of the name, so
/// the sweep cache, sharding and the result store key litmus cells
/// exactly like table benchmarks. Names under `fuzz/` decode the
/// synthesized program from the name itself ([`crate::synth`]) —
/// corpus entries flow through experiments and `sfence-dist` jobs
/// like any workload. `params` is ignored for both — their whole
/// parameterization lives in the name.
pub fn build(name: &str, params: &WorkloadParams) -> BuiltWorkload {
    if let Some(w) = crate::litmus::build_named(name) {
        return w;
    }
    if let Some(w) = crate::synth::build_named(name) {
        return w;
    }
    find(name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}"))
        .build(params)
}

/// The lock-free algorithms of Fig. 12, in paper order.
pub fn lock_free_names() -> Vec<&'static str> {
    REGISTRY
        .iter()
        .filter(|w| !w.info.full_app)
        .map(|w| w.info.name)
        .collect()
}

/// The full applications of Fig. 13, in paper order (pst, ptc,
/// barnes, radiosity).
pub fn full_app_names() -> Vec<&'static str> {
    vec!["pst", "ptc", "barnes", "radiosity"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_matches_paper() {
        assert_eq!(REGISTRY.len(), 8);
        // Class scope: wsq, msn, harris, pst, ptc. Set: dekker,
        // barnes, radiosity.
        let class_count = REGISTRY
            .iter()
            .filter(|w| w.info.ty == BenchType::Class)
            .count();
        assert_eq!(class_count, 5);
        assert_eq!(REGISTRY.iter().filter(|w| w.info.full_app).count(), 4);
    }

    #[test]
    fn registry_builds_every_benchmark_by_name() {
        for w in &REGISTRY {
            let built = build(w.info.name, &WorkloadParams::small());
            assert_eq!(built.name, w.info.name);
        }
        assert!(find("nonesuch").is_none());
    }

    #[test]
    fn litmus_names_dispatch_through_the_catalog() {
        let name = "litmus/sb/17";
        assert!(exists(name));
        assert!(find(name).is_none(), "litmus names are not table entries");
        let built = build(name, &WorkloadParams::small());
        assert_eq!(built.name, name);
        assert!(built.program.validate().is_ok());
        assert!(!exists("litmus/nonesuch/17"));
    }

    #[test]
    fn fuzz_names_dispatch_through_the_catalog() {
        let name = "fuzz/v2m0:s01fl1~s11fl0";
        assert!(exists(name));
        assert!(find(name).is_none(), "fuzz names are not table entries");
        let built = build(name, &WorkloadParams::small());
        assert_eq!(built.name, name);
        assert!(built.program.validate().is_ok());
        assert!(!exists("fuzz/"));
        assert!(!exists("fuzz/v2m0:nonsense"));
    }

    #[test]
    fn regression_ids_are_bounds_checked() {
        let count = crate::synth::REGRESSIONS.len() as u64;
        assert!(count > 0);
        for i in 0..count {
            assert!(exists(&format!("litmus/regression/{i}")));
        }
        assert!(!exists(&format!("litmus/regression/{count}")));
    }

    #[test]
    fn groups_cover_the_registry() {
        let mut names = lock_free_names();
        names.extend(full_app_names());
        names.sort_unstable();
        let mut all: Vec<_> = REGISTRY.iter().map(|w| w.info.name).collect();
        all.sort_unstable();
        assert_eq!(names, all);
    }
}
