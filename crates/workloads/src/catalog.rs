//! Table IV of the paper: the benchmark inventory.

/// Scope type used by a benchmark (Table IV "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchType {
    Set,
    Class,
}

/// One Table IV row.
#[derive(Debug, Clone, Copy)]
pub struct BenchInfo {
    pub name: &'static str,
    pub ty: BenchType,
    pub description: &'static str,
    /// Lock-free algorithm (Fig. 12 group) or full application
    /// (Fig. 13 group)?
    pub full_app: bool,
}

/// The eight benchmarks of Table IV.
pub const TABLE_IV: [BenchInfo; 8] = [
    BenchInfo {
        name: "dekker",
        ty: BenchType::Set,
        description: "Dekker algorithm [12]",
        full_app: false,
    },
    BenchInfo {
        name: "wsq",
        ty: BenchType::Class,
        description: "Work-stealing queue [10]",
        full_app: false,
    },
    BenchInfo {
        name: "msn",
        ty: BenchType::Class,
        description: "Non-blocking Queue [33]",
        full_app: false,
    },
    BenchInfo {
        name: "harris",
        ty: BenchType::Class,
        description: "Harris's set [20]",
        full_app: false,
    },
    BenchInfo {
        name: "barnes",
        ty: BenchType::Set,
        description: "Barnes-Hut n-body [43]",
        full_app: true,
    },
    BenchInfo {
        name: "radiosity",
        ty: BenchType::Set,
        description: "Diffuse radiosity method [43]",
        full_app: true,
    },
    BenchInfo {
        name: "pst",
        ty: BenchType::Class,
        description: "Parallel spanning tree [5]",
        full_app: true,
    },
    BenchInfo {
        name: "ptc",
        ty: BenchType::Class,
        description: "Parallel transitive closure [15]",
        full_app: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_matches_paper() {
        assert_eq!(TABLE_IV.len(), 8);
        // Class scope: wsq, msn, harris, pst, ptc. Set: dekker,
        // barnes, radiosity.
        let class_count = TABLE_IV.iter().filter(|b| b.ty == BenchType::Class).count();
        assert_eq!(class_count, 5);
        assert_eq!(TABLE_IV.iter().filter(|b| b.full_app).count(), 4);
    }
}
