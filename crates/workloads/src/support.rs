//! Shared workload infrastructure: the Fig. 12 workload knob, scope
//! mode selection, built-workload plumbing and invariant checks.

use sfence_isa::ir::{c, l, ld, BlockBuilder, Global, IrProgram};
use sfence_isa::{CompileOpts, Program};

/// Which scope flavour a class-based benchmark uses (Fig. 14 compares
/// the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScopeMode {
    /// `S-FENCE[class]` inside the data structure's methods.
    #[default]
    Class,
    /// `S-FENCE[set, {shared vars}]` naming the structure's variables.
    Set,
}

/// A compiled benchmark plus its invariant checker.
///
/// This is pure *description*: running (and invariant validation on
/// the final memory image) is the `sfence-harness` `Session`'s job —
/// workloads never drive the machine themselves.
pub struct BuiltWorkload {
    /// Registry name. Table IV benchmarks use their static names;
    /// generated litmus scenarios use `litmus/<family>/<seed>`.
    pub name: String,
    pub program: Program,
    /// Validates the final memory image; returns a description of the
    /// violation if any.
    pub check: InvariantCheck,
}

/// An invariant checker over `(program, final memory)`.
pub type InvariantCheck = Box<dyn Fn(&Program, &[i64]) -> Result<(), String> + Send + Sync>;

/// Test-only runner shared by the workload modules' unit tests: run
/// through the harness `Session` and apply the invariant checker.
/// Uses `Session::for_program` rather than `for_workload` because the
/// harness dev-dependency links its own copy of this crate, making
/// its `BuiltWorkload` a distinct type inside these tests.
#[cfg(test)]
pub(crate) fn run_for_test(
    w: &BuiltWorkload,
    cfg: sfence_sim::MachineConfig,
) -> sfence_harness::RunReport {
    let report = sfence_harness::Session::for_program(&w.program)
        .config(cfg)
        .run();
    assert!(report.completed(), "{}: run hit the cycle limit", w.name);
    if let Err(e) = (w.check)(&w.program, &report.mem) {
        panic!("{}: invariant violated: {e}", w.name);
    }
    report
}

/// Compile with default options, panicking on compiler errors.
pub fn compile(p: &IrProgram) -> Program {
    p.compile(&CompileOpts::default())
        .expect("workload must compile")
}

/// A small deterministic PRNG (xorshift64* over a splitmix64-mixed
/// seed) for workload input generation. Dependency-free and stable
/// across platforms, so generated graphs — and therefore every cycle
/// count in the evaluation — are reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct Prng(u64);

impl Prng {
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 step so small seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        Prng((z ^ (z >> 31)) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform draw from `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + (self.next_u64() % span as u64) as usize
    }
}

/// Size (words) of each thread's private padding region. Large enough
/// that rotating stores miss in both L1 and (across 8 threads) mostly
/// in L2 — the "long latency memory accesses during processing"
/// the paper's motivation rests on.
pub const PAD_REGION_WORDS: usize = 32 * 1024;
/// Line stride in words.
pub const PAD_STRIDE: usize = sfence_isa::WORDS_PER_LINE;

/// Declare the shared padding backing store (one region per thread).
pub fn declare_padding(p: &mut IrProgram, threads: usize) -> Global {
    p.array("PAD", PAD_REGION_WORDS * threads)
}

/// Emit one unit of the Fig. 12 "workload".
///
/// The knob reproduces the paper's rise-then-fall: at level 1 the
/// workload is pure register arithmetic (fences have nothing
/// out-of-scope to wait for, so S ≈ T); each further level adds one
/// private-line store (rotating through a region too large to cache,
/// so it drains slowly and stalls traditional fences) while the
/// arithmetic grows quadratically — at high levels compute dominates
/// and the advantage shrinks again.
///
/// Requires locals `pad_cur` (cursor) and `seed` to be declared by the
/// caller (once, before the loop).
pub fn emit_padding(b: &mut BlockBuilder, pad: Global, tid: usize, level: u32) {
    let base = (tid * PAD_REGION_WORDS) as i64;
    let alu_chains = 15 * level * level;
    for _ in 0..alu_chains {
        // Dependent arithmetic chain (models compute).
        b.assign(
            "seed",
            l("seed")
                .mul(c(6364136223846793005))
                .add(c(1442695040888963407)),
        );
        b.assign("seed", l("seed").bitxor(l("seed").shr(c(29))));
    }
    if level >= 2 {
        // Private traffic to an L1-resident scratch line (warm, fast
        // drains — keeps drain bandwidth unsaturated).
        for k in 0..level - 2 {
            b.store(
                pad.at(c(base + PAD_REGION_WORDS as i64 - 8 - (k as i64 % 4) * 8)),
                l("seed"),
            );
        }
        // One always-cold store (rotating region, never reused), right
        // before control returns to the algorithm: its slow drain is
        // what a traditional fence waits for and a scoped fence skips.
        b.store(pad.at(c(base).add(l("pad_cur"))), l("seed"));
        b.assign(
            "pad_cur",
            l("pad_cur")
                .add(c(PAD_STRIDE as i64))
                .rem(c(PAD_REGION_WORDS as i64 - 64)),
        );
    }
}

/// Declare the locals `emit_padding` uses.
pub fn declare_padding_locals(b: &mut BlockBuilder, tid: usize) {
    b.let_("pad_cur", c(((tid * 13) % 61) as i64 * PAD_STRIDE as i64));
    b.let_("seed", c(tid as i64 * 7919 + 12345));
}

/// A sense-reversing centralised barrier over CAS.
///
/// Registers the routine `"barrier"` with signature
/// `(nthreads, my_sense) -> next_sense`; each thread keeps a private
/// sense local initialised to 1 and calls
/// `call_ret("bar_sense", "barrier", &[c(T), l("bar_sense")])`.
/// The barrier's variables are shared (they participate in delay
/// sets).
pub fn register_barrier(p: &mut IrProgram) -> (Global, Global) {
    let count = p.shared_line("BAR_COUNT");
    let sense = p.shared_line("BAR_SENSE");
    p.routine("barrier", &["nthreads", "my_sense"], move |b| {
        // fetch-and-increment via CAS retry
        b.let_("done", c(0));
        b.while_(l("done").eq(c(0)), move |w| {
            w.let_("cur", ld(count.cell()));
            w.cas("done", count.cell(), l("cur"), l("cur").add(c(1)));
        });
        b.if_else(
            l("cur").add(c(1)).eq(l("nthreads")),
            move |last| {
                // Last arriver resets the count and flips the sense.
                last.store(count.cell(), c(0));
                last.fence(); // count reset visible before release
                last.store(sense.cell(), l("my_sense"));
            },
            move |other| {
                other.spin_until(ld(sense.cell()).eq(l("my_sense")));
            },
        );
        // Next episode's sense (1 -> 0 -> 1 ...).
        b.ret(Some(c(1).sub(l("my_sense"))));
    });
    (count, sense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::ir::IrProgram;

    #[test]
    fn padding_compiles_and_runs() {
        let mut p = IrProgram::new();
        let pad = declare_padding(&mut p, 2);
        let out = p.global("out");
        p.thread(move |b| {
            declare_padding_locals(b, 0);
            b.let_("i", c(0));
            b.while_(l("i").lt(c(10)), move |w| {
                emit_padding(w, pad, 0, 3);
                w.assign("i", l("i").add(c(1)));
            });
            b.store(out.cell(), l("pad_cur"));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        let (exit, stats) = sfence_isa::interp::run_single(&prog, 0, &mut mem, 1_000_000).unwrap();
        assert_eq!(exit, sfence_isa::interp::InterpExit::Halted);
        assert_eq!(stats.stores, 21); // 10 iters * (3-1) + final
    }

    #[test]
    fn barrier_synchronises_threads() {
        // Two threads alternate phases; a non-barrier interleaving
        // would let one thread race ahead.
        let mut p = IrProgram::new();
        register_barrier(&mut p);
        let log = p.shared_array("log", 16);
        let log_idx = p.shared_line("log_idx");
        for t in 0..2 {
            p.thread(move |b| {
                b.let_("bar_sense", c(1));
                b.let_("phase", c(0));
                b.while_(l("phase").lt(c(3)), move |w| {
                    // append phase to log (CAS-inc index)
                    w.let_("got", c(0));
                    w.while_(l("got").eq(c(0)), move |ww| {
                        ww.let_("idx", ld(log_idx.cell()));
                        ww.cas("got", log_idx.cell(), l("idx"), l("idx").add(c(1)));
                    });
                    w.store(log.at(l("idx")), l("phase"));
                    w.call_ret("bar_sense", "barrier", &[c(2), l("bar_sense")]);
                    w.assign("phase", l("phase").add(c(1)));
                });
                b.halt();
            });
            let _ = t;
        }
        let prog = compile(&p);
        let report = sfence_harness::Session::for_program(&prog)
            .cores(2)
            .max_cycles(20_000_000)
            .run();
        assert_eq!(report.exit, sfence_sim::RunExit::Completed);
        // With a correct barrier the log is 0,0,1,1,2,2.
        let base = prog.addr_of("log");
        let got: Vec<i64> = (0..6).map(|i| report.mem[base + i]).collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2]);
    }
}
