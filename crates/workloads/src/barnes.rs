//! `barnes` — a Barnes-Hut-style n-body kernel, used as the paper
//! uses SPLASH-2 barnes: a program written for sequential consistency
//! is made SC-safe on the relaxed machine by *fence insertion* (the
//! delay-set pass), and S-Fence with **set scope** flags only the
//! shared conflicting accesses — the dominant private body traffic is
//! never ordered (paper §VI-B).
//!
//! Structure per step: a force phase (each thread reads shared cell
//! summaries, updates its own bodies — private, long-latency), a
//! barrier, a cell-update phase (each thread writes its own cells
//! from its bodies — shared), a barrier. The whole computation is
//! deterministic in lockstep, so the final body positions are checked
//! against an exact host-side replay.

use crate::support::{compile, register_barrier, BuiltWorkload};
use sfence_isa::ir::*;
use sfence_isa::passes::{enforce_sc, ScStyle};

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct BarnesParams {
    pub bodies_per_thread: usize,
    pub cells_per_thread: usize,
    /// Cells sampled per body in the force phase.
    pub samples: usize,
    pub steps: usize,
    pub threads: usize,
    /// How the SC-enforcement pass materialises fences.
    pub style: ScStyle,
}

impl Default for BarnesParams {
    fn default() -> Self {
        Self {
            bodies_per_thread: 96,
            cells_per_thread: 4,
            samples: 4,
            steps: 2,
            threads: 4,
            style: ScStyle::SetScope,
        }
    }
}

/// Exact host-side replay of the kernel (same wrapping arithmetic).
pub fn reference(params: &BarnesParams) -> (Vec<i64>, Vec<i64>) {
    let nb = params.bodies_per_thread * params.threads;
    let nc = params.cells_per_thread * params.threads;
    let mut pos: Vec<i64> = (0..nb)
        .map(|i| (i as i64).wrapping_mul(37) % 1000)
        .collect();
    let mut cell: Vec<i64> = (0..nc).map(|j| (j as i64) * 11 + 5).collect();
    for _ in 0..params.steps {
        // Force phase (reads cells, writes bodies) — phases are
        // barrier-separated so this order is exact.
        let frozen_cells = cell.clone();
        for (i, p) in pos.iter_mut().enumerate() {
            let mut f: i64 = 0;
            for s in 0..params.samples {
                let j = (i * 7 + s * 13) % nc;
                f = f.wrapping_add(frozen_cells[j].wrapping_sub(*p) >> 3);
            }
            *p = p.wrapping_add(f >> 2);
        }
        // Cell phase (reads own bodies, writes own cells).
        let frozen_pos = pos.clone();
        for t in 0..params.threads {
            for cl in 0..params.cells_per_thread {
                let j = t * params.cells_per_thread + cl;
                let mut acc: i64 = 0;
                for k in 0..8 {
                    let b = t * params.bodies_per_thread + (cl * 8 + k) % params.bodies_per_thread;
                    acc = acc.wrapping_add(frozen_pos[b]);
                }
                cell[j] = acc >> 3;
            }
        }
    }
    (pos, cell)
}

/// Build the barnes benchmark.
pub fn build(params: BarnesParams) -> BuiltWorkload {
    let threads = params.threads;
    let nb = params.bodies_per_thread * threads;
    let nc = params.cells_per_thread * threads;
    let bpt = params.bodies_per_thread;
    let cpt = params.cells_per_thread;

    let mut p = IrProgram::new();
    register_barrier(&mut p);
    // Bodies are *private* (each thread touches only its own slice):
    // the delay-set pass leaves them unflagged and unfenced.
    let pos = p.array("BPOS", nb * 8); // one body per line
                                       // Write-only per-thread force log, rotating per step so its
                                       // stores are always cold: the genuinely long-latency private
                                       // traffic a traditional fence stalls on and S-Fence skips.
    let frc = p.array("BFRC", threads * 8192);
    // Cells are shared-conflicting: written by their owner, read by
    // everyone.
    let cell = p.shared_array("CELL", nc);
    for i in 0..nb {
        p.init_elem(pos, i * 8, (i as i64).wrapping_mul(37) % 1000);
    }
    for j in 0..nc {
        p.init_elem(cell, j, (j as i64) * 11 + 5);
    }

    for t in 0..threads {
        let steps = params.steps;
        let samples = params.samples;
        p.thread(move |b| {
            b.let_("bar_sense", c(1));
            b.let_("step", c(0));
            b.while_(l("step").lt(c(steps as i64)), move |w| {
                // ---- force phase over my bodies ----
                w.let_("i", c((t * bpt) as i64));
                w.while_(l("i").lt(c(((t + 1) * bpt) as i64)), move |fb| {
                    fb.let_("f", c(0));
                    for s in 0..samples {
                        // Shared cell read (flagged under set scope):
                        // the sampled index is data-independent.
                        fb.let_(
                            "j",
                            l("i").mul(c(7)).add(c((s * 13) as i64)).rem(c(nc as i64)),
                        );
                        fb.assign(
                            "f",
                            l("f").add(
                                ld(cell.at(l("j")))
                                    .sub(ld(pos.at(l("i").mul(c(8)))))
                                    .shr(c(3)),
                            ),
                        );
                    }
                    // Scattered private force-log store (cold line):
                    // a traditional fence waits for its drain at the
                    // next shared access; a set-scope fence does not.
                    fb.store(
                        frc.at(c((t * 8192) as i64).add(
                            l("step")
                                .mul(c(nb as i64))
                                .add(l("i"))
                                .mul(c(8))
                                .bitand(c(8191)),
                        )),
                        l("f"),
                    );
                    fb.store(
                        pos.at(l("i").mul(c(8))),
                        ld(pos.at(l("i").mul(c(8)))).add(l("f").shr(c(2))),
                    );
                    fb.assign("i", l("i").add(c(1)));
                });
                w.call_ret("bar_sense", "barrier", &[c(threads as i64), l("bar_sense")]);
                // ---- cell phase over my cells ----
                w.let_("cl", c(0));
                w.while_(l("cl").lt(c(cpt as i64)), move |cb| {
                    cb.let_("acc", c(0));
                    for k in 0..8 {
                        cb.let_(
                            "bidx",
                            c((t * bpt) as i64)
                                .add(l("cl").mul(c(8)).add(c(k as i64)).rem(c(bpt as i64))),
                        );
                        cb.assign("acc", l("acc").add(ld(pos.at(l("bidx").mul(c(8))))));
                    }
                    cb.store(
                        cell.at(c((t * cpt) as i64).add(l("cl"))),
                        l("acc").shr(c(3)),
                    );
                    cb.assign("cl", l("cl").add(c(1)));
                });
                w.call_ret("bar_sense", "barrier", &[c(threads as i64), l("bar_sense")]);
                w.assign("step", l("step").add(c(1)));
            });
            b.halt();
        });
    }

    // SC enforcement: the compiler pass that makes this SC-correct on
    // the relaxed machine (paper: delay-set based fence insertion).
    enforce_sc(&mut p, params.style);

    let program = compile(&p);
    let (ref_pos, ref_cell) = reference(&params);
    BuiltWorkload {
        name: "barnes".into(),
        program,
        check: Box::new(move |prog, mem| {
            let pos_base = prog.addr_of("BPOS");
            let cell_base = prog.addr_of("CELL");
            for (i, &expect) in ref_pos.iter().enumerate() {
                if mem[pos_base + i * 8] != expect {
                    return Err(format!(
                        "body {i}: got {} expected {expect}",
                        mem[pos_base + i * 8]
                    ));
                }
            }
            for (j, &expect) in ref_cell.iter().enumerate() {
                if mem[cell_base + j] != expect {
                    return Err(format!(
                        "cell {j}: got {} expected {expect}",
                        mem[cell_base + j]
                    ));
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 500_000_000;
        cfg
    }

    fn small() -> BarnesParams {
        BarnesParams {
            bodies_per_thread: 24,
            cells_per_thread: 2,
            samples: 3,
            steps: 2,
            threads: 4,
            style: ScStyle::SetScope,
        }
    }

    #[test]
    fn matches_host_reference_under_all_configs() {
        let w = build(small());
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn traditional_style_pass_also_correct() {
        let w = build(BarnesParams {
            style: ScStyle::Traditional,
            ..small()
        });
        run(&w, cfg(FenceConfig::TRADITIONAL, 4));
    }

    #[test]
    fn sfence_reduces_fence_stalls() {
        let w = build(BarnesParams {
            bodies_per_thread: 48,
            ..small()
        });
        let t = run(&w, cfg(FenceConfig::TRADITIONAL, 4));
        let s = run(&w, cfg(FenceConfig::SFENCE, 4));
        assert!(
            s.total_fence_stalls() < t.total_fence_stalls(),
            "S stalls {} must be below T stalls {}",
            s.total_fence_stalls(),
            t.total_fence_stalls()
        );
    }
}
