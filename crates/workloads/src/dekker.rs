//! `dekker` — Dekker's mutual-exclusion algorithm (paper Fig. 11),
//! with **set scope**: the fences name exactly the synchronisation
//! variables (`flag0`, `flag1`, `turn`, plus the protected counter),
//! so the workload's private accesses never stall them.

use crate::support::{
    compile, declare_padding, declare_padding_locals, emit_padding, BuiltWorkload,
};
use sfence_isa::ir::*;

/// Parameters for the dekker harness.
#[derive(Debug, Clone, Copy)]
pub struct DekkerParams {
    /// Critical-section entries per thread.
    pub iters: u32,
    /// Fig. 12 workload level (private work between entries).
    pub workload: u32,
}

impl Default for DekkerParams {
    fn default() -> Self {
        Self {
            iters: 60,
            workload: 3,
        }
    }
}

/// Build the two-thread dekker benchmark. The invariant is exact
/// mutual exclusion: the non-atomic read-modify-write of `COUNT`
/// inside the critical section loses updates iff two threads are ever
/// inside simultaneously, so `COUNT == 2 * iters` at the end.
pub fn build(params: DekkerParams) -> BuiltWorkload {
    let mut p = IrProgram::new();
    let flags = [p.shared_line("flag0"), p.shared_line("flag1")];
    let turn = p.shared_line("turn");
    let count = p.shared_line("COUNT");
    let pad = declare_padding(&mut p, 2);

    for me in 0..2usize {
        let other = 1 - me;
        let my_flag = flags[me];
        let other_flag = flags[other];
        let iters = params.iters;
        let workload = params.workload;
        p.thread(move |b| {
            declare_padding_locals(b, me);
            b.let_("i", c(0));
            b.while_(l("i").lt(c(iters as i64)), move |w| {
                // The paper's point: this work is outside the fences'
                // scope and must not stall them.
                emit_padding(w, pad, me, workload);

                // --- entry protocol ---
                w.store(my_flag.cell(), c(1));
                w.fence_set(&[flags[0], flags[1], turn, count]);
                w.loop_(move |spin| {
                    spin.if_(ld(other_flag.cell()).eq(c(0)), |exit| exit.break_());
                    spin.if_(ld(turn.cell()).ne(c(me as i64)), move |back| {
                        back.store(my_flag.cell(), c(0));
                        back.spin_until(ld(turn.cell()).eq(c(me as i64)));
                        back.store(my_flag.cell(), c(1));
                        back.fence_set(&[flags[0], flags[1], turn, count]);
                    });
                });
                // Acquire: the critical-section load below must not
                // have been satisfied before the flag check.
                w.fence_set(&[flags[0], flags[1], turn, count]);

                // --- critical section: non-atomic increment ---
                w.let_("tmp", ld(count.cell()));
                w.store(count.cell(), l("tmp").add(c(1)));

                // Release: the COUNT store must be visible before the
                // flag is dropped.
                w.fence_set(&[flags[0], flags[1], turn, count]);
                w.store(turn.cell(), c(other as i64));
                w.store(my_flag.cell(), c(0));

                w.assign("i", l("i").add(c(1)));
            });
            b.halt();
        });
    }

    let program = compile(&p);
    let total = 2 * params.iters as i64;
    BuiltWorkload {
        name: "dekker".into(),
        program,
        check: Box::new(move |prog, mem| {
            let got = mem[prog.addr_of("COUNT")];
            if got == total {
                Ok(())
            } else {
                Err(format!(
                    "mutual exclusion violated: COUNT = {got}, expected {total}"
                ))
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = 2;
        cfg.max_cycles = 80_000_000;
        cfg
    }

    #[test]
    fn correct_under_all_fence_configs() {
        let w = build(DekkerParams {
            iters: 25,
            workload: 2,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence)); // panics on violation
        }
    }

    #[test]
    fn sfence_is_faster_with_private_workload() {
        let w = build(DekkerParams {
            iters: 25,
            workload: 3,
        });
        let t = run(&w, cfg(FenceConfig::TRADITIONAL));
        let s = run(&w, cfg(FenceConfig::SFENCE));
        assert!(
            s.timed_cycles() < t.timed_cycles(),
            "S ({}) must beat T ({})",
            s.timed_cycles(),
            t.timed_cycles()
        );
    }

    /// The paper's Fig. 11 *simplified* Dekker (flags only, skip on
    /// contention). Without the fence, store buffering lets both
    /// threads read the other's flag as 0 and enter together, losing
    /// counter updates; with a full fence, entries are exclusive and
    /// the counter matches the granted entries exactly. This is the
    /// machine-level evidence that the dekker benchmark exercises the
    /// memory model.
    fn simplified_dekker(fenced: bool) -> (i64, i64) {
        let mut p = IrProgram::new();
        let flags = [p.shared_line("flag0"), p.shared_line("flag1")];
        let count = p.shared_line("COUNT");
        let entered = p.shared_array("ENTERED", 16);
        for me in 0..2usize {
            let other = 1 - me;
            p.thread(move |b| {
                // Warm both flag lines so loads hit in L1 while the
                // flag stores sit in the store buffer.
                b.let_("w0", ld(flags[0].cell()));
                b.let_("w1", ld(flags[1].cell()));
                b.let_("n", c(0));
                b.let_("i", c(0));
                b.while_(l("i").lt(c(30)), move |w| {
                    w.store(flags[me].cell(), c(1));
                    if fenced {
                        w.fence();
                    }
                    w.if_(ld(flags[other].cell()).eq(c(0)), move |cs| {
                        // critical section
                        cs.let_("tmp", ld(count.cell()));
                        cs.store(count.cell(), l("tmp").add(c(1)));
                        cs.assign("n", l("n").add(c(1)));
                    });
                    if fenced {
                        w.fence(); // release: COUNT before flag drop
                    }
                    w.store(flags[me].cell(), c(0));
                    // Give the other thread a window.
                    w.let_("spin", c(0));
                    w.while_(l("spin").lt(c(8)), |sp| {
                        sp.assign("spin", l("spin").add(c(1)));
                    });
                    w.assign("i", l("i").add(c(1)));
                });
                b.store(entered.at(c((me * 8) as i64)), l("n"));
                b.halt();
            });
        }
        let prog = compile(&p);
        let report = sfence_harness::Session::for_program(&prog)
            .config(cfg(FenceConfig::SFENCE))
            .run();
        assert_eq!(report.exit, sfence_sim::RunExit::Completed);
        let mem = &report.mem;
        let granted = mem[prog.addr_of("ENTERED")] + mem[prog.addr_of("ENTERED") + 8];
        (mem[prog.addr_of("COUNT")], granted)
    }

    #[test]
    fn fenceless_dekker_loses_updates() {
        let (count, granted) = simplified_dekker(false);
        assert!(
            count < granted,
            "expected lost updates without fences: COUNT={count}, granted={granted}"
        );
    }

    #[test]
    fn fenced_simplified_dekker_is_exact() {
        let (count, granted) = simplified_dekker(true);
        assert_eq!(count, granted, "fenced entries must be exclusive");
    }
}
