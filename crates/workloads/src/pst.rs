//! `pst` — parallel spanning tree (Bader–Cong), the paper's motivating
//! application (Fig. 3): per-thread Chase–Lev deques for load
//! balancing, CAS to claim nodes, and — as the paper notes — one
//! *full* fence between the `color`/`parent` stores that S-Fence
//! cannot optimise, which limits its gains on this benchmark.

use crate::support::{compile, BuiltWorkload, ScopeMode};
use crate::wsq;
use sfence_isa::ir::*;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct PstParams {
    pub nodes: usize,
    /// Extra random edges beyond the connecting tree.
    pub extra_edges: usize,
    pub threads: usize,
    pub seed: u64,
    pub scope: ScopeMode,
}

impl Default for PstParams {
    fn default() -> Self {
        Self {
            nodes: 600,
            extra_edges: 600,
            threads: 4,
            seed: 42,
            scope: ScopeMode::Class,
        }
    }
}

/// Generate a connected undirected graph as CSR (host side).
pub fn random_graph(nodes: usize, extra: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = crate::support::Prng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(nodes - 1 + extra);
    for v in 1..nodes {
        let u = rng.gen_range(0..v);
        edges.push((u, v));
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    let mut deg = vec![0usize; nodes];
    for &(a, b) in &edges {
        deg[a] += 1;
        deg[b] += 1;
    }
    let mut off = vec![0usize; nodes + 1];
    for v in 0..nodes {
        off[v + 1] = off[v] + deg[v];
    }
    let mut adj = vec![0usize; off[nodes]];
    let mut cur = off.clone();
    for &(a, b) in &edges {
        adj[cur[a]] = b;
        cur[a] += 1;
        adj[cur[b]] = a;
        cur[b] += 1;
    }
    (off, adj)
}

/// Emit the work-stealing worker skeleton shared by pst and ptc:
/// take from the own queue, else try stealing from every other queue,
/// leaving the task (or EMPTY/ABORT) in local `"task"`.
pub(crate) fn emit_acquire_task(b: &mut BlockBuilder, tid: usize, threads: usize) {
    b.call_ret("task", "Wsq::take", &[c(tid as i64)]);
    b.if_(l("task").le(c(0)), move |f| {
        for v in 0..threads {
            if v == tid {
                continue;
            }
            f.if_(l("task").le(c(0)), move |s| {
                s.call_ret("task", "Wsq::steal", &[c(v as i64)]);
            });
        }
    });
}

/// Build the pst benchmark.
///
/// Invariants: every node claimed exactly once (`COLOR[u] != 0`), the
/// `PARENT` pointers form a spanning tree over real edges rooted at
/// node 0, and the processed counter reaches N.
pub fn build(params: PstParams) -> BuiltWorkload {
    let n = params.nodes;
    let threads = params.threads;
    let (off, adj) = random_graph(n, params.extra_edges, params.seed);
    let cap = n.next_power_of_two().max(16);

    let mut p = IrProgram::new();
    let q = wsq::register(&mut p, threads, cap, params.scope);
    // One node per cache line: graph stores are the long-latency
    // accesses the paper's motivation rests on (no data locality).
    let color = p.shared_array("COLOR", n * 8);
    let parent = p.shared_array("PARENT", n * 8);
    let nproc = p.shared_line("NPROC");
    let adj_off = p.shared_array("ADJ_OFF", n + 1);
    let adj_arr = p.shared_array("ADJ", adj.len().max(1));
    for (i, &o) in off.iter().enumerate() {
        p.init_elem(adj_off, i, o as i64);
    }
    for (i, &a) in adj.iter().enumerate() {
        p.init_elem(adj_arr, i, a as i64);
    }
    // Seed: node 0 claimed by thread 0 and queued on queue 0.
    p.init_elem(color, 0, 1);
    p.init(nproc, 1);
    // BUF[0] = task 1 (node 0), TAIL[0] = 1.
    {
        // Direct writes into the queue's storage.
        let buf = q.buf;
        let tails = q.tails;
        p.init_elem(buf, 0, 1);
        p.init_elem(tails, 0, 1);
    }

    for t in 0..threads {
        let n64 = n as i64;
        p.thread(move |b| {
            b.while_(ld(nproc.cell()).lt(c(n64)), move |w| {
                emit_acquire_task(w, t, threads);
                w.if_(l("task").gt(c(0)), move |body| {
                    body.let_("v", l("task").sub(c(1)));
                    body.let_("i", ld(adj_off.at(l("v"))));
                    body.let_("end", ld(adj_off.at(l("v").add(c(1)))));
                    body.while_(l("i").lt(l("end")), move |scan| {
                        scan.let_("u", ld(adj_arr.at(l("i"))));
                        scan.cas("claimed", color.at(l("u").mul(c(8))), c(0), c(t as i64 + 1));
                        scan.if_(l("claimed").eq(c(1)), move |cl| {
                            // Fig. 3 segment (2): the paper requires a
                            // full fence *between* the color and
                            // parent stores under relaxed models; the
                            // parent store is therefore still
                            // outstanding when put's class fence runs
                            // — which is exactly what limits S-Fence
                            // on pst (§VI-B).
                            cl.fence(); // full fence: outside any scope
                            cl.store(parent.at(l("u").mul(c(8))), l("v").add(c(1)));
                            cl.call("Wsq::put", &[c(t as i64), l("u").add(c(1))]);
                            // processed-count fetch-and-increment
                            cl.let_("got", c(0));
                            cl.while_(l("got").eq(c(0)), move |ww| {
                                ww.let_("cur", ld(nproc.cell()));
                                ww.cas("got", nproc.cell(), l("cur"), l("cur").add(c(1)));
                            });
                        });
                        scan.assign("i", l("i").add(c(1)));
                    });
                });
            });
            b.halt();
        });
    }

    let program = compile(&p);
    let (off_chk, adj_chk) = (off, adj);
    BuiltWorkload {
        name: "pst".into(),
        program,
        check: Box::new(move |prog, mem| {
            let color_base = prog.addr_of("COLOR");
            let parent_base = prog.addr_of("PARENT");
            if mem[prog.addr_of("NPROC")] != n as i64 {
                return Err(format!(
                    "processed {} of {n} nodes",
                    mem[prog.addr_of("NPROC")]
                ));
            }
            for u in 0..n {
                if mem[color_base + u * 8] == 0 {
                    return Err(format!("node {u} never claimed"));
                }
            }
            // PARENT must form a tree over real edges, rooted at 0.
            for u in 1..n {
                let pv = mem[parent_base + u * 8] - 1;
                if pv < 0 || pv as usize >= n {
                    return Err(format!("node {u} has bogus parent {pv}"));
                }
                let pv = pv as usize;
                if !adj_chk[off_chk[u]..off_chk[u + 1]].contains(&pv) {
                    return Err(format!("parent {pv} of {u} is not a neighbour"));
                }
            }
            // Acyclic: walk each node to the root with a bound.
            for mut u in 1..n {
                for hop in 0..=n {
                    if u == 0 {
                        break;
                    }
                    if hop == n {
                        return Err("parent cycle".into());
                    }
                    u = (mem[parent_base + u * 8] - 1) as usize;
                }
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 500_000_000;
        cfg
    }

    #[test]
    fn spanning_tree_valid_under_all_configs() {
        let w = build(PstParams {
            nodes: 200,
            extra_edges: 200,
            threads: 4,
            seed: 7,
            scope: ScopeMode::Class,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn single_thread_works() {
        let w = build(PstParams {
            nodes: 120,
            extra_edges: 60,
            threads: 1,
            seed: 3,
            scope: ScopeMode::Class,
        });
        run(&w, cfg(FenceConfig::SFENCE, 1));
    }

    #[test]
    fn graph_generator_is_connected_and_consistent() {
        let (off, adj) = random_graph(300, 100, 9);
        assert_eq!(off.len(), 301);
        assert_eq!(*off.last().unwrap(), adj.len());
        // Connectivity: BFS from 0 reaches everything.
        let mut seen = vec![false; 300];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in &adj[off[v]..off[v + 1]] {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
