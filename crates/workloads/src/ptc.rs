//! `ptc` — parallel transitive closure (reachability from a source
//! over a directed graph, Foster), on the same work-stealing skeleton
//! as `pst` but with substantially more computation per task — which
//! is why the paper's Fig. 13 shows only a small fence-stall fraction
//! for it.

use crate::support::{compile, BuiltWorkload, ScopeMode};
use crate::{pst::emit_acquire_task, wsq};
use sfence_isa::ir::*;

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct PtcParams {
    pub nodes: usize,
    /// Directed edges (random).
    pub edges: usize,
    pub threads: usize,
    pub seed: u64,
    /// Per-task compute units (LCG steps + private stores).
    pub task_work: u32,
    pub scope: ScopeMode,
}

impl Default for PtcParams {
    fn default() -> Self {
        Self {
            nodes: 600,
            edges: 1800,
            threads: 4,
            seed: 43,
            task_work: 12,
            scope: ScopeMode::Class,
        }
    }
}

/// Generate a random directed graph as CSR plus the host-side
/// reachable set from node 0.
pub fn random_digraph(
    nodes: usize,
    edges: usize,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<bool>) {
    let mut rng = crate::support::Prng::seed_from_u64(seed);
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    // A guaranteed chain off node 0 for an interesting frontier.
    for v in 1..nodes / 2 {
        out[v - 1].push(v);
    }
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b {
            out[a].push(b);
        }
    }
    let mut off = vec![0usize; nodes + 1];
    for v in 0..nodes {
        off[v + 1] = off[v] + out[v].len();
    }
    let mut adj = vec![0usize; off[nodes]];
    for v in 0..nodes {
        adj[off[v]..off[v + 1]].copy_from_slice(&out[v]);
    }
    // Host BFS.
    let mut reach = vec![false; nodes];
    reach[0] = true;
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        for &u in &adj[off[v]..off[v + 1]] {
            if !reach[u] {
                reach[u] = true;
                stack.push(u);
            }
        }
    }
    (off, adj, reach)
}

/// Build the ptc benchmark.
///
/// Termination uses a pending-task counter (1 per queued node, +1 for
/// the seeded source). Invariant: the computed `REACH` set equals the
/// host-side BFS exactly.
pub fn build(params: PtcParams) -> BuiltWorkload {
    let n = params.nodes;
    let threads = params.threads;
    let (off, adj, reach) = random_digraph(n, params.edges, params.seed);
    let cap = n.next_power_of_two().max(16);

    let mut p = IrProgram::new();
    let q = wsq::register(&mut p, threads, cap, params.scope);
    let reached = p.shared_array("REACH", n * 8);
    let pending = p.shared_line("PENDING");
    let adj_off = p.shared_array("ADJ_OFF", n + 1);
    let adj_arr = p.shared_array("ADJ", adj.len().max(1));
    let scratch = p.array("SCRATCH", threads * 1024);
    for (i, &o) in off.iter().enumerate() {
        p.init_elem(adj_off, i, o as i64);
    }
    for (i, &a) in adj.iter().enumerate() {
        p.init_elem(adj_arr, i, a as i64);
    }
    p.init_elem(reached, 0, 1);
    p.init(pending, 1);
    p.init_elem(q.buf, 0, 1);
    p.init_elem(q.tails, 0, 1);

    for t in 0..threads {
        let task_work = params.task_work;
        p.thread(move |b| {
            b.let_("acc", c(t as i64 + 1));
            b.while_(ld(pending.cell()).gt(c(0)), move |w| {
                emit_acquire_task(w, t, threads);
                w.if_(l("task").gt(c(0)), move |body| {
                    body.let_("v", l("task").sub(c(1)));
                    // Per-task computation: the "relatively large
                    // workload between fences" of ptc.
                    body.let_("k", c(0));
                    body.while_(l("k").lt(c(task_work as i64)), move |cw| {
                        cw.assign(
                            "acc",
                            l("acc")
                                .mul(c(6364136223846793005))
                                .add(l("v"))
                                .bitxor(l("acc").shr(c(31))),
                        );
                        cw.store(
                            scratch
                                .at(c((t * 1024) as i64)
                                    .add(l("acc").bitand(c(1023)).bitand(c(!7)))),
                            l("acc"),
                        );
                        cw.assign("k", l("k").add(c(1)));
                    });
                    // Relax out-neighbours.
                    body.let_("i", ld(adj_off.at(l("v"))));
                    body.let_("end", ld(adj_off.at(l("v").add(c(1)))));
                    body.while_(l("i").lt(l("end")), move |scan| {
                        scan.let_("u", ld(adj_arr.at(l("i"))));
                        scan.cas("claimed", reached.at(l("u").mul(c(8))), c(0), c(1));
                        scan.if_(l("claimed").eq(c(1)), move |cl| {
                            // pending += 1, then publish the task.
                            cl.let_("got", c(0));
                            cl.while_(l("got").eq(c(0)), move |ww| {
                                ww.let_("cur", ld(pending.cell()));
                                ww.cas("got", pending.cell(), l("cur"), l("cur").add(c(1)));
                            });
                            cl.call("Wsq::put", &[c(t as i64), l("u").add(c(1))]);
                        });
                        scan.assign("i", l("i").add(c(1)));
                    });
                    // Task finished: pending -= 1.
                    body.let_("got2", c(0));
                    body.while_(l("got2").eq(c(0)), move |ww| {
                        ww.let_("cur2", ld(pending.cell()));
                        ww.cas("got2", pending.cell(), l("cur2"), l("cur2").sub(c(1)));
                    });
                });
            });
            b.halt();
        });
    }

    let program = compile(&p);
    BuiltWorkload {
        name: "ptc".into(),
        program,
        check: Box::new(move |prog, mem| {
            let base = prog.addr_of("REACH");
            for v in 0..n {
                let got = mem[base + v * 8] != 0;
                if got != reach[v] {
                    return Err(format!(
                        "node {v}: simulated reach={got}, reference={}",
                        reach[v]
                    ));
                }
            }
            if mem[prog.addr_of("PENDING")] != 0 {
                return Err("pending counter nonzero at exit".into());
            }
            Ok(())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::run_for_test as run;
    use sfence_sim::{FenceConfig, MachineConfig};

    fn cfg(fence: FenceConfig, cores: usize) -> MachineConfig {
        let mut cfg = MachineConfig::paper_default().with_fence(fence);
        cfg.num_cores = cores;
        cfg.max_cycles = 500_000_000;
        cfg
    }

    #[test]
    fn closure_matches_host_bfs_under_all_configs() {
        let w = build(PtcParams {
            nodes: 200,
            edges: 500,
            threads: 4,
            seed: 5,
            task_work: 6,
            scope: ScopeMode::Class,
        });
        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            run(&w, cfg(fence, 4));
        }
    }

    #[test]
    fn unreachable_nodes_stay_unreached() {
        // A graph with guaranteed unreachable tail half.
        let w = build(PtcParams {
            nodes: 150,
            edges: 0, // only the built-in chain over the first half
            threads: 2,
            seed: 1,
            task_work: 2,
            scope: ScopeMode::Class,
        });
        let mem = run(&w, cfg(FenceConfig::SFENCE, 2)).mem;
        let base = w.program.addr_of("REACH");
        assert_eq!(mem[base + 149 * 8], 0, "tail node must be unreachable");
        assert_eq!(mem[base + 30 * 8], 1, "chain node must be reachable");
    }
}
