//! Layer 2 of the harness: declarative sweeps.
//!
//! An [`Experiment`] is a named cross product of
//! `workloads × machine/workload axis × fence configs`, built from
//! the workload registry. Running one yields a [`SweepResult`] of
//! structured [`SweepRow`]s in a stable order, regardless of how many
//! worker threads executed the jobs — the simulator is deterministic,
//! so parallel and serial runs are byte-identical once rows are
//! placed by job index.

use crate::backend::BackendId;
use crate::cache::{job_key, ResultCache};
use crate::json::Json;
use crate::runner::run_indexed;
use crate::session::{RunReport, Session, SCHEMA_VERSION};
use crate::shard::Shard;
use sfence_core::PipeEvent;
use sfence_sim::{FenceConfig, MachineConfig, RunExit};
use sfence_workloads::catalog;
use sfence_workloads::{Scale, ScopeMode, WorkloadParams};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The swept parameter, orthogonal to the fence-config dimension.
/// `Level` and `Scope` vary how the workload is *built*; `Backend`
/// varies the execution engine; the rest vary the machine.
#[derive(Debug, Clone, Default)]
pub enum Axis {
    #[default]
    None,
    /// Fig. 12 workload knob.
    Level(Vec<u32>),
    /// Fig. 14 class scope vs set scope.
    Scope(Vec<ScopeMode>),
    /// Fig. 15 memory latency sweep.
    MemLatency(Vec<u64>),
    /// Fig. 16 ROB size sweep.
    RobSize(Vec<usize>),
    /// Store-buffer size sweep (§VI-D sensitivity, `hwsweep`).
    SbSize(Vec<usize>),
    /// Scope-hardware sizing sweeps (§VI-E).
    FsbEntries(Vec<usize>),
    FssEntries(Vec<usize>),
    /// Issue/retire width sweep (both widths move together — the
    /// machine's front/back-end width).
    IssueWidth(Vec<usize>),
    /// Shared L2 capacity sweep (bytes).
    L2Size(Vec<usize>),
    /// Execution-engine sweep: the same cells side by side under
    /// different backends (sim vs functional differential rows).
    Backend(Vec<BackendId>),
}

/// One concrete point of an [`Axis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisPoint {
    None,
    Level(u32),
    Scope(ScopeMode),
    MemLatency(u64),
    RobSize(usize),
    SbSize(usize),
    FsbEntries(usize),
    FssEntries(usize),
    IssueWidth(usize),
    L2Size(usize),
    Backend(BackendId),
}

impl Axis {
    pub fn name(&self) -> &'static str {
        match self {
            Axis::None => "",
            Axis::Level(_) => "level",
            Axis::Scope(_) => "scope",
            Axis::MemLatency(_) => "mem_latency",
            Axis::RobSize(_) => "rob_size",
            Axis::SbSize(_) => "sb_size",
            Axis::FsbEntries(_) => "fsb_entries",
            Axis::FssEntries(_) => "fss_entries",
            Axis::IssueWidth(_) => "issue_width",
            Axis::L2Size(_) => "l2_size",
            Axis::Backend(_) => "backend",
        }
    }

    fn points(&self) -> Vec<AxisPoint> {
        match self {
            Axis::None => vec![AxisPoint::None],
            Axis::Level(v) => v.iter().map(|&x| AxisPoint::Level(x)).collect(),
            Axis::Scope(v) => v.iter().map(|&x| AxisPoint::Scope(x)).collect(),
            Axis::MemLatency(v) => v.iter().map(|&x| AxisPoint::MemLatency(x)).collect(),
            Axis::RobSize(v) => v.iter().map(|&x| AxisPoint::RobSize(x)).collect(),
            Axis::SbSize(v) => v.iter().map(|&x| AxisPoint::SbSize(x)).collect(),
            Axis::FsbEntries(v) => v.iter().map(|&x| AxisPoint::FsbEntries(x)).collect(),
            Axis::FssEntries(v) => v.iter().map(|&x| AxisPoint::FssEntries(x)).collect(),
            Axis::IssueWidth(v) => v.iter().map(|&x| AxisPoint::IssueWidth(x)).collect(),
            Axis::L2Size(v) => v.iter().map(|&x| AxisPoint::L2Size(x)).collect(),
            Axis::Backend(v) => v.iter().map(|&x| AxisPoint::Backend(x)).collect(),
        }
    }
}

impl AxisPoint {
    /// The row's `value` column.
    pub fn value_string(&self) -> String {
        match *self {
            AxisPoint::None => String::new(),
            AxisPoint::Level(x) => x.to_string(),
            AxisPoint::Scope(ScopeMode::Class) => "class".into(),
            AxisPoint::Scope(ScopeMode::Set) => "set".into(),
            AxisPoint::MemLatency(x) => x.to_string(),
            AxisPoint::RobSize(x)
            | AxisPoint::SbSize(x)
            | AxisPoint::FsbEntries(x)
            | AxisPoint::FssEntries(x)
            | AxisPoint::IssueWidth(x)
            | AxisPoint::L2Size(x) => x.to_string(),
            AxisPoint::Backend(b) => b.name().into(),
        }
    }

    fn apply_to_params(&self, params: &mut WorkloadParams) {
        match *self {
            AxisPoint::Level(level) => params.level = level,
            AxisPoint::Scope(scope) => params.scope = scope,
            _ => {}
        }
    }

    fn apply_to_machine(&self, cfg: &mut MachineConfig) {
        match *self {
            AxisPoint::MemLatency(lat) => cfg.mem.mem_latency = lat,
            AxisPoint::RobSize(rob) => cfg.core.rob_size = rob,
            AxisPoint::SbSize(n) => cfg.core.sb_size = n,
            AxisPoint::FsbEntries(n) => cfg.core.scope.fsb_entries = n,
            AxisPoint::FssEntries(n) => cfg.core.scope.fss_entries = n,
            AxisPoint::IssueWidth(n) => {
                cfg.core.issue_width = n;
                cfg.core.retire_width = n;
            }
            AxisPoint::L2Size(n) => cfg.mem.l2_size = n,
            _ => {}
        }
    }

    /// The engine this point selects, if it is a backend point.
    fn backend(&self) -> Option<BackendId> {
        match *self {
            AxisPoint::Backend(b) => Some(b),
            _ => None,
        }
    }
}

/// A declarative sweep specification.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub name: String,
    base: MachineConfig,
    workloads: Vec<(String, WorkloadParams)>,
    fences: Vec<FenceConfig>,
    axis: Axis,
    backend: BackendId,
}

/// One fully-resolved unit of work.
#[derive(Debug, Clone)]
struct Job {
    workload: String,
    params: WorkloadParams,
    fence: FenceConfig,
    point: AxisPoint,
    cfg: MachineConfig,
    backend: BackendId,
}

impl Experiment {
    pub fn new(name: impl Into<String>) -> Self {
        Experiment {
            name: name.into(),
            base: MachineConfig::paper_default(),
            workloads: Vec::new(),
            fences: vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE],
            axis: Axis::None,
            backend: BackendId::Sim,
        }
    }

    /// Base machine configuration every job starts from.
    pub fn base(mut self, cfg: MachineConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Rename the experiment (derived experiments that reuse another
    /// spec under their own registry name).
    pub fn rename(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Execution engine every job runs on (default: the
    /// cycle-accurate simulator). An [`Axis::Backend`] point
    /// overrides this per cell.
    pub fn backend(mut self, backend: BackendId) -> Self {
        self.backend = backend;
        self
    }

    /// Add one registry workload with explicit build parameters. The
    /// name is a Table IV benchmark, a generated litmus scenario
    /// (`litmus/<family>/<seed>`, including the minimized fuzzer
    /// regressions under `litmus/regression/<id>`), or an encoded
    /// fuzzer candidate (`fuzz/<encoded>`) — which is how corpus
    /// entries fan out as `ExperimentSpec` jobs over `sfence-dist`.
    pub fn workload(mut self, name: impl Into<String>, params: WorkloadParams) -> Self {
        let name = name.into();
        assert!(
            catalog::exists(&name),
            "unknown workload {name:?} (not in the registry)"
        );
        self.workloads.push((name, params));
        self
    }

    /// The workload names of this experiment, in spec order
    /// (discovery surface for `sfence-sweep --list`).
    pub fn workload_names(&self) -> Vec<&str> {
        self.workloads.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Add several registry workloads sharing one parameter set.
    pub fn workloads<I, S>(mut self, names: I, params: WorkloadParams) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            self = self.workload(name, params);
        }
        self
    }

    /// Fence configurations to cross with (defaults to `[T, S]`).
    pub fn fences(mut self, fences: impl Into<Vec<FenceConfig>>) -> Self {
        self.fences = fences.into();
        self
    }

    /// Sweep axis (defaults to a single unlabelled point).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axis = axis;
        self
    }

    /// Override the problem scale of every workload added *so far*
    /// (the figure binaries' `--scale small` switch).
    pub fn scale(mut self, scale: Scale) -> Self {
        for (_, params) in &mut self.workloads {
            params.scale = scale;
        }
        self
    }

    fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (workload, params) in &self.workloads {
            for point in self.axis.points() {
                for &fence in &self.fences {
                    let mut params = *params;
                    point.apply_to_params(&mut params);
                    let mut cfg = self.base.clone().with_fence(fence);
                    point.apply_to_machine(&mut cfg);
                    jobs.push(Job {
                        workload: workload.clone(),
                        params,
                        fence,
                        point,
                        cfg,
                        backend: point.backend().unwrap_or(self.backend),
                    });
                }
            }
        }
        jobs
    }

    /// Name of the swept axis (empty when there is none).
    pub fn axis_name(&self) -> &'static str {
        self.axis.name()
    }

    /// The problem scale shared by every workload of this experiment
    /// — `None` when it has no workloads or mixes scales. This is the
    /// value result-store metadata records, so history diffs only
    /// compare runs of the same problem size.
    pub fn uniform_scale(&self) -> Option<Scale> {
        let mut scales = self.workloads.iter().map(|(_, p)| p.scale);
        let first = scales.next()?;
        scales.all(|s| s == first).then_some(first)
    }

    /// The execution backend shared by every job of this experiment —
    /// `None` when an [`Axis::Backend`] sweep mixes engines. Result
    ///-store metadata records this, so history diffs only compare
    /// runs of the same engine.
    pub fn uniform_backend(&self) -> Option<BackendId> {
        let mut backends = self
            .axis
            .points()
            .into_iter()
            .map(|p| p.backend().unwrap_or(self.backend));
        let first = backends.next()?;
        backends.all(|b| b == first).then_some(first)
    }

    /// Total number of runs this experiment performs.
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.axis.points().len() * self.fences.len()
    }

    /// Run every job serially on the calling thread.
    pub fn run_serial(&self) -> SweepResult {
        self.run(1)
    }

    /// Run with `threads` OS worker threads. Row order is identical
    /// to the serial order no matter the thread count or scheduling:
    /// results are placed by job index.
    pub fn run(&self, threads: usize) -> SweepResult {
        let outcome = self.run_with(RunOptions::new(threads));
        SweepResult::from_indexed(&self.name, self.job_count(), outcome.rows)
            .expect("an unsharded, unbudgeted run covers every job")
    }

    /// The job indices belonging to shard `index` of `count`:
    /// round-robin over the deterministic job order, so every shard
    /// gets a near-equal share of each workload and shards are
    /// disjoint and jointly exhaustive.
    pub fn shard(&self, index: usize, count: usize) -> Vec<usize> {
        let shard = Shard::new(index, count);
        (0..self.job_count())
            .filter(|&i| shard.contains(i))
            .collect()
    }

    /// Content-hash cache keys of every job, in job order. A key
    /// commits to the executing backend, the workload name, its build
    /// parameters and the complete machine configuration (fence
    /// config included), so a key collision across distinct cells
    /// needs a SHA-256 collision.
    pub fn job_keys(&self) -> Vec<String> {
        self.jobs()
            .iter()
            .map(|job| job_key(&job.workload, &job.params, &job.cfg, job.backend))
            .collect()
    }

    /// Content hash of the *whole resolved experiment*: the schema
    /// version, name, axis and the cache key of every job in job
    /// order. Two processes agree on this fingerprint exactly when
    /// their job lists are interchangeable — same cells, same indices,
    /// same serialization generation — so the distributed runner's
    /// handshake compares fingerprints and rejects mismatched binaries
    /// instead of corrupting a merge.
    pub fn fingerprint(&self) -> String {
        let doc = Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("experiment", self.name.as_str())
            .field("axis", self.axis.name())
            .field(
                "job_keys",
                Json::Arr(self.job_keys().into_iter().map(Json::from).collect()),
            );
        crate::hash::sha256_hex(doc.canonicalize().to_string_compact().as_bytes())
    }

    /// The configurable execution engine behind [`Experiment::run`]:
    /// optionally restricted to one shard, optionally backed by a
    /// content-addressed result cache (hits skip the simulator,
    /// misses execute and are inserted), optionally budgeted to at
    /// most `max_cells` executed cells (the remainder is reported as
    /// skipped — an interrupted sweep resumes by re-running with the
    /// same cache). Rows come back sorted by job index, so shard
    /// outputs merged with [`SweepResult::from_indexed`] are
    /// byte-identical to a single-process run.
    pub fn run_with(&self, opts: RunOptions) -> RunOutcome {
        let jobs = self.jobs();
        let axis_name = self.axis.name().to_string();
        // Pipe traces never round-trip through serialized reports (see
        // `RunReport::pipe`), so a cache could silently answer a traced
        // job with an event-less report. Static configuration: misuse
        // is a programming error, not a recoverable condition.
        assert!(
            !(opts.pipe_trace && opts.cache.is_some()),
            "pipe tracing and the result cache are mutually exclusive \
             (cached reports carry no pipe events)"
        );
        let selected: Vec<usize> = match (&opts.jobs, opts.shard) {
            (Some(_), Some(_)) => {
                // Static configuration, so misuse is a programming
                // error rather than a recoverable condition.
                panic!("RunOptions::jobs and RunOptions::shard are mutually exclusive")
            }
            (Some(explicit), None) => {
                let mut explicit = explicit.clone();
                explicit.sort_unstable();
                explicit.dedup();
                for &i in &explicit {
                    assert!(
                        i < jobs.len(),
                        "job index {i} out of range ({} jobs)",
                        jobs.len()
                    );
                }
                explicit
            }
            (None, Some(shard)) => (0..jobs.len()).filter(|&i| shard.contains(i)).collect(),
            (None, None) => (0..jobs.len()).collect(),
        };

        let mut cache = opts.cache;
        let mut rows = Vec::with_capacity(selected.len());
        let mut misses: Vec<(usize, Option<String>)> = Vec::new();
        let mut cache_hits = 0;
        for &i in &selected {
            let job = &jobs[i];
            match cache.as_ref() {
                Some(c) => {
                    let key = job_key(&job.workload, &job.params, &job.cfg, job.backend);
                    match c.get(&key) {
                        Some(report) => {
                            cache_hits += 1;
                            rows.push(IndexedRow {
                                index: i,
                                row: row_from_report(job, &axis_name, report),
                            });
                        }
                        None => misses.push((i, Some(key))),
                    }
                }
                None => misses.push((i, None)),
            }
        }

        // Budget applies to *executed* cells only, in job order, so
        // which cells an interrupted run completed is deterministic.
        let budget = opts.max_cells.unwrap_or(misses.len()).min(misses.len());
        let skipped = misses.len() - budget;
        let to_run = &misses[..budget];
        // Progress counts completed cells over every selected cell;
        // cache hits are already done before execution starts.
        let done = AtomicUsize::new(cache_hits);
        let total = selected.len();
        if let (Some(cb), true) = (opts.on_cell, cache_hits > 0) {
            cb(cache_hits, total);
        }
        let reports = run_indexed(to_run.len(), opts.threads, |k| {
            let job = &jobs[to_run[k].0];
            let built = catalog::build(&job.workload, &job.params);
            let backend = job.backend.instantiate();
            let mut cfg = job.cfg.clone();
            cfg.core.pipe_trace |= opts.pipe_trace;
            let report = Session::for_workload(&built)
                .config(cfg)
                .backend(backend.as_ref())
                .run();
            if let Some(cb) = opts.on_cell {
                cb(done.fetch_add(1, Ordering::Relaxed) + 1, total);
            }
            report
        });
        let traces = if opts.pipe_trace {
            to_run
                .iter()
                .zip(&reports)
                .map(|((i, _), report)| (job_label(&jobs[*i]), report.pipe.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let mut cache_write_errors = 0;
        for ((i, key), report) in to_run.iter().zip(&reports) {
            if let (Some(c), Some(key)) = (cache.as_deref_mut(), key.as_deref()) {
                // A failed append (disk full, permissions) must not
                // discard the simulated results already in hand: the
                // cell just won't be cached. Callers surface the count.
                if c.insert(key, report).is_err() {
                    cache_write_errors += 1;
                }
            }
            rows.push(IndexedRow {
                index: *i,
                row: row_from_report(&jobs[*i], &axis_name, report),
            });
        }
        rows.sort_by_key(|r| r.index);
        RunOutcome {
            rows,
            traces,
            stats: RunStats {
                cache_hits,
                executed: budget,
                skipped,
                cache_write_errors,
            },
            complete: skipped == 0,
        }
    }

    /// Run with one worker per available CPU (capped by job count).
    pub fn run_parallel(&self) -> SweepResult {
        self.run(default_threads(self.job_count()))
    }
}

/// One worker per available CPU, capped by the job count.
pub fn default_threads(job_count: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.min(job_count.max(1))
}

/// Options for [`Experiment::run_with`].
pub struct RunOptions<'c> {
    pub threads: usize,
    /// Look jobs up here before executing; insert fresh results.
    pub cache: Option<&'c mut ResultCache>,
    /// Restrict to one shard of the job list.
    pub shard: Option<Shard>,
    /// Restrict to an explicit set of job indices (a distributed
    /// lease). Mutually exclusive with `shard`; indices are
    /// deduplicated, sorted, and must be in range.
    pub jobs: Option<Vec<usize>>,
    /// Execute at most this many uncached cells (`None` = no limit).
    pub max_cells: Option<usize>,
    /// Record pipeline event traces on every executed cell
    /// ([`RunOutcome::traces`]). Mutually exclusive with `cache`:
    /// cached reports carry no pipe events.
    pub pipe_trace: bool,
    /// Completion callback `(done, total)` — invoked once per
    /// finished cell (from worker threads, hence `Sync`) and once up
    /// front for the cache-hit batch. Drives `--progress` meters.
    pub on_cell: Option<&'c (dyn Fn(usize, usize) + Sync)>,
}

impl<'c> RunOptions<'c> {
    pub fn new(threads: usize) -> Self {
        RunOptions {
            threads,
            cache: None,
            shard: None,
            jobs: None,
            max_cells: None,
            pipe_trace: false,
            on_cell: None,
        }
    }

    pub fn cache(mut self, cache: &'c mut ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    pub fn shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Run exactly these job indices — the worker half of a
    /// distributed lease.
    pub fn jobs(mut self, jobs: Vec<usize>) -> Self {
        self.jobs = Some(jobs);
        self
    }

    pub fn max_cells(mut self, max: usize) -> Self {
        self.max_cells = Some(max);
        self
    }

    /// Record pipeline traces on every executed cell.
    pub fn pipe_trace(mut self) -> Self {
        self.pipe_trace = true;
        self
    }

    /// Report per-cell completion (progress meters).
    pub fn on_cell(mut self, cb: &'c (dyn Fn(usize, usize) + Sync)) -> Self {
        self.on_cell = Some(cb);
        self
    }
}

/// Cache/execution accounting of one [`Experiment::run_with`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cells answered from the cache without touching the simulator.
    pub cache_hits: usize,
    /// Cells actually simulated this run.
    pub executed: usize,
    /// Cells left unrun because the `max_cells` budget ran out.
    pub skipped: usize,
    /// Executed cells whose cache append failed (disk full etc.); the
    /// rows are still returned, the cells just aren't cached.
    pub cache_write_errors: usize,
}

/// Rows (tagged with their global job index) plus accounting.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Completed rows, sorted by job index.
    pub rows: Vec<IndexedRow>,
    /// Per executed cell (in job-index order, when
    /// [`RunOptions::pipe_trace`] was set): a human-readable job
    /// label and the cell's merged pipeline event stream.
    pub traces: Vec<(String, Vec<PipeEvent>)>,
    pub stats: RunStats,
    /// Every selected job produced a row (nothing was skipped).
    pub complete: bool,
}

/// A [`SweepRow`] tagged with its global job index — the unit shard
/// workers emit so the parent can merge rows in stable order.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedRow {
    pub index: usize,
    pub row: SweepRow,
}

impl IndexedRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("job", self.index)
            .field("row", self.row.to_json())
    }

    pub fn from_json(json: &Json) -> Result<IndexedRow, String> {
        Ok(IndexedRow {
            index: json
                .get("job")
                .and_then(Json::as_u64)
                .ok_or("missing job index")? as usize,
            row: SweepRow::from_json(json.get("row").ok_or("missing row")?)?,
        })
    }
}

/// Stable human-readable label for one job — names a traced job's
/// process in the Chrome trace viewer.
fn job_label(job: &Job) -> String {
    let mut label = format!("{}/{}", job.workload, job.fence.label());
    let value = job.point.value_string();
    if !value.is_empty() {
        label.push('/');
        label.push_str(&value);
    }
    label
}

fn row_from_report(job: &Job, axis_name: &str, report: &RunReport) -> SweepRow {
    let timed = report.cycles.is_some();
    SweepRow {
        workload: job.workload.clone(),
        fence: job.fence.label().to_string(),
        axis: axis_name.to_string(),
        value: job.point.value_string(),
        backend: report.backend.name().to_string(),
        cycles: report.cycles,
        instrs_retired: report.total_retired(),
        fence_stalls: timed.then(|| report.total_fence_stalls()),
        fence_stall_fraction: timed.then(|| report.fence_stall_fraction()),
        sc_states: report.sc_states.as_ref().map(|s| s.len() as u64),
        exit: match report.exit {
            RunExit::Completed => "completed".into(),
            RunExit::CycleLimit => "cycle_limit".into(),
        },
    }
}

/// One structured result row. Timing columns (`cycles`,
/// `fence_stalls`, `fence_stall_fraction`) are absent on rows from
/// engines without a clock — the JSON omits them rather than
/// fabricating zeros.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    pub workload: String,
    /// Fence-config label (`T`, `S`, `T+`, `S+`).
    pub fence: String,
    /// Axis name (empty when the experiment has no axis).
    pub axis: String,
    /// Axis value rendered as a string (empty when no axis).
    pub value: String,
    /// Name of the engine that executed this cell.
    pub backend: String,
    pub cycles: Option<u64>,
    pub instrs_retired: u64,
    pub fence_stalls: Option<u64>,
    pub fence_stall_fraction: Option<f64>,
    /// Size of the SC-allowed final-state set (enumerative rows
    /// only; the full sets live in the cached `RunReport`s).
    pub sc_states: Option<u64>,
    pub exit: String,
}

impl SweepRow {
    /// Cycle count of a cycle-accurate row; panics on rows from
    /// engines without a clock.
    pub fn timed_cycles(&self) -> u64 {
        self.cycles.unwrap_or_else(|| {
            panic!(
                "row ({}, {}, {:?}) from the {} backend has no cycle count",
                self.workload, self.fence, self.value, self.backend
            )
        })
    }

    /// Fence-stall fraction of a cycle-accurate row; panics on rows
    /// from engines without a clock — like [`SweepRow::timed_cycles`],
    /// a missing value is never silently rendered as zero.
    pub fn timed_stall_fraction(&self) -> f64 {
        self.fence_stall_fraction.unwrap_or_else(|| {
            panic!(
                "row ({}, {}, {:?}) from the {} backend has no fence-stall fraction",
                self.workload, self.fence, self.value, self.backend
            )
        })
    }

    pub fn to_json(&self) -> Json {
        let mut row = Json::obj()
            .field("workload", self.workload.as_str())
            .field("fence", self.fence.as_str());
        if !self.axis.is_empty() {
            row = row
                .field("axis", self.axis.as_str())
                .field("value", self.value.as_str());
        }
        row = row.field("backend", self.backend.as_str());
        if let Some(cycles) = self.cycles {
            row = row.field("cycles", cycles);
        }
        row = row.field("instrs_retired", self.instrs_retired);
        if let Some(stalls) = self.fence_stalls {
            row = row.field("fence_stalls", stalls);
        }
        if let Some(fraction) = self.fence_stall_fraction {
            row = row.field("fence_stall_fraction", fraction);
        }
        if let Some(states) = self.sc_states {
            row = row.field("sc_states", states);
        }
        row.field("exit", self.exit.as_str())
    }

    pub fn from_json(json: &Json) -> Result<SweepRow, String> {
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let opt_u64_field = |key: &str| -> Result<Option<u64>, String> {
            match json.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("bad u64 field {key:?}")),
            }
        };
        Ok(SweepRow {
            workload: str_field("workload")?,
            fence: str_field("fence")?,
            // Axis fields are omitted on axis-less experiments.
            axis: json
                .get("axis")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            value: json
                .get("value")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            backend: str_field("backend")?,
            cycles: opt_u64_field("cycles")?,
            instrs_retired: json
                .get("instrs_retired")
                .and_then(Json::as_u64)
                .ok_or("missing u64 field \"instrs_retired\"")?,
            fence_stalls: opt_u64_field("fence_stalls")?,
            fence_stall_fraction: match json.get("fence_stall_fraction") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("bad f64 field \"fence_stall_fraction\"")?),
            },
            sc_states: opt_u64_field("sc_states")?,
            exit: str_field("exit")?,
        })
    }
}

/// All rows of one experiment, in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    pub experiment: String,
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Reassemble a full result from indexed rows (one or many
    /// shards' worth). Rows are sorted by job index; the merge fails
    /// if any job is missing or duplicated, so a partial or
    /// double-counted shard set cannot masquerade as a complete run.
    pub fn from_indexed(
        experiment: &str,
        job_count: usize,
        mut rows: Vec<IndexedRow>,
    ) -> Result<SweepResult, String> {
        rows.sort_by_key(|r| r.index);
        if rows.len() != job_count {
            return Err(format!(
                "{}: {} rows for {} jobs",
                experiment,
                rows.len(),
                job_count
            ));
        }
        for (expect, row) in rows.iter().enumerate() {
            if row.index != expect {
                return Err(format!(
                    "{}: job {} missing or duplicated (found index {})",
                    experiment, expect, row.index
                ));
            }
        }
        Ok(SweepResult {
            experiment: experiment.to_string(),
            rows: rows.into_iter().map(|r| r.row).collect(),
        })
    }

    /// Find a row by workload / fence label / axis value.
    pub fn row(&self, workload: &str, fence: &str, value: &str) -> &SweepRow {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.fence == fence && r.value == value)
            .unwrap_or_else(|| {
                panic!(
                    "no row for ({workload}, {fence}, {value:?}) in {}",
                    self.experiment
                )
            })
    }

    /// Cycle count of one row (the common lookup); panics when the
    /// row came from an engine without a clock.
    pub fn cycles(&self, workload: &str, fence: &str, value: &str) -> u64 {
        self.row(workload, fence, value).timed_cycles()
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("experiment", self.experiment.as_str())
            .field(
                "rows",
                Json::Arr(self.rows.iter().map(SweepRow::to_json).collect()),
            )
    }

    /// The machine-readable artifact the binaries emit with `--json`.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// A plain ASCII table of the raw rows.
    pub fn to_ascii_table(&self) -> String {
        let mut out = String::new();
        let has_axis = self.rows.iter().any(|r| !r.axis.is_empty());
        let axis_header = self
            .rows
            .first()
            .map(|r| r.axis.as_str())
            .filter(|a| !a.is_empty())
            .unwrap_or("value");
        out += &format!("{}: {} rows\n", self.experiment, self.rows.len());
        if has_axis {
            out += &format!(
                "{:<10} {:<5} {:>12} {:>12} {:>14} {:>8}\n",
                "workload", "fence", axis_header, "cycles", "fence stalls", "stall%"
            );
        } else {
            out += &format!(
                "{:<10} {:<5} {:>12} {:>14} {:>8}\n",
                "workload", "fence", "cycles", "fence stalls", "stall%"
            );
        }
        for r in &self.rows {
            // Timing columns print "-" for rows from engines without
            // a clock (functional/enumerative cells).
            let cycles = r.cycles.map_or("-".into(), |c| c.to_string());
            let stalls = r.fence_stalls.map_or("-".into(), |s| s.to_string());
            let fraction = r
                .fence_stall_fraction
                .map_or("-".into(), |f| format!("{:.2}%", 100.0 * f));
            if has_axis {
                out += &format!(
                    "{:<10} {:<5} {:>12} {:>12} {:>14} {:>8}\n",
                    r.workload, r.fence, r.value, cycles, stalls, fraction
                );
            } else {
                out += &format!(
                    "{:<10} {:<5} {:>12} {:>14} {:>8}\n",
                    r.workload, r.fence, cycles, stalls, fraction
                );
            }
        }
        out
    }
}
