//! Layer 2 of the harness: declarative sweeps.
//!
//! An [`Experiment`] is a named cross product of
//! `workloads × machine/workload axis × fence configs`, built from
//! the workload registry. Running one yields a [`SweepResult`] of
//! structured [`SweepRow`]s in a stable order, regardless of how many
//! worker threads executed the jobs — the simulator is deterministic,
//! so parallel and serial runs are byte-identical once rows are
//! placed by job index.

use crate::json::Json;
use crate::runner::run_indexed;
use crate::session::Session;
use sfence_sim::{FenceConfig, MachineConfig, RunExit};
use sfence_workloads::catalog;
use sfence_workloads::{ScopeMode, WorkloadParams};

/// The swept parameter, orthogonal to the fence-config dimension.
/// `Level` and `Scope` vary how the workload is *built*; the rest
/// vary the machine.
#[derive(Debug, Clone, Default)]
pub enum Axis {
    #[default]
    None,
    /// Fig. 12 workload knob.
    Level(Vec<u32>),
    /// Fig. 14 class scope vs set scope.
    Scope(Vec<ScopeMode>),
    /// Fig. 15 memory latency sweep.
    MemLatency(Vec<u64>),
    /// Fig. 16 ROB size sweep.
    RobSize(Vec<usize>),
    /// Scope-hardware sizing sweeps (§VI-E).
    FsbEntries(Vec<usize>),
    FssEntries(Vec<usize>),
}

/// One concrete point of an [`Axis`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisPoint {
    None,
    Level(u32),
    Scope(ScopeMode),
    MemLatency(u64),
    RobSize(usize),
    FsbEntries(usize),
    FssEntries(usize),
}

impl Axis {
    pub fn name(&self) -> &'static str {
        match self {
            Axis::None => "",
            Axis::Level(_) => "level",
            Axis::Scope(_) => "scope",
            Axis::MemLatency(_) => "mem_latency",
            Axis::RobSize(_) => "rob_size",
            Axis::FsbEntries(_) => "fsb_entries",
            Axis::FssEntries(_) => "fss_entries",
        }
    }

    fn points(&self) -> Vec<AxisPoint> {
        match self {
            Axis::None => vec![AxisPoint::None],
            Axis::Level(v) => v.iter().map(|&x| AxisPoint::Level(x)).collect(),
            Axis::Scope(v) => v.iter().map(|&x| AxisPoint::Scope(x)).collect(),
            Axis::MemLatency(v) => v.iter().map(|&x| AxisPoint::MemLatency(x)).collect(),
            Axis::RobSize(v) => v.iter().map(|&x| AxisPoint::RobSize(x)).collect(),
            Axis::FsbEntries(v) => v.iter().map(|&x| AxisPoint::FsbEntries(x)).collect(),
            Axis::FssEntries(v) => v.iter().map(|&x| AxisPoint::FssEntries(x)).collect(),
        }
    }
}

impl AxisPoint {
    /// The row's `value` column.
    pub fn value_string(&self) -> String {
        match *self {
            AxisPoint::None => String::new(),
            AxisPoint::Level(x) => x.to_string(),
            AxisPoint::Scope(ScopeMode::Class) => "class".into(),
            AxisPoint::Scope(ScopeMode::Set) => "set".into(),
            AxisPoint::MemLatency(x) => x.to_string(),
            AxisPoint::RobSize(x) | AxisPoint::FsbEntries(x) | AxisPoint::FssEntries(x) => {
                x.to_string()
            }
        }
    }

    fn apply_to_params(&self, params: &mut WorkloadParams) {
        match *self {
            AxisPoint::Level(level) => params.level = level,
            AxisPoint::Scope(scope) => params.scope = scope,
            _ => {}
        }
    }

    fn apply_to_machine(&self, cfg: &mut MachineConfig) {
        match *self {
            AxisPoint::MemLatency(lat) => cfg.mem.mem_latency = lat,
            AxisPoint::RobSize(rob) => cfg.core.rob_size = rob,
            AxisPoint::FsbEntries(n) => cfg.core.scope.fsb_entries = n,
            AxisPoint::FssEntries(n) => cfg.core.scope.fss_entries = n,
            _ => {}
        }
    }
}

/// A declarative sweep specification.
#[derive(Debug, Clone)]
pub struct Experiment {
    pub name: String,
    base: MachineConfig,
    workloads: Vec<(String, WorkloadParams)>,
    fences: Vec<FenceConfig>,
    axis: Axis,
}

/// One fully-resolved unit of work.
#[derive(Debug, Clone)]
struct Job {
    workload: String,
    params: WorkloadParams,
    fence: FenceConfig,
    point: AxisPoint,
    cfg: MachineConfig,
}

impl Experiment {
    pub fn new(name: impl Into<String>) -> Self {
        Experiment {
            name: name.into(),
            base: MachineConfig::paper_default(),
            workloads: Vec::new(),
            fences: vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE],
            axis: Axis::None,
        }
    }

    /// Base machine configuration every job starts from.
    pub fn base(mut self, cfg: MachineConfig) -> Self {
        self.base = cfg;
        self
    }

    /// Add one registry workload with explicit build parameters.
    pub fn workload(mut self, name: impl Into<String>, params: WorkloadParams) -> Self {
        let name = name.into();
        assert!(
            catalog::find(&name).is_some(),
            "unknown workload {name:?} (not in the registry)"
        );
        self.workloads.push((name, params));
        self
    }

    /// Add several registry workloads sharing one parameter set.
    pub fn workloads<I, S>(mut self, names: I, params: WorkloadParams) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            self = self.workload(name, params);
        }
        self
    }

    /// Fence configurations to cross with (defaults to `[T, S]`).
    pub fn fences(mut self, fences: impl Into<Vec<FenceConfig>>) -> Self {
        self.fences = fences.into();
        self
    }

    /// Sweep axis (defaults to a single unlabelled point).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axis = axis;
        self
    }

    fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (workload, params) in &self.workloads {
            for point in self.axis.points() {
                for &fence in &self.fences {
                    let mut params = *params;
                    point.apply_to_params(&mut params);
                    let mut cfg = self.base.clone().with_fence(fence);
                    point.apply_to_machine(&mut cfg);
                    jobs.push(Job {
                        workload: workload.clone(),
                        params,
                        fence,
                        point,
                        cfg,
                    });
                }
            }
        }
        jobs
    }

    /// Total number of runs this experiment performs.
    pub fn job_count(&self) -> usize {
        self.workloads.len() * self.axis.points().len() * self.fences.len()
    }

    /// Run every job serially on the calling thread.
    pub fn run_serial(&self) -> SweepResult {
        self.run(1)
    }

    /// Run with `threads` OS worker threads. Row order is identical
    /// to the serial order no matter the thread count or scheduling:
    /// results are placed by job index.
    pub fn run(&self, threads: usize) -> SweepResult {
        let jobs = self.jobs();
        let axis_name = self.axis.name().to_string();
        let rows = run_indexed(jobs.len(), threads, |i| {
            let job = &jobs[i];
            let built = catalog::build(&job.workload, &job.params);
            let report = Session::for_workload(&built).config(job.cfg.clone()).run();
            SweepRow {
                workload: job.workload.clone(),
                fence: job.fence.label().to_string(),
                axis: axis_name.clone(),
                value: job.point.value_string(),
                cycles: report.cycles,
                instrs_retired: report.total_retired(),
                fence_stalls: report.total_fence_stalls(),
                fence_stall_fraction: report.fence_stall_fraction(),
                exit: match report.exit {
                    RunExit::Completed => "completed".into(),
                    RunExit::CycleLimit => "cycle_limit".into(),
                },
            }
        });
        SweepResult {
            experiment: self.name.clone(),
            rows,
        }
    }

    /// Run with one worker per available CPU (capped by job count).
    pub fn run_parallel(&self) -> SweepResult {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run(cpus.min(self.job_count().max(1)))
    }
}

/// One structured result row.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    pub workload: String,
    /// Fence-config label (`T`, `S`, `T+`, `S+`).
    pub fence: String,
    /// Axis name (empty when the experiment has no axis).
    pub axis: String,
    /// Axis value rendered as a string (empty when no axis).
    pub value: String,
    pub cycles: u64,
    pub instrs_retired: u64,
    pub fence_stalls: u64,
    pub fence_stall_fraction: f64,
    pub exit: String,
}

impl SweepRow {
    pub fn to_json(&self) -> Json {
        let mut row = Json::obj()
            .field("workload", self.workload.as_str())
            .field("fence", self.fence.as_str());
        if !self.axis.is_empty() {
            row = row
                .field("axis", self.axis.as_str())
                .field("value", self.value.as_str());
        }
        row.field("cycles", self.cycles)
            .field("instrs_retired", self.instrs_retired)
            .field("fence_stalls", self.fence_stalls)
            .field("fence_stall_fraction", self.fence_stall_fraction)
            .field("exit", self.exit.as_str())
    }
}

/// All rows of one experiment, in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    pub experiment: String,
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Find a row by workload / fence label / axis value.
    pub fn row(&self, workload: &str, fence: &str, value: &str) -> &SweepRow {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.fence == fence && r.value == value)
            .unwrap_or_else(|| {
                panic!(
                    "no row for ({workload}, {fence}, {value:?}) in {}",
                    self.experiment
                )
            })
    }

    /// Cycle count of one row (the common lookup).
    pub fn cycles(&self, workload: &str, fence: &str, value: &str) -> u64 {
        self.row(workload, fence, value).cycles
    }

    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("experiment", self.experiment.as_str())
            .field(
                "rows",
                Json::Arr(self.rows.iter().map(SweepRow::to_json).collect()),
            )
    }

    /// The machine-readable artifact the binaries emit with `--json`.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// A plain ASCII table of the raw rows.
    pub fn to_ascii_table(&self) -> String {
        let mut out = String::new();
        let has_axis = self.rows.iter().any(|r| !r.axis.is_empty());
        let axis_header = self
            .rows
            .first()
            .map(|r| r.axis.as_str())
            .filter(|a| !a.is_empty())
            .unwrap_or("value");
        out += &format!("{}: {} rows\n", self.experiment, self.rows.len());
        if has_axis {
            out += &format!(
                "{:<10} {:<5} {:>12} {:>12} {:>14} {:>8}\n",
                "workload", "fence", axis_header, "cycles", "fence stalls", "stall%"
            );
        } else {
            out += &format!(
                "{:<10} {:<5} {:>12} {:>14} {:>8}\n",
                "workload", "fence", "cycles", "fence stalls", "stall%"
            );
        }
        for r in &self.rows {
            if has_axis {
                out += &format!(
                    "{:<10} {:<5} {:>12} {:>12} {:>14} {:>7.2}%\n",
                    r.workload,
                    r.fence,
                    r.value,
                    r.cycles,
                    r.fence_stalls,
                    100.0 * r.fence_stall_fraction
                );
            } else {
                out += &format!(
                    "{:<10} {:<5} {:>12} {:>14} {:>7.2}%\n",
                    r.workload,
                    r.fence,
                    r.cycles,
                    r.fence_stalls,
                    100.0 * r.fence_stall_fraction
                );
            }
        }
        out
    }
}
