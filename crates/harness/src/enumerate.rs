//! SC reference checking: enumerate the interleavings of a compiled
//! program under sequential consistency and collect every reachable
//! final state.
//!
//! This is the engine behind [`crate::backend::EnumerativeBackend`];
//! it moved here from `sfence-litmus` (which re-exports it as
//! `sfence_litmus::checker`) so every backend the harness can name is
//! also one it can instantiate.
//!
//! The state space is explored as a graph search with three standard
//! reductions:
//!
//! - **Commuting-step reduction.** A static conflict analysis
//!   classifies every memory address: an address is *racy* iff it is
//!   accessed by two or more threads with at least one write. Any
//!   step that is not a racy memory access (arithmetic, branches,
//!   fences — no-ops under SC — and private memory traffic) commutes
//!   with every step of every other thread, so it is executed eagerly
//!   without a scheduling choice. Only racy accesses branch the
//!   search. If any memory instruction's address cannot be resolved
//!   statically the analysis degrades soundly: every memory access is
//!   treated as racy.
//! - **State memoization.** Visited states (pcs, live registers,
//!   written memory) are deduplicated, which also makes spin loops
//!   finite: a spin that re-reads an unchanged flag revisits the same
//!   state and is pruned.
//! - **Bounds.** The search gives up (reporting `complete = false`)
//!   past a configurable state budget, so a pathological input can
//!   never hang the campaign.
//!
//! The *final state* of an execution is the program's observed
//! vector ([`Program::observed_state`]): the values of its `obs_`
//! globals in address order.

use sfence_isa::interp::{InterpStats, ThreadState};
use sfence_isa::{Instr, Operand, Program};
use std::collections::{BTreeSet, HashSet};

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Give up after this many distinct states.
    pub max_states: usize,
    /// Bound on consecutive commuting (non-branching) steps per
    /// state, so a runaway private loop cannot hang the eager phase.
    pub max_local_steps: u64,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            max_states: 250_000,
            max_local_steps: 20_000,
        }
    }
}

/// The result of an enumeration.
#[derive(Debug, Clone)]
pub struct ScOutcomes {
    /// Every SC-reachable final state (observed vectors, sorted).
    pub states: BTreeSet<Vec<i64>>,
    /// False when a bound was hit and `states` may be incomplete.
    pub complete: bool,
    /// Distinct states visited.
    pub states_explored: u64,
}

impl ScOutcomes {
    /// Is an observed final state SC-allowed? Only meaningful when
    /// the enumeration was complete.
    pub fn allows(&self, observed: &[i64]) -> bool {
        self.states.contains(observed)
    }
}

/// Per-program static conflict analysis.
struct Conflicts {
    /// Addresses accessed by ≥2 threads with ≥1 write.
    racy: HashSet<usize>,
    /// Some address could not be resolved statically: treat every
    /// memory access as racy.
    all_visible: bool,
    /// Addresses any thread may write (racy or not) — the memory
    /// footprint a state key must cover. Meaningless when
    /// `all_visible` (the key then covers all of memory).
    written: Vec<usize>,
}

fn static_addr(base: &Operand, offset: i64) -> Option<usize> {
    match base {
        Operand::Imm(v) => usize::try_from(v + offset).ok(),
        Operand::Reg(_) => None,
    }
}

fn mem_ref(instr: &Instr) -> Option<(Option<usize>, bool)> {
    match instr {
        Instr::Load { base, offset, .. } => Some((static_addr(base, *offset), false)),
        Instr::Store { base, offset, .. } => Some((static_addr(base, *offset), true)),
        Instr::Cas { base, offset, .. } => Some((static_addr(base, *offset), true)),
        _ => None,
    }
}

impl Conflicts {
    fn analyze(prog: &Program) -> Conflicts {
        use std::collections::HashMap;
        // addr -> (first accessing thread, accessed by another thread
        // too, written anywhere). Tracking the first accessor exactly
        // (instead of a fixed-width thread bitmask) keeps the
        // classification sound for any thread count.
        struct Acc {
            first: usize,
            multi: bool,
            written: bool,
        }
        let mut seen: HashMap<usize, Acc> = HashMap::new();
        let mut all_visible = false;
        for (t, code) in prog.threads.iter().enumerate() {
            for instr in code {
                if let Some((addr, write)) = mem_ref(instr) {
                    match addr {
                        None => all_visible = true,
                        Some(a) => {
                            let e = seen.entry(a).or_insert(Acc {
                                first: t,
                                multi: false,
                                written: false,
                            });
                            e.multi |= e.first != t;
                            e.written |= write;
                        }
                    }
                }
            }
        }
        let racy = seen
            .iter()
            .filter(|(_, acc)| acc.written && acc.multi)
            .map(|(&a, _)| a)
            .collect();
        let mut written: Vec<usize> = seen
            .iter()
            .filter(|(_, acc)| acc.written)
            .map(|(&a, _)| a)
            .collect();
        written.sort_unstable();
        Conflicts {
            racy,
            all_visible,
            written,
        }
    }

    /// Must this instruction be treated as a scheduling choice?
    fn visible(&self, instr: &Instr) -> bool {
        match mem_ref(instr) {
            None => false,
            Some((addr, _)) => match addr {
                None => true,
                Some(a) => self.all_visible || self.racy.contains(&a),
            },
        }
    }
}

/// One SC machine state.
#[derive(Clone)]
struct State {
    threads: Vec<ThreadState>,
    mem: Vec<i64>,
}

impl State {
    fn initial(prog: &Program) -> State {
        State {
            threads: prog
                .threads
                .iter()
                .map(|_| ThreadState::default())
                .collect(),
            mem: prog.initial_memory(),
        }
    }

    fn all_halted(&self) -> bool {
        self.threads.iter().all(|t| t.halted)
    }

    /// Compact dedup key: pcs + halt flags + nonzero registers +
    /// tracked memory. Registers are sparse (litmus programs use a
    /// handful of locals plus per-statement temporaries), so the key
    /// stays small even though the register file is 128 wide.
    fn key(&self, conflicts: &Conflicts) -> Vec<u8> {
        let mut k = Vec::with_capacity(64);
        for t in &self.threads {
            k.extend_from_slice(&(t.pc as u32).to_le_bytes());
            k.push(t.halted as u8);
            for (i, &r) in t.regs.iter().enumerate() {
                if r != 0 {
                    k.push(i as u8);
                    k.extend_from_slice(&r.to_le_bytes());
                }
            }
            k.push(0xff); // thread separator (no register index is 0xff: NUM_REGS = 128)
        }
        if conflicts.all_visible {
            for &w in &self.mem {
                k.extend_from_slice(&w.to_le_bytes());
            }
        } else {
            for &a in &conflicts.written {
                k.extend_from_slice(&self.mem[a].to_le_bytes());
            }
        }
        k
    }
}

/// Enumerate every SC-reachable final state of `prog`.
pub fn enumerate_sc(prog: &Program, cfg: &CheckerConfig) -> Result<ScOutcomes, String> {
    let conflicts = Conflicts::analyze(prog);
    let mut stats = InterpStats::default();
    let mut visited: HashSet<Vec<u8>> = HashSet::new();
    let mut states = BTreeSet::new();
    let mut complete = true;
    let mut stack = vec![State::initial(prog)];

    while let Some(mut state) = stack.pop() {
        // Eager phase: run every thread up to its next visible step.
        // These steps commute with everything, so executing them in
        // fixed thread order loses no behaviours.
        let mut local_steps = 0u64;
        for t in 0..state.threads.len() {
            loop {
                let ts = &state.threads[t];
                if ts.halted {
                    break;
                }
                let code = &prog.threads[t];
                if ts.pc >= code.len() {
                    return Err(format!("thread {t}: pc {} out of range", ts.pc));
                }
                if conflicts.visible(&code[ts.pc]) {
                    break;
                }
                local_steps += 1;
                if local_steps > cfg.max_local_steps {
                    // Private runaway loop: bail out of this path.
                    complete = false;
                    break;
                }
                state.threads[t]
                    .step(t, code, &mut state.mem, &mut stats)
                    .map_err(|e| e.to_string())?;
            }
            if local_steps > cfg.max_local_steps {
                break;
            }
        }
        if local_steps > cfg.max_local_steps {
            continue;
        }

        if state.all_halted() {
            states.insert(prog.observed_state(&state.mem));
            continue;
        }
        if !visited.insert(state.key(&conflicts)) {
            continue;
        }
        if visited.len() >= cfg.max_states {
            complete = false;
            continue;
        }

        // Branch over every enabled thread's next (visible) step.
        for t in 0..state.threads.len() {
            if state.threads[t].halted {
                continue;
            }
            let mut next = state.clone();
            next.threads[t]
                .step(t, &prog.threads[t], &mut next.mem, &mut stats)
                .map_err(|e| e.to_string())?;
            stack.push(next);
        }
    }

    Ok(ScOutcomes {
        states,
        complete,
        states_explored: visited.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::ir::*;
    use sfence_isa::CompileOpts;

    fn compile(p: &IrProgram) -> Program {
        p.compile(&CompileOpts::default()).expect("compile")
    }

    /// Hand-computed allowed set for the classic MP shape (no spin):
    /// obs = [flag seen, data seen] ∈ {[0,0],[0,42],[1,42]} — never
    /// flag without data.
    #[test]
    fn mp_allowed_states_match_hand_computation() {
        let mut p = IrProgram::new();
        let data = p.shared("data");
        let flag = p.shared("flag");
        let of = p.observer("flag");
        let od = p.observer("data");
        p.thread(move |b| {
            b.store(data.cell(), c(42));
            b.fence();
            b.store(flag.cell(), c(1));
            b.halt();
        });
        p.thread(move |b| {
            b.let_("f", ld(flag.cell()));
            b.fence();
            b.let_("d", ld(data.cell()));
            b.store(of.cell(), l("f"));
            b.store(od.cell(), l("d"));
            b.halt();
        });
        let prog = compile(&p);
        let out = enumerate_sc(&prog, &CheckerConfig::default()).unwrap();
        assert!(out.complete);
        let expect: BTreeSet<Vec<i64>> =
            [vec![0, 0], vec![0, 42], vec![1, 42]].into_iter().collect();
        assert_eq!(out.states, expect);
    }

    /// Hand-computed allowed set for the SB shape: both observations
    /// zero is forbidden; every other combination is reachable.
    #[test]
    fn sb_allowed_states_match_hand_computation() {
        let mut p = IrProgram::new();
        let f0 = p.shared("flag0");
        let f1 = p.shared("flag1");
        let r0 = p.observer("r0");
        let r1 = p.observer("r1");
        p.thread(move |b| {
            b.store(f0.cell(), c(1));
            b.fence();
            b.store(r0.cell(), ld(f1.cell()));
            b.halt();
        });
        p.thread(move |b| {
            b.store(f1.cell(), c(1));
            b.fence();
            b.store(r1.cell(), ld(f0.cell()));
            b.halt();
        });
        let prog = compile(&p);
        let out = enumerate_sc(&prog, &CheckerConfig::default()).unwrap();
        assert!(out.complete);
        let expect: BTreeSet<Vec<i64>> = [vec![0, 1], vec![1, 0], vec![1, 1]].into_iter().collect();
        assert_eq!(out.states, expect);
        assert!(
            !out.allows(&[0, 0]),
            "SB relaxed outcome must be SC-forbidden"
        );
    }

    /// A spinning consumer: memoization must make the spin finite and
    /// the only final state is the published value.
    #[test]
    fn spinning_consumer_terminates_with_single_state() {
        let mut p = IrProgram::new();
        let data = p.shared("data");
        let flag = p.shared("flag");
        let od = p.observer("data");
        p.thread(move |b| {
            b.store(data.cell(), c(7));
            b.fence();
            b.store(flag.cell(), c(1));
            b.halt();
        });
        p.thread(move |b| {
            b.spin_until(ld(flag.cell()).eq(c(1)));
            b.store(od.cell(), ld(data.cell()));
            b.halt();
        });
        let prog = compile(&p);
        let out = enumerate_sc(&prog, &CheckerConfig::default()).unwrap();
        assert!(out.complete);
        let expect: BTreeSet<Vec<i64>> = [vec![7]].into_iter().collect();
        assert_eq!(out.states, expect);
    }

    /// CAS increments never lose updates under SC.
    #[test]
    fn cas_counter_has_exactly_one_final_state() {
        let mut p = IrProgram::new();
        let ctr = p.shared_observer("ctr");
        for _ in 0..2 {
            p.thread(move |b| {
                b.let_("i", c(0));
                b.while_(l("i").lt(c(2)), move |w| {
                    w.let_("ok", c(0));
                    w.while_(l("ok").eq(c(0)), move |ww| {
                        ww.let_("cur", ld(ctr.cell()));
                        ww.cas("ok", ctr.cell(), l("cur"), l("cur").add(c(1)));
                    });
                    w.assign("i", l("i").add(c(1)));
                });
                b.halt();
            });
        }
        let prog = compile(&p);
        let out = enumerate_sc(&prog, &CheckerConfig::default()).unwrap();
        assert!(out.complete);
        let expect: BTreeSet<Vec<i64>> = [vec![4]].into_iter().collect();
        assert_eq!(out.states, expect);
    }

    /// The budget is honoured and reported.
    #[test]
    fn state_budget_reports_incomplete() {
        let mut p = IrProgram::new();
        let a = p.shared("a");
        for t in 0..3 {
            p.thread(move |b| {
                b.let_("i", c(0));
                b.while_(l("i").lt(c(6)), move |w| {
                    w.store(a.cell(), l("i").add(c(t)));
                    w.assign("i", l("i").add(c(1)));
                });
                b.halt();
            });
        }
        let prog = compile(&p);
        let out = enumerate_sc(
            &prog,
            &CheckerConfig {
                max_states: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!out.complete);
    }
}
