//! Process-level sharding and job leasing of an
//! [`Experiment`](crate::Experiment)'s job list.
//!
//! A [`Shard`] is `index/count`; job `i` belongs to shard `i % count`
//! (round-robin over the deterministic job order, so each shard gets
//! a near-equal slice of every workload). Shard workers emit
//! [`IndexedRow`](crate::experiment::IndexedRow)s — rows tagged with
//! their global job index — as JSONL on stdout; the parent merges
//! them with [`SweepResult::from_indexed`](crate::SweepResult),
//! which sorts by index and rejects missing or duplicated jobs, so
//! the merged result is byte-identical to a single-process
//! `run_parallel()`.
//!
//! A [`JobQueue`] is the dynamic counterpart used by the distributed
//! runner (`sfence-dist`): instead of a static partition, jobs are
//! *leased* to named workers with a deadline, completed with a
//! payload, and re-leased when their worker dies (disconnect) or
//! goes silent (lease expiry). Every engine is deterministic, so a
//! job completed twice — by a presumed-dead worker that came back and
//! by its replacement — carries the same payload; the queue keeps the
//! first and ignores the duplicate.

use std::fmt;

/// One shard of a partitioned job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    pub index: usize,
    pub count: usize,
}

impl Shard {
    /// Panics if `index >= count` or `count == 0` — shard specs are
    /// static configuration, so a bad one is a programming error.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(count > 0, "shard count must be positive");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }

    /// Parse the command-line form `index/count`, e.g. `2/8`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?} (expected \"index/count\")"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        if count == 0 {
            return Err(format!("shard count must be positive in {s:?}"));
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Does job `i` belong to this shard?
    pub fn contains(&self, job: usize) -> bool {
        job % self.count == self.index
    }

    /// All shards of a `count`-way partition.
    pub fn all(count: usize) -> Vec<Shard> {
        (0..count).map(|index| Shard::new(index, count)).collect()
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The lifecycle of one job in a [`JobQueue`].
#[derive(Debug, Clone, PartialEq)]
enum JobState<T> {
    /// Nobody is working on it.
    Pending,
    /// Leased to `worker` until `deadline_ms` (caller-supplied clock,
    /// e.g. milliseconds since the coordinator started).
    Leased { worker: String, deadline_ms: u64 },
    /// Finished, payload in hand.
    Done(T),
}

/// A lease-tracking job table: the coordinator half of the
/// distributed shard/merge protocol, kept free of any networking so
/// the leasing semantics are unit-testable.
///
/// Time is an opaque caller-supplied monotonic millisecond counter —
/// the queue never reads a clock, so expiry behavior is deterministic
/// under test.
#[derive(Debug)]
pub struct JobQueue<T> {
    slots: Vec<JobState<T>>,
    done: usize,
    /// Every slot below this index is non-pending, so [`JobQueue::lease`]
    /// scans from here instead of from zero — amortized O(lease size)
    /// over a campaign rather than O(jobs) per call. Releases rewind
    /// it.
    scan_from: usize,
    /// Jobs each worker has leased — *hints*, possibly stale (a job
    /// may have completed or expired since), verified against the
    /// slot before use. They make the per-heartbeat and per-release
    /// work proportional to that worker's leases instead of the whole
    /// job list; the slots stay the single source of truth.
    by_worker: std::collections::HashMap<String, Vec<usize>>,
}

impl<T> JobQueue<T> {
    pub fn new(job_count: usize) -> JobQueue<T> {
        JobQueue {
            slots: (0..job_count).map(|_| JobState::Pending).collect(),
            done: 0,
            scan_from: 0,
            by_worker: std::collections::HashMap::new(),
        }
    }

    /// Total number of jobs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Jobs completed so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Jobs neither done nor currently leased.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, JobState::Pending))
            .count()
    }

    /// Jobs currently leased to some worker (not yet done, not
    /// pending).
    pub fn leased(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, JobState::Leased { .. }))
            .count()
    }

    /// Completed jobs in index order, payloads borrowed.
    pub fn done_payloads(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            JobState::Done(payload) => Some((i, payload)),
            _ => None,
        })
    }

    /// Every job has a payload.
    pub fn is_complete(&self) -> bool {
        self.done == self.slots.len()
    }

    /// Lease up to `max` pending jobs (lowest indices first) to
    /// `worker`, with a deadline of `now_ms + ttl_ms`. Returns the
    /// leased indices — empty when nothing is pending (everything is
    /// done or leased to someone else).
    pub fn lease(&mut self, worker: &str, max: usize, now_ms: u64, ttl_ms: u64) -> Vec<usize> {
        let mut leased = Vec::new();
        let mut i = self.scan_from;
        while i < self.slots.len() && leased.len() < max {
            if matches!(self.slots[i], JobState::Pending) {
                self.slots[i] = JobState::Leased {
                    worker: worker.to_string(),
                    deadline_ms: now_ms.saturating_add(ttl_ms),
                };
                leased.push(i);
            }
            i += 1;
        }
        // Everything in [scan_from, i) is now non-pending: either it
        // already was, or this call just leased it.
        self.scan_from = i;
        if !leased.is_empty() {
            self.by_worker
                .entry(worker.to_string())
                .or_default()
                .extend(&leased);
        }
        leased
    }

    /// Push every lease held by `worker` out to `now_ms + ttl_ms` —
    /// the coordinator calls this on each heartbeat, so a worker that
    /// is alive but slow never loses its jobs. Also compacts the
    /// worker's lease hints, so the per-heartbeat cost tracks its
    /// *current* leases.
    pub fn heartbeat(&mut self, worker: &str, now_ms: u64, ttl_ms: u64) {
        let Some(jobs) = self.by_worker.get_mut(worker) else {
            return;
        };
        let slots = &mut self.slots;
        jobs.retain(|&i| match &mut slots[i] {
            JobState::Leased {
                worker: w,
                deadline_ms,
            } if w == worker => {
                *deadline_ms = now_ms.saturating_add(ttl_ms);
                true
            }
            // Stale hint (completed, expired, or re-leased elsewhere).
            _ => false,
        });
    }

    /// Record `job` as done. Returns `Ok(true)` if this was the first
    /// completion, `Ok(false)` for a duplicate (the payload already in
    /// hand is kept — engines are deterministic, so both are
    /// identical), and `Err` for an out-of-range index (a corrupt or
    /// hostile worker; the caller should drop that connection).
    pub fn complete(&mut self, job: usize, payload: T) -> Result<bool, String> {
        match self.slots.get_mut(job) {
            None => Err(format!(
                "job index {job} out of range ({} jobs)",
                self.slots.len()
            )),
            Some(slot @ (JobState::Pending | JobState::Leased { .. })) => {
                *slot = JobState::Done(payload);
                self.done += 1;
                Ok(true)
            }
            Some(JobState::Done(_)) => Ok(false),
        }
    }

    /// Return every lease held by `worker` to the pending pool — the
    /// re-lease-on-death path when a connection drops. Returns how
    /// many jobs were released.
    pub fn release(&mut self, worker: &str) -> usize {
        let Some(jobs) = self.by_worker.remove(worker) else {
            return 0;
        };
        let mut released = 0;
        for i in jobs {
            if matches!(&self.slots[i], JobState::Leased { worker: w, .. } if w == worker) {
                self.slots[i] = JobState::Pending;
                self.scan_from = self.scan_from.min(i);
                released += 1;
            }
        }
        released
    }

    /// Return every lease whose deadline has passed to the pending
    /// pool — the re-lease path for workers that went silent without
    /// disconnecting. Returns how many jobs were released.
    pub fn expire(&mut self, now_ms: u64) -> usize {
        let mut released = 0;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if matches!(slot, JobState::Leased { deadline_ms, .. } if *deadline_ms < now_ms) {
                *slot = JobState::Pending;
                self.scan_from = self.scan_from.min(i);
                released += 1;
            }
        }
        released
    }

    /// Serialize the queue for a coordinator checkpoint: total job
    /// count, every completed job's payload, and the indices currently
    /// leased. Leases are bound to live connections, so
    /// [`JobQueue::from_json`] reloads them as *pending* — the leased
    /// list is recorded for observability (how much in-flight work a
    /// crash would re-run), not replayed.
    pub fn to_json(&self, payload: impl Fn(&T) -> crate::json::Json) -> crate::json::Json {
        use crate::json::Json;
        let mut done = Vec::new();
        let mut leased = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                JobState::Done(p) => done.push(Json::Arr(vec![Json::from(i), payload(p)])),
                JobState::Leased { .. } => leased.push(Json::from(i)),
                JobState::Pending => {}
            }
        }
        Json::obj()
            .field("jobs", self.slots.len())
            .field("done", Json::Arr(done))
            .field("leased", Json::Arr(leased))
    }

    /// Rebuild a queue from [`JobQueue::to_json`] output. Completed
    /// jobs keep their payloads; everything else (including
    /// previously-leased jobs, whose workers did not survive the
    /// round-trip) comes back pending. Out-of-range or duplicated done
    /// indices are a corrupt snapshot and error out.
    pub fn from_json(
        doc: &crate::json::Json,
        payload: impl Fn(&crate::json::Json) -> Result<T, String>,
    ) -> Result<JobQueue<T>, String> {
        use crate::json::Json;
        let jobs = doc
            .get("jobs")
            .and_then(Json::as_u64)
            .ok_or("queue: missing jobs count")? as usize;
        let mut queue = JobQueue::new(jobs);
        let done = doc
            .get("done")
            .and_then(Json::as_arr)
            .ok_or("queue: missing done list")?;
        for entry in done {
            let pair = entry.as_arr().ok_or("queue: done entry is not a pair")?;
            let [index, row] = pair else {
                return Err("queue: done entry is not an [index, payload] pair".into());
            };
            let index = index
                .as_u64()
                .ok_or("queue: done entry has a non-integer index")?
                as usize;
            match queue.complete(index, payload(row)?) {
                Ok(true) => {}
                Ok(false) => return Err(format!("queue: done index {index} appears twice")),
                Err(e) => return Err(format!("queue: {e}")),
            }
        }
        Ok(queue)
    }

    /// Consume the queue into its payloads, in job order. Errors if
    /// any job never completed.
    pub fn into_payloads(self) -> Result<Vec<T>, String> {
        let total = self.slots.len();
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                JobState::Done(payload) => Ok(payload),
                _ => Err(format!("job {i} of {total} never completed")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for count in 1..=5 {
            let mut seen = vec![0u32; 17];
            for shard in Shard::all(count) {
                for (job, slot) in seen.iter_mut().enumerate() {
                    if shard.contains(job) {
                        *slot += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "count={count}: {seen:?}");
        }
    }

    #[test]
    fn lease_complete_release_expire() {
        let mut q: JobQueue<&str> = JobQueue::new(5);
        assert_eq!(q.len(), 5);
        assert!(!q.is_complete());

        // Leases hand out the lowest pending indices first.
        assert_eq!(q.lease("a", 2, 0, 100), vec![0, 1]);
        assert_eq!(q.lease("b", 10, 0, 100), vec![2, 3, 4]);
        // Nothing pending: an empty lease, not an error.
        assert!(q.lease("c", 1, 0, 100).is_empty());
        assert_eq!(q.pending(), 0);

        // Worker b finishes its jobs.
        for job in [2, 3, 4] {
            assert_eq!(q.complete(job, "row"), Ok(true));
        }
        assert_eq!(q.done(), 3);

        // Worker a disconnects: its leases return to the pool and a
        // replacement picks them up.
        assert_eq!(q.release("a"), 2);
        assert_eq!(q.lease("c", 10, 50, 100), vec![0, 1]);

        // A duplicate completion (the presumed-dead worker came back)
        // is ignored, not double-counted.
        assert_eq!(q.complete(2, "again"), Ok(false));
        assert_eq!(q.done(), 3);

        assert_eq!(q.complete(0, "row"), Ok(true));
        assert_eq!(q.complete(1, "row"), Ok(true));
        assert!(q.is_complete());
        assert_eq!(q.into_payloads().unwrap().len(), 5);
    }

    #[test]
    fn expiry_frees_only_overdue_leases() {
        let mut q: JobQueue<()> = JobQueue::new(3);
        q.lease("slow", 1, 0, 100); // deadline 100
        q.lease("live", 2, 0, 1000); // deadline 1000
        assert_eq!(q.expire(50), 0);
        assert_eq!(q.expire(200), 1); // only "slow" is overdue
        assert_eq!(q.lease("replacement", 10, 200, 100), vec![0]);
        q.complete(0, ()).unwrap();
        // Heartbeats push the live worker's deadlines out past what
        // would otherwise expire them.
        q.heartbeat("live", 500, 1000);
        assert_eq!(q.expire(1200), 0);
        assert_eq!(q.expire(2000), 2);
    }

    #[test]
    fn lease_cursor_skips_settled_prefixes_but_rewinds_on_release() {
        let mut q: JobQueue<u8> = JobQueue::new(6);
        // Drain the front of the queue in small leases: each lease
        // resumes where the previous one stopped.
        assert_eq!(q.lease("a", 2, 0, 100), vec![0, 1]);
        assert_eq!(q.lease("b", 2, 0, 100), vec![2, 3]);
        assert_eq!(q.lease("c", 10, 0, 100), vec![4, 5]);
        assert!(q.lease("d", 1, 0, 100).is_empty());
        // A release in the middle must be visible to the next lease
        // even though the cursor had moved past it.
        assert_eq!(q.release("b"), 2);
        assert_eq!(q.lease("d", 10, 0, 100), vec![2, 3]);
        // Same for expiry-driven releases.
        q.complete(0, 0).unwrap();
        q.complete(1, 0).unwrap();
        q.heartbeat("c", 0, 100);
        q.heartbeat("d", 1000, 100);
        assert_eq!(q.expire(500), 2); // c's 4 and 5
        assert_eq!(q.lease("e", 10, 500, 100), vec![4, 5]);
    }

    #[test]
    fn bad_indices_and_incomplete_queues_error() {
        let mut q: JobQueue<u32> = JobQueue::new(2);
        assert!(q.complete(7, 0).is_err());
        q.complete(0, 1).unwrap();
        assert!(q.into_payloads().is_err());
    }

    #[test]
    fn queue_serialization_round_trips_and_reloads_leases_as_pending() {
        use crate::json::Json;
        let mut q: JobQueue<u64> = JobQueue::new(5);
        q.lease("a", 2, 0, 100); // 0, 1 leased
        q.complete(3, 33).unwrap();
        q.complete(4, 44).unwrap();
        assert_eq!((q.done(), q.leased(), q.pending()), (2, 2, 1));
        assert_eq!(q.done_payloads().collect::<Vec<_>>(), [(3, &33), (4, &44)]);

        let doc = q.to_json(|&v| Json::from(v));
        let back: JobQueue<u64> =
            JobQueue::from_json(&doc, |j| j.as_u64().ok_or("bad payload".into())).unwrap();
        // Done payloads survive; the leased jobs come back pending
        // (their worker connections did not survive the round-trip).
        assert_eq!(back.done(), 2);
        assert_eq!(back.leased(), 0);
        assert_eq!(back.pending(), 3);
        assert_eq!(
            back.done_payloads().collect::<Vec<_>>(),
            [(3, &33), (4, &44)]
        );

        // The reloaded queue leases the previously-leased jobs afresh.
        let mut back = back;
        assert_eq!(back.lease("b", 10, 0, 100), vec![0, 1, 2]);
    }

    #[test]
    fn corrupt_queue_snapshots_error() {
        use crate::json::{self, Json};
        let payload = |j: &Json| j.as_u64().ok_or_else(|| "bad payload".to_string());
        let parse = |text: &str| {
            JobQueue::<u64>::from_json(&json::parse(text).unwrap(), payload)
                .expect_err("corrupt snapshot must error")
        };
        assert!(parse(r#"{"done":[],"leased":[]}"#).contains("jobs"));
        assert!(parse(r#"{"jobs":2,"done":[[7,1]],"leased":[]}"#).contains("out of range"));
        assert!(parse(r#"{"jobs":2,"done":[[0,1],[0,2]],"leased":[]}"#).contains("twice"));
        assert!(parse(r#"{"jobs":2,"done":[[0]],"leased":[]}"#).contains("pair"));
    }

    #[test]
    fn parse_round_trips() {
        let s = Shard::parse("2/8").unwrap();
        assert_eq!(s, Shard::new(2, 8));
        assert_eq!(s.to_string(), "2/8");
        assert!(Shard::parse("8/8").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("nope").is_err());
        assert!(Shard::parse("1").is_err());
    }
}
