//! Process-level sharding of an [`Experiment`](crate::Experiment)'s
//! job list.
//!
//! A [`Shard`] is `index/count`; job `i` belongs to shard `i % count`
//! (round-robin over the deterministic job order, so each shard gets
//! a near-equal slice of every workload). Shard workers emit
//! [`IndexedRow`](crate::experiment::IndexedRow)s — rows tagged with
//! their global job index — as JSONL on stdout; the parent merges
//! them with [`SweepResult::from_indexed`](crate::SweepResult),
//! which sorts by index and rejects missing or duplicated jobs, so
//! the merged result is byte-identical to a single-process
//! `run_parallel()`.

use std::fmt;

/// One shard of a partitioned job list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    pub index: usize,
    pub count: usize,
}

impl Shard {
    /// Panics if `index >= count` or `count == 0` — shard specs are
    /// static configuration, so a bad one is a programming error.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(count > 0, "shard count must be positive");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }

    /// Parse the command-line form `index/count`, e.g. `2/8`.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec {s:?} (expected \"index/count\")"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("bad shard index in {s:?}"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        if count == 0 {
            return Err(format!("shard count must be positive in {s:?}"));
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(Shard { index, count })
    }

    /// Does job `i` belong to this shard?
    pub fn contains(&self, job: usize) -> bool {
        job % self.count == self.index
    }

    /// All shards of a `count`-way partition.
    pub fn all(count: usize) -> Vec<Shard> {
        (0..count).map(|index| Shard::new(index, count)).collect()
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        for count in 1..=5 {
            let mut seen = vec![0u32; 17];
            for shard in Shard::all(count) {
                for (job, slot) in seen.iter_mut().enumerate() {
                    if shard.contains(job) {
                        *slot += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "count={count}: {seen:?}");
        }
    }

    #[test]
    fn parse_round_trips() {
        let s = Shard::parse("2/8").unwrap();
        assert_eq!(s, Shard::new(2, 8));
        assert_eq!(s.to_string(), "2/8");
        assert!(Shard::parse("8/8").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("nope").is_err());
        assert!(Shard::parse("1").is_err());
    }
}
