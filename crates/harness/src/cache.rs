//! Content-addressed result caching: `(backend, workload params,
//! fence config, machine config) -> RunReport`, persisted on disk so
//! repeated sweeps only execute cells they have never seen.
//!
//! **Keys.** A job's key is the SHA-256 of the compact serialization
//! of its *canonical* JSON description — the executing backend's
//! [`BackendId`], workload name, build parameters and the complete
//! `MachineConfig` (which includes the fence config) with every
//! object's fields sorted. Field order therefore never changes a key;
//! any change to a value that could change the run's output does, and
//! cells produced by different engines (cycle-accurate vs functional)
//! can never collide. Every engine is deterministic, so a key names
//! exactly one possible `RunReport`.
//!
//! **Store layout.** A cache directory holds append-only JSONL files;
//! every `*.jsonl` file in the directory is read at open. Each line is
//! one entry: `{"key": "<hex>", "report": {...}}`. Writers append to
//! their own file (shard workers use `shard-<i>.jsonl`, the default
//! writer uses `cache.jsonl`), so concurrent processes never
//! interleave bytes within a line. Corrupt or truncated lines — the
//! tail a killed writer leaves behind — and entries with a mismatched
//! `schema_version` are counted and skipped, never fatal: the cell
//! simply re-runs and is re-appended.

use crate::backend::BackendId;
use crate::hash::sha256_hex;
use crate::json::{self, Json};
use crate::session::RunReport;
use sfence_sim::MachineConfig;
use sfence_workloads::{Scale, ScopeMode, WorkloadParams};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-process counter feeding [`unique_writer_name`], so
/// two caches opened by one process never share a writer file.
static WRITER_NONCE: AtomicU64 = AtomicU64::new(0);

/// An 8-hex-character token identifying this host, derived by hashing
/// the hostname. Two hosts sharing one cache directory (a network
/// filesystem under a distributed sweep) get different tokens. A host
/// with *no discoverable hostname* must not collapse onto a shared
/// constant — two such hosts could then collide on pid too (separate
/// pid namespaces hand out the same small pids) — so the anonymous
/// fallback salts the token with this process's start time instead.
/// Stable within a process either way.
pub fn host_token() -> String {
    static TOKEN: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    TOKEN
        .get_or_init(|| {
            let name = fs::read_to_string("/proc/sys/kernel/hostname")
                .or_else(|_| fs::read_to_string("/etc/hostname"))
                .ok()
                .or_else(|| std::env::var("HOSTNAME").ok())
                .or_else(|| std::env::var("COMPUTERNAME").ok())
                .unwrap_or_default();
            let name = name.trim().to_string();
            if name.is_empty() {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos())
                    .unwrap_or(0);
                sha256_hex(format!("anonymous-host-{nanos}").as_bytes())[..8].to_string()
            } else {
                sha256_hex(name.as_bytes())[..8].to_string()
            }
        })
        .clone()
}

/// A cache writer-file name no concurrent writer — same process,
/// another process, or another *host* — can produce:
/// `<prefix>-<host token>-<pid>-<nonce>.jsonl`. Hosts differ in the
/// token, processes on one host differ in the pid, and writers within
/// one process differ in the monotonic nonce. (Fixed names like
/// `shard-0.jsonl` collide as soon as two hosts run the same shard
/// layout against a shared directory.)
pub fn unique_writer_name(prefix: &str) -> String {
    format!(
        "{prefix}-{}-{}-{}.jsonl",
        host_token(),
        std::process::id(),
        WRITER_NONCE.fetch_add(1, Ordering::Relaxed)
    )
}

/// Canonical JSON description of one sweep cell. The machine config
/// string comes from `MachineConfig::canonical_json` (the one place
/// that enumerates every simulator knob) and is re-parsed here so the
/// whole document canonicalizes as a unit.
pub fn job_canonical_json(
    workload: &str,
    params: &WorkloadParams,
    cfg: &MachineConfig,
    backend: BackendId,
) -> Json {
    let cfg_json =
        json::parse(&cfg.canonical_json()).expect("MachineConfig::canonical_json emits valid JSON");
    // Litmus scenarios (`litmus/<family>/<seed>`) are fully
    // parameterized by their name and the builder ignores `params`;
    // keying on the no-op knobs would fork the cache (re-executing
    // byte-identical cells) whenever e.g. `--scale` changes.
    let params_json = if sfence_workloads::litmus::parse_name(workload).is_some() {
        Json::obj().field("by_name", true)
    } else {
        Json::obj()
            .field("level", params.level)
            .field(
                "scale",
                match params.scale {
                    Scale::Eval => "eval",
                    Scale::Small => "small",
                },
            )
            .field(
                "scope",
                match params.scope {
                    ScopeMode::Class => "class",
                    ScopeMode::Set => "set",
                },
            )
    };
    let mut doc = Json::obj()
        .field("backend", backend.name())
        .field("workload", workload)
        .field("params", params_json)
        .field("cfg", cfg_json);
    // Engine knobs that live outside the MachineConfig (the
    // enumerator's search bounds) must key the cell too — tuning
    // their defaults correctly invalidates previously cached cells.
    if let Some(engine_params) = backend.cache_params() {
        doc = doc.field("engine_params", engine_params);
    }
    doc.canonicalize()
}

/// Content-hash key of one sweep cell: SHA-256 over the canonical
/// description's compact serialization, as lowercase hex. The backend
/// id is part of the description, so sim and functional cells of the
/// same `(workload, cfg)` occupy distinct keys.
pub fn job_key(
    workload: &str,
    params: &WorkloadParams,
    cfg: &MachineConfig,
    backend: BackendId,
) -> String {
    let canonical = job_canonical_json(workload, params, cfg, backend).to_string_compact();
    sha256_hex(canonical.as_bytes())
}

/// An on-disk `key -> RunReport` map over a directory of append-only
/// JSONL files.
pub struct ResultCache {
    dir: PathBuf,
    writer_name: String,
    writer: Option<File>,
    entries: HashMap<String, RunReport>,
    /// Lines skipped at open: unparseable (truncated/corrupt) or a
    /// mismatched `schema_version`.
    skipped_lines: u64,
}

impl ResultCache {
    /// Open (creating the directory if needed) with the default
    /// writer file `cache.jsonl`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<ResultCache> {
        Self::open_with_writer(dir, "cache.jsonl")
    }

    /// Open with a guaranteed-fresh writer file
    /// ([`unique_writer_name`]), safe for any number of concurrent
    /// writers across any number of hosts sharing `dir`.
    pub fn open_unique(dir: impl AsRef<Path>, prefix: &str) -> std::io::Result<ResultCache> {
        Self::open_with_writer(dir, unique_writer_name(prefix))
    }

    /// Open with a caller-chosen writer file name — shard workers
    /// sharing one cache directory each append to their own file so
    /// concurrent writes never interleave.
    pub fn open_with_writer(
        dir: impl AsRef<Path>,
        writer_name: impl Into<String>,
    ) -> std::io::Result<ResultCache> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut cache = ResultCache {
            dir,
            writer_name: writer_name.into(),
            writer: None,
            entries: HashMap::new(),
            skipped_lines: 0,
        };
        cache.load()?;
        Ok(cache)
    }

    fn load(&mut self) -> std::io::Result<()> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "jsonl").unwrap_or(false))
            .collect();
        files.sort();
        for path in files {
            for line in BufReader::new(File::open(&path)?).lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match parse_entry(&line) {
                    Ok((key, report)) => {
                        self.entries.insert(key, report);
                    }
                    Err(_) => self.skipped_lines += 1,
                }
            }
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lines skipped at open because they were corrupt, truncated, or
    /// carried a different schema version.
    pub fn skipped_lines(&self) -> u64 {
        self.skipped_lines
    }

    pub fn get(&self, key: &str) -> Option<&RunReport> {
        self.entries.get(key)
    }

    /// Append an entry to this cache's writer file and the in-memory
    /// map. Each entry is one line, written (and flushed) whole, so a
    /// kill mid-insert corrupts at most the final line of one file.
    pub fn insert(&mut self, key: &str, report: &RunReport) -> std::io::Result<()> {
        if self.writer.is_none() {
            self.writer = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(&self.writer_name))?,
            );
        }
        let mut line = Json::obj()
            .field("key", key)
            .field("report", report.to_json())
            .to_string_compact();
        line.push('\n');
        // One write_all per entry: O_APPEND keeps whole lines intact
        // even if another process appends to the same file.
        let writer = self.writer.as_mut().unwrap();
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
        self.entries.insert(key.to_string(), report.clone());
        Ok(())
    }
}

fn parse_entry(line: &str) -> Result<(String, RunReport), String> {
    let doc = json::parse(line)?;
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or("missing key")?
        .to_string();
    // `RunReport::from_json` rejects mismatched schema_version.
    let report = RunReport::from_json(doc.get("report").ok_or("missing report")?)?;
    Ok((key, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_names_carry_host_pid_and_nonce() {
        let token = host_token();
        assert_eq!(token.len(), 8);
        assert!(token.chars().all(|c| c.is_ascii_hexdigit()));
        // The token is a pure function of the host.
        assert_eq!(token, host_token());

        let a = unique_writer_name("worker");
        let b = unique_writer_name("worker");
        assert_ne!(a, b, "the nonce must separate writers in one process");
        for name in [&a, &b] {
            let stem = name.strip_suffix(".jsonl").expect("jsonl suffix");
            let parts: Vec<&str> = stem.split('-').collect();
            assert_eq!(parts[0], "worker");
            assert_eq!(parts[1], token, "host token embedded in {name}");
            assert_eq!(
                parts[2],
                std::process::id().to_string(),
                "pid embedded in {name}"
            );
            assert!(parts[3].parse::<u64>().is_ok(), "nonce in {name}");
        }
    }

    #[test]
    fn names_for_different_hosts_differ() {
        // Simulate the second host by hashing a different hostname the
        // way host_token does: equal inputs are the only way to equal
        // tokens, so two hosts collide only on a hostname collision —
        // and then pid+nonce still separate the files.
        let here = host_token();
        let elsewhere = sha256_hex(b"some-other-host")[..8].to_string();
        assert_ne!(here, elsewhere);
    }
}
