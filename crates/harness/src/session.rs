//! Layer 1 of the harness: a [`Session`] builder wraps program
//! execution behind one typed surface, and a [`RunReport`] subsumes
//! the old `(RunSummary, Vec<i64>)` tuple — exit status, cycles,
//! per-core/mem/scope stats, the watchpoint log, retired traces and
//! the final memory image, all JSON-serializable.
//!
//! A session executes through a pluggable [`Backend`] (default: the
//! cycle-accurate simulator); [`Session::backend`] swaps in the fast
//! functional engine or the SC enumerator without changing anything
//! above the session.

use crate::backend::{Backend, BackendId, SimBackend};
use crate::json::Json;
use sfence_core::{PipeEvent, RetiredEvent, ScopeUnitStats};
use sfence_cpu::CoreStats;
use sfence_isa::{Addr, ClassId, FenceKind, Program};
use sfence_mem::CoreMemStats;
use sfence_sim::{FenceConfig, MachineConfig, RunExit, WatchEvent};
use sfence_workloads::BuiltWorkload;

type CheckFn<'a> = &'a (dyn Fn(&Program, &[i64]) -> Result<(), String> + Send + Sync);

/// Version tag stamped into every serialized [`RunReport`] (and, via
/// the cache and the result store, every persisted artifact). Bump it
/// whenever the JSON shape or the simulator's observable semantics
/// change incompatibly; readers reject rows from a different version
/// rather than silently mixing incomparable results.
///
/// v2: [`RunReport`] gained the per-core architectural register
/// snapshot (`regs`) — the final-state surface the litmus subsystem
/// observes.
///
/// v3: execution went multi-backend. Every report carries the
/// [`BackendId`] that produced it, `cycles` became optional (absent —
/// not fabricated — on engines without a clock), and enumerative
/// reports carry the SC-allowed state set (`sc_states`,
/// `sc_states_explored`). v2 artifacts are rejected by readers —
/// cache entries are silently skipped and re-run; stores and shard
/// rows error out. Regenerate goldens with `regen-golden`.
///
/// v4: scope-unit instrumentation for the fuzzer. Reports carry a
/// per-core scope-unit path-coverage bitmap (`scope_coverage`, sim
/// only) and `scope_stats` gained the per-core `fss_overflows`
/// counter; `ScopeConfig` gained the fault-injection knob
/// `skip_degrade_on_overflow` (part of the canonical config JSON, so
/// v3 cache keys are invalidated too). Regenerate goldens with
/// `regen-golden`.
pub const SCHEMA_VERSION: u64 = 4;

/// A configured run of one program on the simulated machine.
///
/// ```text
/// Session::for_workload(&w).config(cfg).fence(FenceConfig::SFENCE).run()
/// ```
pub struct Session<'a> {
    program: &'a Program,
    name: &'a str,
    check: Option<CheckFn<'a>>,
    cfg: MachineConfig,
    watch: Vec<Addr>,
    backend: &'a dyn Backend,
}

impl<'a> Session<'a> {
    /// A session over a bare compiled program.
    pub fn for_program(program: &'a Program) -> Self {
        Session {
            program,
            name: "program",
            check: None,
            cfg: MachineConfig::paper_default(),
            watch: Vec::new(),
            backend: &SimBackend,
        }
    }

    /// A session over a built workload: the run additionally asserts
    /// completion and validates the workload's invariants on the
    /// final memory (timing is meaningless on an incorrect run).
    pub fn for_workload(workload: &'a BuiltWorkload) -> Self {
        Session {
            program: &workload.program,
            name: &workload.name,
            check: Some(&workload.check),
            cfg: MachineConfig::paper_default(),
            watch: Vec::new(),
            backend: &SimBackend,
        }
    }

    /// Select the execution engine (default: the cycle-accurate
    /// [`SimBackend`]).
    pub fn backend(mut self, backend: &'a dyn Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the whole machine configuration.
    pub fn config(mut self, cfg: MachineConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set the fence configuration (T, S, T+, S+).
    pub fn fence(mut self, fence: FenceConfig) -> Self {
        self.cfg.core.fence = fence;
        self
    }

    /// Limit the machine to `n` cores.
    pub fn cores(mut self, n: usize) -> Self {
        self.cfg.num_cores = n;
        self
    }

    /// Override the deadlock/livelock cycle guard.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.cfg.max_cycles = cycles;
        self
    }

    /// Watch writes to an address; completed writes land in
    /// [`RunReport::watch_log`] in completion order.
    pub fn watch(mut self, addr: Addr) -> Self {
        self.watch.push(addr);
        self
    }

    /// Watch a named global.
    pub fn watch_var(self, name: &str) -> Self {
        let addr = self.program.addr_of(name);
        self.watch(addr)
    }

    /// Record per-core retired-event traces.
    pub fn trace(mut self) -> Self {
        self.cfg.core.trace = true;
        self
    }

    /// Record the microarchitectural pipeline event trace
    /// ([`RunReport::pipe`]; sim backend only, others report empty).
    pub fn pipe_trace(mut self) -> Self {
        self.cfg.core.pipe_trace = true;
        self
    }

    /// Execute and report. Workload sessions panic on cycle-limit
    /// exits and invariant violations, exactly like the old
    /// `BuiltWorkload::run`. The enumerative backend is exempt from
    /// both: it produces no single final memory to check, and an
    /// exhausted state budget is an ordinary reportable outcome
    /// (`exit = CycleLimit`), not a broken workload run.
    pub fn run(self) -> RunReport {
        let out = self.backend.run(self.program, &self.cfg, &self.watch);
        let report = RunReport {
            backend: out.backend,
            exit: out.exit,
            cycles: out.cycles,
            core_stats: out.core_stats,
            mem_stats: out.mem_stats,
            scope_stats: out.scope_stats,
            scope_coverage: out.scope_coverage,
            watch_log: out.watch_log,
            traces: out.traces,
            pipe: out.pipe,
            mem: out.mem,
            regs: out.regs,
            sc_states: out.sc_states,
            sc_states_explored: out.sc_states_explored,
        };
        if let (Some(check), true) = (self.check, report.backend != BackendId::Enumerative) {
            assert_eq!(
                report.exit,
                RunExit::Completed,
                "{}: run hit the cycle limit",
                self.name
            );
            if let Err(e) = check(self.program, &report.mem) {
                panic!("{}: invariant violated: {e}", self.name);
            }
        }
        report
    }
}

/// Everything one run produced, behind one typed, serializable
/// surface. Fields an engine does not model are empty/absent —
/// see [`crate::backend::EngineOutput`] for the per-backend contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The engine that produced this report.
    pub backend: BackendId,
    pub exit: RunExit,
    /// Total execution time: the cycle at which the last core
    /// drained. `None` on engines without a clock (functional,
    /// enumerative) — absent, never fabricated.
    pub cycles: Option<u64>,
    pub core_stats: Vec<CoreStats>,
    pub mem_stats: CoreMemStats,
    pub scope_stats: Vec<ScopeUnitStats>,
    /// Per-core scope-unit path coverage bitmaps
    /// (`sfence_core::coverage`) — sim only; the fuzzer's corpus key.
    pub scope_coverage: Vec<u32>,
    /// Writes to watched addresses, in completion order.
    pub watch_log: Vec<WatchEvent>,
    /// Per-core retired-event traces (empty unless tracing was on).
    pub traces: Vec<Vec<RetiredEvent>>,
    /// Merged pipeline event trace, sorted by `(cycle, core)` (empty
    /// unless [`Session::pipe_trace`] was set; sim backend only).
    ///
    /// **In-memory only**: deliberately excluded from
    /// [`RunReport::to_json`] — pipe events never enter caches,
    /// stores, shard rows or golden digests, so enabling tracing can
    /// never change a serialized artifact. `from_json` yields an
    /// empty trace.
    pub pipe: Vec<PipeEvent>,
    /// Final flat memory image (empty on the enumerative backend).
    pub mem: Vec<i64>,
    /// Per-core architectural register snapshot (retired state) at
    /// the end of the run.
    pub regs: Vec<Vec<i64>>,
    /// The complete SC-allowed final-state set (enumerative only).
    pub sc_states: Option<Vec<Vec<i64>>>,
    /// Distinct states the enumeration visited (enumerative only).
    pub sc_states_explored: Option<u64>,
}

impl RunReport {
    pub fn completed(&self) -> bool {
        self.exit == RunExit::Completed
    }

    /// Cycle count of a cycle-accurate run; panics on reports from
    /// engines without a clock — call sites comparing timing are
    /// sim-only by construction.
    pub fn timed_cycles(&self) -> u64 {
        self.cycles.unwrap_or_else(|| {
            panic!(
                "report from the {} backend has no cycle count",
                self.backend
            )
        })
    }

    /// Read a word of the final memory.
    pub fn read(&self, addr: Addr) -> i64 {
        self.mem[addr]
    }

    /// Read a named global through the program's symbol table.
    pub fn read_var(&self, program: &Program, name: &str) -> i64 {
        self.mem[program.addr_of(name)]
    }

    /// The observed final state (values of the program's `obs_`
    /// globals, in address order) — what the litmus differential
    /// runner compares against the SC-allowed set.
    pub fn observed_state(&self, program: &Program) -> Vec<i64> {
        program.observed_state(&self.mem)
    }

    /// Average across active cores of the fraction of cycles stalled
    /// on fences (the paper's "Fence Stalls" bar component). Zero on
    /// engines without a clock.
    pub fn fence_stall_fraction(&self) -> f64 {
        sfence_sim::fence_stall_fraction(&self.core_stats, self.cycles.unwrap_or(0))
    }

    /// Aggregate fence stall cycles.
    pub fn total_fence_stalls(&self) -> u64 {
        self.core_stats.iter().map(|s| s.fence_stall_cycles).sum()
    }

    pub fn total_retired(&self) -> u64 {
        self.core_stats.iter().map(|s| s.instrs_retired).sum()
    }

    // -----------------------------------------------------------------
    // JSON

    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema_version", SCHEMA_VERSION)
            .field("backend", self.backend.name())
            .field("exit", exit_str(self.exit))
            .field("cycles", opt_u64_to_json(self.cycles))
            .field(
                "core_stats",
                Json::Arr(self.core_stats.iter().map(core_stats_to_json).collect()),
            )
            .field("mem_stats", mem_stats_to_json(&self.mem_stats))
            .field(
                "scope_stats",
                Json::Arr(self.scope_stats.iter().map(scope_stats_to_json).collect()),
            )
            .field(
                "scope_coverage",
                Json::Arr(
                    self.scope_coverage
                        .iter()
                        .map(|&b| Json::UInt(b as u64))
                        .collect(),
                ),
            )
            .field(
                "watch_log",
                Json::Arr(self.watch_log.iter().map(watch_event_to_json).collect()),
            )
            .field(
                "traces",
                Json::Arr(
                    self.traces
                        .iter()
                        .map(|t| Json::Arr(t.iter().map(retired_event_to_json).collect()))
                        .collect(),
                ),
            )
            .field(
                "mem",
                Json::Arr(self.mem.iter().map(|&w| Json::Int(w)).collect()),
            )
            .field(
                "regs",
                Json::Arr(
                    self.regs
                        .iter()
                        .map(|core| Json::Arr(core.iter().map(|&w| Json::Int(w)).collect()))
                        .collect(),
                ),
            )
            .field(
                "sc_states",
                match &self.sc_states {
                    None => Json::Null,
                    Some(states) => Json::Arr(
                        states
                            .iter()
                            .map(|s| Json::Arr(s.iter().map(|&w| Json::Int(w)).collect()))
                            .collect(),
                    ),
                },
            )
            .field(
                "sc_states_explored",
                opt_u64_to_json(self.sc_states_explored),
            )
    }

    pub fn from_json(json: &Json) -> Result<RunReport, String> {
        let version = get_u64(json, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} (supported: {SCHEMA_VERSION})"
            ));
        }
        Ok(RunReport {
            backend: BackendId::parse(get_str(json, "backend")?)?,
            exit: exit_from_str(get_str(json, "exit")?)?,
            cycles: get_opt_u64(json, "cycles")?,
            core_stats: get_arr(json, "core_stats")?
                .iter()
                .map(core_stats_from_json)
                .collect::<Result<_, _>>()?,
            mem_stats: mem_stats_from_json(json.get("mem_stats").ok_or("missing mem_stats")?)?,
            scope_stats: get_arr(json, "scope_stats")?
                .iter()
                .map(scope_stats_from_json)
                .collect::<Result<_, _>>()?,
            scope_coverage: get_arr(json, "scope_coverage")?
                .iter()
                .map(|b| {
                    b.as_u64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| "bad coverage bitmap".to_string())
                })
                .collect::<Result<_, _>>()?,
            watch_log: get_arr(json, "watch_log")?
                .iter()
                .map(watch_event_from_json)
                .collect::<Result<_, _>>()?,
            traces: get_arr(json, "traces")?
                .iter()
                .map(|t| {
                    t.as_arr()
                        .ok_or_else(|| "trace is not an array".to_string())?
                        .iter()
                        .map(retired_event_from_json)
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?,
            // Pipe traces are in-memory only (see the field docs).
            pipe: Vec::new(),
            mem: get_arr(json, "mem")?
                .iter()
                .map(|w| w.as_i64().ok_or_else(|| "bad memory word".to_string()))
                .collect::<Result<_, _>>()?,
            regs: get_arr(json, "regs")?
                .iter()
                .map(|core| {
                    core.as_arr()
                        .ok_or_else(|| "core regs is not an array".to_string())?
                        .iter()
                        .map(|w| w.as_i64().ok_or_else(|| "bad register word".to_string()))
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<_, _>>()?,
            sc_states: match json.get("sc_states") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_arr()
                        .ok_or("sc_states is not an array")?
                        .iter()
                        .map(|s| {
                            s.as_arr()
                                .ok_or_else(|| "sc state is not an array".to_string())?
                                .iter()
                                .map(|w| w.as_i64().ok_or_else(|| "bad sc state word".to_string()))
                                .collect::<Result<Vec<_>, _>>()
                        })
                        .collect::<Result<_, _>>()?,
                ),
            },
            sc_states_explored: get_opt_u64(json, "sc_states_explored")?,
        })
    }
}

fn exit_str(exit: RunExit) -> &'static str {
    match exit {
        RunExit::Completed => "completed",
        RunExit::CycleLimit => "cycle_limit",
    }
}

fn exit_from_str(s: &str) -> Result<RunExit, String> {
    match s {
        "completed" => Ok(RunExit::Completed),
        "cycle_limit" => Ok(RunExit::CycleLimit),
        other => Err(format!("unknown exit {other:?}")),
    }
}

fn get_str<'j>(json: &'j Json, key: &str) -> Result<&'j str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn get_opt_u64(json: &Json, key: &str) -> Result<Option<u64>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("bad optional u64 field {key:?}")),
    }
}

fn get_bool(json: &Json, key: &str) -> Result<bool, String> {
    json.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing bool field {key:?}"))
}

fn get_arr<'j>(json: &'j Json, key: &str) -> Result<&'j [Json], String> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn opt_u64_to_json(v: Option<u64>) -> Json {
    match v {
        Some(v) => Json::UInt(v),
        None => Json::Null,
    }
}

fn core_stats_to_json(s: &CoreStats) -> Json {
    Json::obj()
        .field("instrs_retired", s.instrs_retired)
        .field("instrs_issued", s.instrs_issued)
        .field("loads", s.loads)
        .field("stores", s.stores)
        .field("cas_ops", s.cas_ops)
        .field("fences_retired", s.fences_retired)
        .field("forwarded_loads", s.forwarded_loads)
        .field("fence_stall_cycles", s.fence_stall_cycles)
        .field("rob_full_stall_cycles", s.rob_full_stall_cycles)
        .field("sb_full_stall_cycles", s.sb_full_stall_cycles)
        .field("load_disambiguation_blocks", s.load_disambiguation_blocks)
        .field("branches_resolved", s.branches_resolved)
        .field("mispredictions", s.mispredictions)
        .field("speculation_replays", s.speculation_replays)
        .field("halted_at", opt_u64_to_json(s.halted_at))
        .field("finished_at", opt_u64_to_json(s.finished_at))
}

fn core_stats_from_json(json: &Json) -> Result<CoreStats, String> {
    Ok(CoreStats {
        instrs_retired: get_u64(json, "instrs_retired")?,
        instrs_issued: get_u64(json, "instrs_issued")?,
        loads: get_u64(json, "loads")?,
        stores: get_u64(json, "stores")?,
        cas_ops: get_u64(json, "cas_ops")?,
        fences_retired: get_u64(json, "fences_retired")?,
        forwarded_loads: get_u64(json, "forwarded_loads")?,
        fence_stall_cycles: get_u64(json, "fence_stall_cycles")?,
        rob_full_stall_cycles: get_u64(json, "rob_full_stall_cycles")?,
        sb_full_stall_cycles: get_u64(json, "sb_full_stall_cycles")?,
        load_disambiguation_blocks: get_u64(json, "load_disambiguation_blocks")?,
        branches_resolved: get_u64(json, "branches_resolved")?,
        mispredictions: get_u64(json, "mispredictions")?,
        speculation_replays: get_u64(json, "speculation_replays")?,
        halted_at: get_opt_u64(json, "halted_at")?,
        finished_at: get_opt_u64(json, "finished_at")?,
    })
}

fn mem_stats_to_json(s: &CoreMemStats) -> Json {
    Json::obj()
        .field("accesses", s.accesses)
        .field("l1_hits", s.l1_hits)
        .field("upgrades", s.upgrades)
        .field("l2_hits", s.l2_hits)
        .field("remote_dirty", s.remote_dirty)
        .field("mem_misses", s.mem_misses)
        .field("invalidations_received", s.invalidations_received)
}

fn mem_stats_from_json(json: &Json) -> Result<CoreMemStats, String> {
    Ok(CoreMemStats {
        accesses: get_u64(json, "accesses")?,
        l1_hits: get_u64(json, "l1_hits")?,
        upgrades: get_u64(json, "upgrades")?,
        l2_hits: get_u64(json, "l2_hits")?,
        remote_dirty: get_u64(json, "remote_dirty")?,
        mem_misses: get_u64(json, "mem_misses")?,
        invalidations_received: get_u64(json, "invalidations_received")?,
    })
}

fn scope_stats_to_json(s: &ScopeUnitStats) -> Json {
    Json::obj()
        .field("fs_starts", s.fs_starts)
        .field("fs_ends", s.fs_ends)
        .field("scoped_mem_ops", s.scoped_mem_ops)
        .field("flagged_mem_ops", s.flagged_mem_ops)
        .field("degraded_fences", s.degraded_fences)
        .field("scoped_fences", s.scoped_fences)
        .field("mispredict_recoveries", s.mispredict_recoveries)
        .field("fss_overflows", s.fss_overflows)
}

fn scope_stats_from_json(json: &Json) -> Result<ScopeUnitStats, String> {
    Ok(ScopeUnitStats {
        fs_starts: get_u64(json, "fs_starts")?,
        fs_ends: get_u64(json, "fs_ends")?,
        scoped_mem_ops: get_u64(json, "scoped_mem_ops")?,
        flagged_mem_ops: get_u64(json, "flagged_mem_ops")?,
        degraded_fences: get_u64(json, "degraded_fences")?,
        scoped_fences: get_u64(json, "scoped_fences")?,
        mispredict_recoveries: get_u64(json, "mispredict_recoveries")?,
        fss_overflows: get_u64(json, "fss_overflows")?,
    })
}

fn watch_event_to_json(ev: &WatchEvent) -> Json {
    Json::obj()
        .field("cycle", ev.cycle)
        .field("core", ev.core)
        .field("addr", ev.addr)
        .field("old", ev.old)
        .field("new", ev.new)
}

fn watch_event_from_json(json: &Json) -> Result<WatchEvent, String> {
    Ok(WatchEvent {
        cycle: get_u64(json, "cycle")?,
        core: get_u64(json, "core")? as usize,
        addr: get_u64(json, "addr")? as usize,
        old: json
            .get("old")
            .and_then(Json::as_i64)
            .ok_or("missing old")?,
        new: json
            .get("new")
            .and_then(Json::as_i64)
            .ok_or("missing new")?,
    })
}

fn fence_kind_str(kind: FenceKind) -> &'static str {
    match kind {
        FenceKind::Global => "global",
        FenceKind::Class => "class",
        FenceKind::Set => "set",
    }
}

fn fence_kind_from_str(s: &str) -> Result<FenceKind, String> {
    match s {
        "global" => Ok(FenceKind::Global),
        "class" => Ok(FenceKind::Class),
        "set" => Ok(FenceKind::Set),
        other => Err(format!("unknown fence kind {other:?}")),
    }
}

fn retired_event_to_json(ev: &RetiredEvent) -> Json {
    match *ev {
        RetiredEvent::FsStart(ClassId(cid)) => {
            Json::obj().field("ev", "fs_start").field("cid", cid)
        }
        RetiredEvent::FsEnd => Json::obj().field("ev", "fs_end"),
        RetiredEvent::Mem {
            id,
            flagged,
            issue,
            complete,
        } => Json::obj()
            .field("ev", "mem")
            .field("id", id)
            .field("flagged", flagged)
            .field("issue", issue)
            .field("complete", complete),
        RetiredEvent::Fence { kind, issue } => Json::obj()
            .field("ev", "fence")
            .field("kind", fence_kind_str(kind))
            .field("issue", issue),
    }
}

fn retired_event_from_json(json: &Json) -> Result<RetiredEvent, String> {
    match get_str(json, "ev")? {
        "fs_start" => Ok(RetiredEvent::FsStart(ClassId(get_u64(json, "cid")? as u32))),
        "fs_end" => Ok(RetiredEvent::FsEnd),
        "mem" => Ok(RetiredEvent::Mem {
            id: get_u64(json, "id")?,
            flagged: get_bool(json, "flagged")?,
            issue: get_u64(json, "issue")?,
            complete: get_u64(json, "complete")?,
        }),
        "fence" => Ok(RetiredEvent::Fence {
            kind: fence_kind_from_str(get_str(json, "kind")?)?,
            issue: get_u64(json, "issue")?,
        }),
        other => Err(format!("unknown retired event {other:?}")),
    }
}

/// Speedup of S-Fence over traditional fences for a workload under a
/// base machine config: the paper's headline metric.
pub fn speedup_s_over_t(w: &BuiltWorkload, base: &MachineConfig) -> f64 {
    let t = Session::for_workload(w)
        .config(base.clone())
        .fence(FenceConfig::TRADITIONAL)
        .run();
    let s = Session::for_workload(w)
        .config(base.clone())
        .fence(FenceConfig::SFENCE)
        .run();
    t.timed_cycles() as f64 / s.timed_cycles() as f64
}
