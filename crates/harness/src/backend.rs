//! The execution-backend abstraction: one trait, three engines.
//!
//! Everything above the engines (the [`Session`](crate::Session)
//! builder, [`Experiment`](crate::Experiment) sweeps, the result
//! cache, sharding, the stores and the litmus campaigns) runs
//! programs through the [`Backend`] trait and consumes the one
//! [`EngineOutput`] shape, so each layer can pick the cheapest engine
//! that answers its question:
//!
//! - [`SimBackend`] — the cycle-accurate out-of-order multicore
//!   simulator (`sfence_sim::execute`). The only engine that reports
//!   timing (cycles, stall breakdowns, watchpoints, retired traces);
//!   the default everywhere, and bit-identical to the pre-trait
//!   `Session` output.
//! - [`FunctionalBackend`] — a fast sequentially-consistent
//!   interpreter over `sfence_isa::interp`, stepping the threads in a
//!   deterministic round-robin. Reports the final memory, registers
//!   and observed (`obs_*`) state with the cycle fields *absent* (not
//!   fabricated): correctness-only sweeps skip the timing model
//!   entirely.
//! - [`EnumerativeBackend`] — the SC reference checker
//!   ([`crate::enumerate`]): bounded interleaving enumeration with
//!   partial-order reduction, returning the complete SC-allowed
//!   final-state set instead of one final state.
//!
//! A backend's identity ([`BackendId`]) is part of every result-cache
//! key ([`crate::cache::job_key`]), so cells produced by different
//! engines can never collide.

use crate::enumerate::{enumerate_sc, CheckerConfig};
use crate::json::Json;
use sfence_core::{PipeEvent, RetiredEvent, ScopeUnitStats};
use sfence_cpu::CoreStats;
use sfence_isa::interp::{InterpStats, ThreadState};
use sfence_isa::{Addr, Program, NUM_REGS};
use sfence_mem::CoreMemStats;
use sfence_sim::{execute, MachineConfig, RunExit, WatchEvent};

/// Identity of an execution engine — the discriminant that selects an
/// engine by name (`--backend`), tags every report
/// (`crate::RunReport::backend`) and feeds the result-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendId {
    /// Cycle-accurate out-of-order simulation ([`SimBackend`]).
    #[default]
    Sim,
    /// Fast functional SC interpretation ([`FunctionalBackend`]).
    Functional,
    /// Bounded SC interleaving enumeration ([`EnumerativeBackend`]).
    Enumerative,
}

impl BackendId {
    /// The stable name used in CLI flags, JSON and cache keys.
    pub fn name(&self) -> &'static str {
        match self {
            BackendId::Sim => "sim",
            BackendId::Functional => "functional",
            BackendId::Enumerative => "enumerative",
        }
    }

    /// Parse a `--backend` argument.
    pub fn parse(s: &str) -> Result<BackendId, String> {
        match s {
            "sim" => Ok(BackendId::Sim),
            "functional" => Ok(BackendId::Functional),
            "enumerative" => Ok(BackendId::Enumerative),
            other => Err(format!(
                "unknown backend {other:?} (expected sim|functional|enumerative)"
            )),
        }
    }

    /// Instantiate the engine this id names, with default engine
    /// parameters (the per-run knobs all come from the
    /// `MachineConfig` handed to [`Backend::run`]).
    pub fn instantiate(&self) -> Box<dyn Backend> {
        match self {
            BackendId::Sim => Box::new(SimBackend),
            BackendId::Functional => Box::new(FunctionalBackend),
            BackendId::Enumerative => Box::new(EnumerativeBackend::default()),
        }
    }

    /// Does this engine report cycle-accurate timing? Rows from
    /// non-timing engines carry no cycle/stall fields at all.
    pub fn timed(&self) -> bool {
        matches!(self, BackendId::Sim)
    }

    /// Engine parameters beyond the `MachineConfig` that determine a
    /// run's output — the result cache mixes this into the job key.
    /// Kept next to [`BackendId::instantiate`] so the key always
    /// describes the engine a sweep will actually run: if
    /// `instantiate` ever constructs an engine differently, this must
    /// change with it.
    pub fn cache_params(&self) -> Option<Json> {
        match self {
            // Sim and functional are fully described by the
            // `MachineConfig` (the functional fuel derives from it).
            BackendId::Sim | BackendId::Functional => None,
            // The enumerator's bounds change its output (exit status,
            // completeness of the state set).
            BackendId::Enumerative => {
                let checker = CheckerConfig::default();
                Some(
                    Json::obj()
                        .field("max_states", checker.max_states)
                        .field("max_local_steps", checker.max_local_steps),
                )
            }
        }
    }
}

impl std::fmt::Display for BackendId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one engine run produced. Engines that do not model a
/// dimension leave it empty (`Vec`) or absent (`None`) — nothing is
/// fabricated: only [`SimBackend`] reports `cycles`, timing stats,
/// watchpoints and traces; only [`EnumerativeBackend`] reports
/// `sc_states` (and no single final memory).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutput {
    /// The engine that produced this output.
    pub backend: BackendId,
    pub exit: RunExit,
    /// Total execution time; `None` on engines without a clock.
    pub cycles: Option<u64>,
    /// Per-core stats. The functional backend fills only the
    /// architectural event counters (instructions, loads, stores, CAS,
    /// fences); all timing counters are zero there by construction.
    pub core_stats: Vec<CoreStats>,
    pub mem_stats: CoreMemStats,
    pub scope_stats: Vec<ScopeUnitStats>,
    /// Per-core scope-unit path coverage bitmaps
    /// (`sfence_core::coverage`) — sim only; the fuzzer's corpus key.
    pub scope_coverage: Vec<u32>,
    /// Writes to watched addresses in completion order (sim only).
    pub watch_log: Vec<WatchEvent>,
    /// Per-core retired-event traces (sim only, and only when
    /// tracing is enabled).
    pub traces: Vec<Vec<RetiredEvent>>,
    /// Merged pipeline event trace, sorted by `(cycle, core)` (sim
    /// only, and only when `cfg.core.pipe_trace` is set).
    pub pipe: Vec<PipeEvent>,
    /// Final flat memory image (empty on the enumerative backend,
    /// which explores *many* final states).
    pub mem: Vec<i64>,
    /// Per-core architectural register snapshot at the end of the run.
    pub regs: Vec<Vec<i64>>,
    /// The complete SC-allowed final-state set (observed `obs_*`
    /// vectors, sorted) — enumerative backend only.
    pub sc_states: Option<Vec<Vec<i64>>>,
    /// Distinct states the enumeration visited.
    pub sc_states_explored: Option<u64>,
}

impl EngineOutput {
    /// An output skeleton for engines without a cycle-accurate
    /// machine: everything empty/absent except identity and exit.
    fn untimed(backend: BackendId, exit: RunExit) -> EngineOutput {
        EngineOutput {
            backend,
            exit,
            cycles: None,
            core_stats: Vec::new(),
            mem_stats: CoreMemStats::default(),
            scope_stats: Vec::new(),
            scope_coverage: Vec::new(),
            watch_log: Vec::new(),
            traces: Vec::new(),
            pipe: Vec::new(),
            mem: Vec::new(),
            regs: Vec::new(),
            sc_states: None,
            sc_states_explored: None,
        }
    }
}

/// One execution engine. `Sync` so a single instance can serve every
/// worker thread of a parallel sweep or campaign.
pub trait Backend: Sync {
    /// The engine's identity (cache-key discriminant, report tag).
    fn id(&self) -> BackendId;

    /// Run `program` under `cfg`, watching writes to `watch`
    /// (engines without a completion order ignore the watch list).
    ///
    /// Engines interpret the relevant subset of `cfg`: the simulator
    /// honours every knob; the functional backend derives its
    /// instruction budget from `max_cycles` (scaled by the machine's
    /// peak retirement rate) and shapes its register snapshot by
    /// `num_cores`; the enumerative backend uses neither (its bounds
    /// are its own [`CheckerConfig`]).
    fn run(&self, program: &Program, cfg: &MachineConfig, watch: &[Addr]) -> EngineOutput;
}

// ---------------------------------------------------------------------
// Sim

/// The cycle-accurate machine (`sfence_sim::execute`) behind the
/// trait. Output is bit-identical to calling `execute` directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend;

impl Backend for SimBackend {
    fn id(&self) -> BackendId {
        BackendId::Sim
    }

    fn run(&self, program: &Program, cfg: &MachineConfig, watch: &[Addr]) -> EngineOutput {
        let out = execute(program, cfg.clone(), watch);
        EngineOutput {
            backend: BackendId::Sim,
            exit: out.summary.exit,
            cycles: Some(out.summary.cycles),
            core_stats: out.summary.core_stats,
            mem_stats: out.summary.mem_stats,
            scope_stats: out.summary.scope_stats,
            scope_coverage: out.summary.scope_coverage,
            watch_log: out.watch_log,
            traces: out.traces,
            pipe: out.pipe,
            mem: out.mem,
            regs: out.regs,
            sc_states: None,
            sc_states_explored: None,
        }
    }
}

// ---------------------------------------------------------------------
// Functional

/// A fast functional engine: every thread steps one instruction per
/// round under sequential consistency (deterministic round-robin, so
/// spin loops always make progress), against a flat memory image.
///
/// Orders of magnitude cheaper than the simulator — no ROB, store
/// buffers, caches or cycle accounting — and therefore the engine of
/// choice for correctness-only sweeps and differential checking. The
/// report carries the final memory, per-thread registers and real
/// architectural event counts; cycle fields are absent, not zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct FunctionalBackend;

impl Backend for FunctionalBackend {
    fn id(&self) -> BackendId {
        BackendId::Functional
    }

    fn run(&self, program: &Program, cfg: &MachineConfig, _watch: &[Addr]) -> EngineOutput {
        let n = program.num_threads();
        let mut threads: Vec<ThreadState> = (0..n).map(|_| ThreadState::default()).collect();
        let mut stats = vec![InterpStats::default(); n];
        let mut mem = program.initial_memory();
        // `max_cycles` scales into the instruction budget by the
        // machine's peak retirement rate (`num_cores × retire_width`
        // instructions per cycle): any budget that lets the simulator
        // retire a program lets the interpreter finish it, so a
        // sim-valid `max_cycles` can never spuriously cycle-limit the
        // functional run of the same program.
        let peak_retire = (cfg.num_cores.max(n) * cfg.core.retire_width).max(1) as u64;
        let fuel = cfg.max_cycles.saturating_mul(peak_retire);
        let mut steps = 0u64;
        let mut exit = RunExit::Completed;
        'run: loop {
            let mut live = false;
            for t in 0..n {
                if threads[t].halted {
                    continue;
                }
                if steps >= fuel {
                    exit = RunExit::CycleLimit;
                    break 'run;
                }
                steps += 1;
                threads[t]
                    .step(t, &program.threads[t], &mut mem, &mut stats[t])
                    .unwrap_or_else(|e| panic!("functional backend: {e}"));
                live = true;
            }
            if !live {
                break;
            }
        }

        let cores = cfg.num_cores.max(n);
        let mut core_stats = vec![CoreStats::default(); cores];
        let mut regs = vec![vec![0i64; NUM_REGS]; cores];
        for t in 0..n {
            let s = &stats[t];
            // Architectural event counts are real in a functional run;
            // every timing counter stays at its zero default.
            core_stats[t].instrs_retired = s.instrs;
            core_stats[t].instrs_issued = s.instrs;
            core_stats[t].loads = s.loads;
            core_stats[t].stores = s.stores;
            core_stats[t].cas_ops = s.cas_attempts;
            core_stats[t].fences_retired = s.fences;
            regs[t] = threads[t].regs.to_vec();
        }
        EngineOutput {
            core_stats,
            mem,
            regs,
            ..EngineOutput::untimed(BackendId::Functional, exit)
        }
    }
}

// ---------------------------------------------------------------------
// Enumerative

/// The SC reference checker behind the trait: enumerates every
/// SC-reachable final state (bounded, with partial-order reduction
/// and memoization) and reports the allowed-state set. `exit` is
/// `Completed` only when the enumeration was exhaustive; a hit bound
/// reports `CycleLimit` and the (possibly incomplete) set.
#[derive(Debug, Clone, Default)]
pub struct EnumerativeBackend {
    pub checker: CheckerConfig,
}

impl EnumerativeBackend {
    pub fn new(checker: CheckerConfig) -> Self {
        EnumerativeBackend { checker }
    }
}

impl Backend for EnumerativeBackend {
    fn id(&self) -> BackendId {
        BackendId::Enumerative
    }

    fn run(&self, program: &Program, _cfg: &MachineConfig, _watch: &[Addr]) -> EngineOutput {
        let out = enumerate_sc(program, &self.checker)
            .unwrap_or_else(|e| panic!("enumerative backend: {e}"));
        let exit = if out.complete {
            RunExit::Completed
        } else {
            RunExit::CycleLimit
        };
        EngineOutput {
            sc_states: Some(out.states.into_iter().collect()),
            sc_states_explored: Some(out.states_explored),
            ..EngineOutput::untimed(BackendId::Enumerative, exit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::ir::*;
    use sfence_isa::CompileOpts;

    fn mp_program() -> Program {
        let mut p = IrProgram::new();
        let data = p.shared("data");
        let flag = p.shared("flag");
        let od = p.observer("data");
        p.thread(move |b| {
            b.store(data.cell(), c(7));
            b.fence();
            b.store(flag.cell(), c(1));
            b.halt();
        });
        p.thread(move |b| {
            b.spin_until(ld(flag.cell()).eq(c(1)));
            // Covering fence on the consumer side too, so the weak
            // machine is as strong as SC on this shape and the
            // cross-backend agreement test below is meaningful.
            b.fence();
            b.store(od.cell(), ld(data.cell()));
            b.halt();
        });
        p.compile(&CompileOpts::default()).expect("compile")
    }

    #[test]
    fn ids_round_trip_through_names() {
        for id in [
            BackendId::Sim,
            BackendId::Functional,
            BackendId::Enumerative,
        ] {
            assert_eq!(BackendId::parse(id.name()), Ok(id));
            assert_eq!(id.instantiate().id(), id);
        }
        assert!(BackendId::parse("nonesuch").is_err());
    }

    #[test]
    fn functional_runs_spinning_consumers_to_completion() {
        let prog = mp_program();
        let cfg = MachineConfig::paper_default();
        let out = FunctionalBackend.run(&prog, &cfg, &[]);
        assert_eq!(out.exit, RunExit::Completed);
        assert_eq!(out.cycles, None, "no clock, no cycles");
        assert_eq!(prog.observed_state(&out.mem), vec![7]);
        // Real architectural counts, per thread.
        assert!(out.core_stats[0].stores >= 2);
        assert!(out.core_stats[1].loads >= 1);
        assert_eq!(out.core_stats[0].fence_stall_cycles, 0);
        // Register snapshot covers the whole (padded) machine shape.
        assert_eq!(out.regs.len(), cfg.num_cores);
    }

    #[test]
    fn functional_budget_exhaustion_reports_cycle_limit() {
        let prog = mp_program();
        let mut cfg = MachineConfig::paper_default();
        // The instruction budget is max_cycles × peak retirement rate
        // (num_cores × retire_width = 4 here): one cycle buys 4
        // steps, far fewer than the program needs.
        cfg.num_cores = 2;
        cfg.max_cycles = 1;
        let out = FunctionalBackend.run(&prog, &cfg, &[]);
        assert_eq!(out.exit, RunExit::CycleLimit);
    }

    /// The fuel contract: a `max_cycles` that lets the *simulator*
    /// finish must always let the interpreter finish, even though the
    /// sim retires multiple instructions per cycle.
    #[test]
    fn sim_sufficient_budget_is_functional_sufficient() {
        let prog = mp_program();
        let mut cfg = MachineConfig::paper_default();
        cfg.num_cores = 2;
        let sim = SimBackend.run(&prog, &cfg, &[]);
        assert_eq!(sim.exit, RunExit::Completed);
        // The tightest sim-valid guard.
        cfg.max_cycles = sim.cycles.unwrap();
        let fun = FunctionalBackend.run(&prog, &cfg, &[]);
        assert_eq!(fun.exit, RunExit::Completed);
    }

    #[test]
    fn enumerative_reports_the_allowed_set() {
        let prog = mp_program();
        let out = EnumerativeBackend::default().run(&prog, &MachineConfig::paper_default(), &[]);
        assert_eq!(out.exit, RunExit::Completed);
        assert_eq!(out.sc_states, Some(vec![vec![7]]));
        assert!(out.sc_states_explored.unwrap() > 0);
        assert!(out.mem.is_empty(), "no single final memory");
    }

    #[test]
    fn sim_and_functional_agree_on_final_state() {
        let prog = mp_program();
        let mut cfg = MachineConfig::paper_default();
        cfg.num_cores = 2;
        let sim = SimBackend.run(&prog, &cfg, &[]);
        let fun = FunctionalBackend.run(&prog, &cfg, &[]);
        assert_eq!(sim.exit, RunExit::Completed);
        assert_eq!(prog.observed_state(&sim.mem), prog.observed_state(&fun.mem));
    }
}
