//! A small, dependency-free JSON value type with a writer and a
//! strict recursive-descent parser.
//!
//! The container image carries no external crates, so the harness
//! rolls its own serialization. Design points that matter here:
//!
//! - Objects preserve insertion order (`Vec<(String, Json)>`), so
//!   serialization is deterministic — the sweep runner's
//!   parallel-equals-serial guarantee is checked on the emitted bytes.
//! - Integers are kept distinct from floats (`i64`/`u64` vs `f64`),
//!   so cycle counts round-trip exactly.
//! - Floats are written with Rust's shortest-roundtrip `Display`,
//!   which re-parses to the identical `f64`.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer (covers final-memory words).
    Int(i64),
    /// Unsigned integer (covers cycle counts).
    UInt(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object; panics on non-objects (builder
    /// misuse, not data-dependent).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Canonical form: every object's fields sorted by key,
    /// recursively (arrays keep their order — element order is
    /// semantically significant). Two documents that differ only in
    /// field order canonicalize to identical values, so their compact
    /// serializations — and therefore their content hashes — agree.
    pub fn canonicalize(self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.into_iter().map(Json::canonicalize).collect()),
            Json::Obj(fields) => {
                let mut fields: Vec<(String, Json)> = fields
                    .into_iter()
                    .map(|(k, v)| (k, v.canonicalize()))
                    .collect();
                fields.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(fields)
            }
            other => other,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Pretty serialization, two-space indent.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let mut s = String::new();
        let _ = write!(s, "{v}");
        // `Display` omits ".0" on integral floats; keep the float/int
        // distinction visible so round-trips preserve the variant.
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; rejects trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let len = utf8_len(bytes[start]);
                let chunk = bytes
                    .get(start..start + len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !is_float {
        if let Ok(v) = text.parse::<i64>() {
            // Non-negative integers parse back as UInt so u64 fields
            // round-trip through their own variant.
            return Ok(if v >= 0 {
                Json::UInt(v as u64)
            } else {
                Json::Int(v)
            });
        }
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let doc = Json::obj()
            .field("name", "sweep \"x\"\n")
            .field("cycles", u64::MAX)
            .field("word", -42i64)
            .field("frac", 0.1875f64)
            .field("flag", true)
            .field("none", Json::Null)
            .field("rows", Json::Arr(vec![Json::UInt(1), Json::Int(-2)]));
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back.to_string_compact(), doc.to_string_compact());
        }
    }

    #[test]
    fn u64_max_survives() {
        let text = Json::UInt(u64::MAX).to_string_compact();
        assert_eq!(parse(&text).unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn float_display_is_reparsable() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 12345.6789] {
            let text = Json::Num(v).to_string_compact();
            match parse(&text).unwrap() {
                Json::Num(back) => assert_eq!(back, v),
                other => panic!("float reparsed as {other:?}"),
            }
        }
        // Integral floats keep their ".0" marker.
        assert_eq!(Json::Num(2.0).to_string_compact(), "2.0");
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let a = parse(r#"{"b":{"y":1,"x":2},"a":[{"q":1,"p":2}]}"#).unwrap();
        let b = parse(r#"{"a":[{"p":2,"q":1}],"b":{"x":2,"y":1}}"#).unwrap();
        assert_eq!(
            a.canonicalize().to_string_compact(),
            b.canonicalize().to_string_compact()
        );
        // Arrays keep element order: [1,2] and [2,1] stay distinct.
        let c = parse("[1,2]").unwrap().canonicalize();
        assert_eq!(c.to_string_compact(), "[1,2]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }
}
