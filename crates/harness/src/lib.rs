//! # sfence-harness
//!
//! The experiment substrate of the Fence Scoping reproduction, in two
//! layers:
//!
//! - **[`Session`]** (layer 1): a builder over one program/workload
//!   run. Replaces the old `Machine::new` + `run_program` call sites
//!   and returns a [`RunReport`] — exit status, cycles, per-core /
//!   memory / scope-unit stats, watchpoint log, retired traces and
//!   the final memory, all JSON-serializable through [`json`].
//!   Sessions execute through a pluggable [`Backend`] — the
//!   cycle-accurate simulator (default), a fast functional SC
//!   interpreter, or the SC interleaving enumerator ([`enumerate`]) —
//!   selected per run with [`Session::backend`] / per sweep with
//!   [`Experiment::backend`] and keyed into every cache entry.
//! - **[`Experiment`]** (layer 2): a declarative sweep over the
//!   workload registry (`sfence_workloads::catalog`) crossed with
//!   fence configs and machine/workload axes, executed
//!   deterministically in parallel across OS threads with stable row
//!   ordering, emitting structured JSON rows and ASCII tables.
//!
//! The paper figures in `sfence-bench` are thin `Experiment`
//! descriptions; the examples and integration tests drive `Session`
//! directly.
//!
//! On top of the two layers sits the sweep-at-scale machinery (see
//! `README.md` and the ROADMAP's "Running sweeps" notes):
//!
//! - **[`cache`]**: a content-addressed on-disk `RunReport` cache —
//!   each cell is keyed by the SHA-256 of its canonical JSON
//!   description, so repeated sweeps only execute new cells and an
//!   interrupted sweep resumes by skipping cache hits.
//! - **[`store`]**: an append-only JSONL [`ResultStore`] of completed
//!   runs with injected metadata (git describe, timestamp), plus
//!   row-level diffing against history.
//! - **[`shard`]**: deterministic round-robin partitioning of an
//!   experiment's job list across processes; shard outputs merge (via
//!   [`SweepResult::from_indexed`]) into rows byte-identical to a
//!   single-process run.

pub mod backend;
pub mod cache;
pub mod enumerate;
pub mod experiment;
pub mod hash;
pub mod json;
pub mod runner;
pub mod session;
pub mod shard;
pub mod store;

pub use backend::{
    Backend, BackendId, EngineOutput, EnumerativeBackend, FunctionalBackend, SimBackend,
};
pub use cache::{host_token, job_canonical_json, job_key, unique_writer_name, ResultCache};
pub use enumerate::{enumerate_sc, CheckerConfig, ScOutcomes};
pub use experiment::{
    default_threads, Axis, AxisPoint, Experiment, IndexedRow, RunOptions, RunOutcome, RunStats,
    SweepResult, SweepRow,
};
pub use json::Json;
pub use runner::run_indexed;
pub use session::{speedup_s_over_t, RunReport, Session, SCHEMA_VERSION};
pub use shard::{JobQueue, Shard};
pub use store::{diff_rows, ResultStore, RunMeta, StoredRun, SweepDiff};
