//! # sfence-harness
//!
//! The experiment substrate of the Fence Scoping reproduction, in two
//! layers:
//!
//! - **[`Session`]** (layer 1): a builder over one program/workload
//!   run. Replaces the old `Machine::new` + `run_program` call sites
//!   and returns a [`RunReport`] — exit status, cycles, per-core /
//!   memory / scope-unit stats, watchpoint log, retired traces and
//!   the final memory, all JSON-serializable through [`json`].
//! - **[`Experiment`]** (layer 2): a declarative sweep over the
//!   workload registry (`sfence_workloads::catalog`) crossed with
//!   fence configs and machine/workload axes, executed
//!   deterministically in parallel across OS threads with stable row
//!   ordering, emitting structured JSON rows and ASCII tables.
//!
//! The paper figures in `sfence-bench` are thin `Experiment`
//! descriptions; the examples and integration tests drive `Session`
//! directly.

pub mod experiment;
pub mod json;
pub mod runner;
pub mod session;

pub use experiment::{Axis, AxisPoint, Experiment, SweepResult, SweepRow};
pub use json::Json;
pub use runner::run_indexed;
pub use session::{speedup_s_over_t, RunReport, Session};
