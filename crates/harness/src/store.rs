//! The append-only JSONL results store: a durable history of sweep
//! runs that new results diff against.
//!
//! One run is a `meta` line followed by one `row` line per sweep row,
//! in stable row order:
//!
//! ```text
//! {"kind":"meta","schema_version":3,"experiment":"fig12","axis":"level","scale":"eval","backend":"sim","git":"v0.1.0-3-gabc","timestamp":1700000000,"rows":48}
//! {"kind":"row","row":{"workload":"dekker","fence":"T",...}}
//! ...
//! ```
//!
//! `git` and `timestamp` are *injected* by the caller (the sweep
//! binary shells out to `git describe` and reads the clock; tests and
//! CI pass fixed values), so store bytes are deterministic whenever
//! the inputs are. A run is appended in a single buffered write after
//! it completes — interrupted sweeps write nothing, so resuming an
//! interrupted sweep yields a store byte-identical to an
//! uninterrupted one.
//!
//! On read, unparseable lines (a torn tail from a killed writer) are
//! counted and skipped, and a run whose meta line declares more rows
//! than actually follow it — a writer killed between kernel writes —
//! is dropped (`torn_runs`) rather than served as history. A
//! well-formed meta line with a different `schema_version` is an
//! error: silently comparing rows across schema generations is
//! exactly the bug the tag exists to prevent.

use crate::experiment::{SweepResult, SweepRow};
use crate::json::{self, Json};
use crate::session::SCHEMA_VERSION;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Experiment metadata stamped on every stored run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    pub experiment: String,
    /// Axis name (empty for axis-less experiments).
    pub axis: String,
    /// Problem scale the run used (`eval` / `small`). Part of the
    /// identity a diff matches on: cycle counts across scales are
    /// incomparable.
    pub scale: String,
    /// Execution backend the run used (`sim` / `functional` /
    /// `enumerative`, or `mixed` for `Axis::Backend` sweeps). Part of
    /// the identity a diff matches on for the same reason as `scale`:
    /// rows from different engines are incomparable.
    pub backend: String,
    /// `git describe` (or whatever provenance string the caller
    /// injects).
    pub git: String,
    /// Unix seconds, injected by the caller.
    pub timestamp: u64,
    pub schema_version: u64,
}

impl RunMeta {
    pub fn new(
        experiment: impl Into<String>,
        axis: impl Into<String>,
        scale: impl Into<String>,
        backend: impl Into<String>,
        git: impl Into<String>,
        timestamp: u64,
    ) -> RunMeta {
        RunMeta {
            experiment: experiment.into(),
            axis: axis.into(),
            scale: scale.into(),
            backend: backend.into(),
            git: git.into(),
            timestamp,
            schema_version: SCHEMA_VERSION,
        }
    }
}

/// One run read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    pub meta: RunMeta,
    pub rows: Vec<SweepRow>,
}

/// Everything a store read produced.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreContents {
    /// Runs in file (append) order.
    pub runs: Vec<StoredRun>,
    /// Unparseable lines skipped (torn tails, foreign garbage).
    pub skipped_lines: u64,
    /// Runs dropped because fewer rows followed the meta line than it
    /// declared — a writer killed mid-append. Never surfaced as data.
    pub torn_runs: u64,
}

/// An append-only JSONL file of sweep runs.
#[derive(Debug, Clone)]
pub struct ResultStore {
    path: PathBuf,
}

impl ResultStore {
    pub fn new(path: impl AsRef<Path>) -> ResultStore {
        ResultStore {
            path: path.as_ref().to_path_buf(),
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one completed run: the meta line plus every row, built
    /// as one buffer and written in a single call.
    pub fn append(&self, meta: &RunMeta, result: &SweepResult) -> std::io::Result<()> {
        let mut buf = String::new();
        let meta_line = Json::obj()
            .field("kind", "meta")
            .field("schema_version", meta.schema_version)
            .field("experiment", meta.experiment.as_str())
            .field("axis", meta.axis.as_str())
            .field("scale", meta.scale.as_str())
            .field("backend", meta.backend.as_str())
            .field("git", meta.git.as_str())
            .field("timestamp", meta.timestamp)
            .field("rows", result.rows.len())
            .to_string_compact();
        buf.push_str(&meta_line);
        buf.push('\n');
        for row in &result.rows {
            let row_line = Json::obj()
                .field("kind", "row")
                .field("row", row.to_json())
                .to_string_compact();
            buf.push_str(&row_line);
            buf.push('\n');
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(buf.as_bytes())?;
        file.flush()
    }

    /// Read the whole store. A missing file is an empty store; a
    /// mismatched `schema_version` on any meta line is an error.
    pub fn read(&self) -> Result<StoreContents, String> {
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(StoreContents {
                    runs: Vec::new(),
                    skipped_lines: 0,
                    torn_runs: 0,
                })
            }
            Err(e) => return Err(format!("open {}: {e}", self.path.display())),
        };
        let mut runs: Vec<StoredRun> = Vec::new();
        // Row count each meta line declared, parallel to `runs`.
        let mut declared: Vec<u64> = Vec::new();
        let mut skipped = 0u64;
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| format!("read {}: {e}", self.path.display()))?;
            if line.trim().is_empty() {
                continue;
            }
            let doc = match json::parse(&line) {
                Ok(doc) => doc,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            };
            match doc.get("kind").and_then(Json::as_str) {
                Some("meta") => {
                    // The one fatal case: a well-formed version tag
                    // that differs from ours. Anything else malformed
                    // about a meta line is foreign garbage — counted
                    // and skipped like any other unreadable line.
                    if let Some(version) = doc.get("schema_version").and_then(Json::as_u64) {
                        if version != SCHEMA_VERSION {
                            return Err(format!(
                                "store {} holds schema_version {version} (supported: {SCHEMA_VERSION})",
                                self.path.display()
                            ));
                        }
                    }
                    match parse_meta(&doc) {
                        Ok((meta, rows)) => {
                            declared.push(rows);
                            runs.push(StoredRun {
                                meta,
                                rows: Vec::new(),
                            });
                        }
                        Err(_) => skipped += 1,
                    }
                }
                Some("row") => match runs.last_mut() {
                    Some(run) => match doc.get("row").map(SweepRow::from_json) {
                        Some(Ok(row)) => run.rows.push(row),
                        _ => skipped += 1,
                    },
                    // A row with no preceding meta: torn head.
                    None => skipped += 1,
                },
                _ => skipped += 1,
            }
        }
        // Drop runs whose meta declared more rows than followed: the
        // trace of a writer killed mid-append must never pass for a
        // complete run.
        let mut torn = 0u64;
        let runs = runs
            .into_iter()
            .zip(declared)
            .filter_map(|(run, want)| {
                if run.rows.len() as u64 == want {
                    Some(run)
                } else {
                    torn += 1;
                    None
                }
            })
            .collect();
        Ok(StoreContents {
            runs,
            skipped_lines: skipped,
            torn_runs: torn,
        })
    }

    /// The most recent stored run of `experiment`, if any.
    pub fn latest(&self, experiment: &str) -> Result<Option<StoredRun>, String> {
        Ok(self
            .read()?
            .runs
            .into_iter()
            .rev()
            .find(|run| run.meta.experiment == experiment))
    }

    /// Every stored run of `experiment` at `scale` on `backend`,
    /// most recent first — the comparable history of one experiment
    /// identity (cycle counts across scales or engines are
    /// incomparable, so those never mix).
    pub fn history_at(
        &self,
        experiment: &str,
        scale: &str,
        backend: &str,
    ) -> Result<Vec<StoredRun>, String> {
        Ok(self
            .read()?
            .runs
            .into_iter()
            .rev()
            .filter(|run| {
                run.meta.experiment == experiment
                    && run.meta.scale == scale
                    && run.meta.backend == backend
            })
            .collect())
    }

    /// The most recent stored run of `experiment` at `scale` on
    /// `backend` — the default diff target; `--diff-run K` reaches
    /// deeper into [`ResultStore::history_at`].
    pub fn latest_at(
        &self,
        experiment: &str,
        scale: &str,
        backend: &str,
    ) -> Result<Option<StoredRun>, String> {
        Ok(self
            .history_at(experiment, scale, backend)?
            .into_iter()
            .next())
    }
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("meta line missing {key:?}"))
}

/// Parse a meta line into `(RunMeta, declared row count)`. The
/// schema_version has already been checked against ours.
fn parse_meta(doc: &Json) -> Result<(RunMeta, u64), String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_u64)
        .ok_or("meta line missing rows")?;
    let meta = RunMeta {
        experiment: get_str(doc, "experiment")?,
        axis: get_str(doc, "axis")?,
        scale: get_str(doc, "scale")?,
        backend: get_str(doc, "backend")?,
        git: get_str(doc, "git")?,
        timestamp: doc
            .get("timestamp")
            .and_then(Json::as_u64)
            .ok_or("meta line missing timestamp")?,
        schema_version: doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("meta line missing schema_version")?,
    };
    Ok((meta, rows))
}

/// One row present in both runs whose numbers moved.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    pub old: SweepRow,
    pub new: SweepRow,
}

/// Row-level difference between two runs of the same experiment,
/// keyed by `(workload, fence, value)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepDiff {
    /// Rows only in the new run.
    pub added: Vec<SweepRow>,
    /// Rows only in the old run.
    pub removed: Vec<SweepRow>,
    /// Rows in both whose measurements differ.
    pub changed: Vec<RowChange>,
}

impl SweepDiff {
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Human-readable one-line-per-entry rendering.
    pub fn to_report(&self) -> String {
        // Untimed rows (functional/enumerative cells) have no cycle
        // count to print.
        let fmt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
        let mut out = String::new();
        for row in &self.removed {
            out += &format!(
                "- {} {} {}: {} cycles\n",
                row.workload,
                row.fence,
                row.value,
                fmt(row.cycles)
            );
        }
        for row in &self.added {
            out += &format!(
                "+ {} {} {}: {} cycles\n",
                row.workload,
                row.fence,
                row.value,
                fmt(row.cycles)
            );
        }
        for change in &self.changed {
            out += &format!(
                "~ {} {} {}: {} -> {} cycles, {} -> {} fence stalls\n",
                change.new.workload,
                change.new.fence,
                change.new.value,
                fmt(change.old.cycles),
                fmt(change.new.cycles),
                fmt(change.old.fence_stalls),
                fmt(change.new.fence_stalls),
            );
        }
        out
    }
}

/// Diff `new` against `old`, matching rows by
/// `(workload, fence, value)`.
pub fn diff_rows(old: &[SweepRow], new: &[SweepRow]) -> SweepDiff {
    let key = |r: &SweepRow| (r.workload.clone(), r.fence.clone(), r.value.clone());
    let mut diff = SweepDiff::default();
    for new_row in new {
        match old.iter().find(|o| key(o) == key(new_row)) {
            None => diff.added.push(new_row.clone()),
            Some(old_row) => {
                if old_row != new_row {
                    diff.changed.push(RowChange {
                        old: old_row.clone(),
                        new: new_row.clone(),
                    });
                }
            }
        }
    }
    for old_row in old {
        if !new.iter().any(|n| key(n) == key(old_row)) {
            diff.removed.push(old_row.clone());
        }
    }
    diff
}
