//! The parallel job runner: a fixed pool of scoped OS threads pulling
//! job indices off a shared atomic counter. Results land in their
//! job's slot, so output order is the spec order no matter which
//! thread ran what when.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(0..n)` on `threads` worker threads and collect the results
/// in index order. `threads <= 1` degenerates to a plain serial loop
/// on the calling thread.
///
/// A panicking job (e.g. a workload invariant violation) panics the
/// whole call once every worker has stopped, mirroring serial
/// behavior.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                slots.lock().unwrap()[i] = Some(result);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|slot| slot.expect("every job index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = run_indexed(100, 8, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(37, 1, |i| (i, i * i));
        let parallel = run_indexed(37, 6, |i| (i, i * i));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_jobs() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 3 failed")]
    fn job_panics_propagate() {
        run_indexed(8, 4, |i| {
            if i == 3 {
                panic!("job 3 failed");
            }
            i
        });
    }
}
