//! The content-addressed result cache: key stability, hit/miss
//! accounting, and recovery from corrupt or schema-mismatched
//! entries.

use sfence_harness::json::{self, Json};
use sfence_harness::{
    hash, job_canonical_json, job_key, Axis, BackendId, Experiment, ResultCache, RunOptions,
    SweepResult,
};
use sfence_sim::{FenceConfig, MachineConfig};
use sfence_workloads::WorkloadParams;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh scratch directory per test (std-only; no tempfile crate).
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sfence-cache-test-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_experiment() -> Experiment {
    Experiment::new("cache-test")
        .workloads(["dekker", "msn"], WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::Level(vec![1, 2]))
}

#[test]
fn hash_is_stable_across_field_reorderings() {
    // The same document with object fields permuted (nested too)
    // must canonicalize — and therefore hash — identically.
    let a = json::parse(
        r#"{"workload":"dekker","cfg":{"num_cores":8,"core":{"rob_size":128,"trace":false}}}"#,
    )
    .unwrap();
    let b = json::parse(
        r#"{"cfg":{"core":{"trace":false,"rob_size":128},"num_cores":8},"workload":"dekker"}"#,
    )
    .unwrap();
    let key = |j: Json| hash::sha256_hex(j.canonicalize().to_string_compact().as_bytes());
    assert_eq!(key(a.clone()), key(b));
    // ...and any value change must move the hash.
    let c = json::parse(
        r#"{"workload":"dekker","cfg":{"num_cores":4,"core":{"rob_size":128,"trace":false}}}"#,
    )
    .unwrap();
    assert_ne!(key(a), key(c));
}

#[test]
fn job_keys_separate_every_dimension() {
    let params = WorkloadParams::small();
    let cfg = MachineConfig::paper_default();
    let base = job_key("dekker", &params, &cfg, BackendId::Sim);
    // Same inputs -> same key.
    assert_eq!(base, job_key("dekker", &params, &cfg, BackendId::Sim));
    // Workload, params and machine config each move the key.
    assert_ne!(base, job_key("msn", &params, &cfg, BackendId::Sim));
    assert_ne!(
        base,
        job_key("dekker", &params.level(5), &cfg, BackendId::Sim)
    );
    assert_ne!(
        base,
        job_key(
            "dekker",
            &params,
            &cfg.clone().with_fence(FenceConfig::TRADITIONAL),
            BackendId::Sim,
        )
    );
    assert_ne!(
        base,
        job_key("dekker", &params, &cfg.clone().with_rob(64), BackendId::Sim)
    );
    // The canonical description is itself in canonical (sorted) form.
    let canon = job_canonical_json("dekker", &params, &cfg, BackendId::Sim);
    assert_eq!(
        canon.to_string_compact(),
        canon.clone().canonicalize().to_string_compact()
    );
}

#[test]
fn cache_hit_miss_accounting_and_round_trip() {
    let dir = scratch_dir("hits");
    let exp = small_experiment();

    let mut cache = ResultCache::open(&dir).unwrap();
    let first = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert!(first.complete);
    assert_eq!(first.stats.executed, exp.job_count());
    assert_eq!(first.stats.cache_hits, 0);

    // A second run over a fresh handle answers everything from disk.
    let mut cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len(), exp.job_count());
    let second = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert!(second.complete);
    assert_eq!(second.stats.executed, 0);
    assert_eq!(second.stats.cache_hits, exp.job_count());

    // Cached rows are byte-identical to executed rows.
    let a = SweepResult::from_indexed("cache-test", exp.job_count(), first.rows).unwrap();
    let b = SweepResult::from_indexed("cache-test", exp.job_count(), second.rows).unwrap();
    assert_eq!(a.to_json_string(), b.to_json_string());
    // And both match an uncached parallel run.
    assert_eq!(a.to_json_string(), exp.run_parallel().to_json_string());
}

#[test]
fn truncated_cache_line_is_skipped_and_rerun() {
    let dir = scratch_dir("truncate");
    let exp = small_experiment();
    let mut cache = ResultCache::open(&dir).unwrap();
    exp.run_with(RunOptions::new(2).cache(&mut cache));
    drop(cache);

    // Chop the file mid-line, as a killed writer would.
    let path = dir.join("cache.jsonl");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();

    let mut cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.skipped_lines(), 1, "exactly the torn line is lost");
    assert_eq!(cache.len(), exp.job_count() - 1);

    // The lost cell re-runs; everything else still hits.
    let outcome = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert!(outcome.complete);
    assert_eq!(outcome.stats.executed, 1);
    assert_eq!(outcome.stats.cache_hits, exp.job_count() - 1);
    assert_eq!(
        SweepResult::from_indexed("cache-test", exp.job_count(), outcome.rows)
            .unwrap()
            .to_json_string(),
        exp.run_parallel().to_json_string()
    );
}

#[test]
fn garbage_and_schema_mismatch_entries_are_skipped() {
    let dir = scratch_dir("garbage");
    // Seed the directory with junk a cache must survive: non-JSON, a
    // valid-JSON non-entry, and an entry from a future schema.
    std::fs::write(
        dir.join("junk.jsonl"),
        "not json at all\n{\"key\":\"abc\"}\n{\"key\":\"abc\",\"report\":{\"schema_version\":999}}\n\n",
    )
    .unwrap();
    let cache = ResultCache::open(&dir).unwrap();
    assert!(cache.is_empty());
    assert_eq!(cache.skipped_lines(), 3);

    // A poisoned directory still caches correctly.
    let exp = small_experiment();
    let mut cache = ResultCache::open(&dir).unwrap();
    let first = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(first.stats.executed, exp.job_count());
    let mut cache = ResultCache::open(&dir).unwrap();
    let second = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(second.stats.cache_hits, exp.job_count());
}

#[test]
fn litmus_keys_ignore_the_noop_workload_params() {
    // Litmus cells are fully parameterized by their registry name;
    // the builder ignores WorkloadParams, so neither scale nor level
    // may fork the key — while the machine config still must.
    let cfg = MachineConfig::paper_default();
    let a = job_key(
        "litmus/sb/7",
        &WorkloadParams::small(),
        &cfg,
        BackendId::Sim,
    );
    let b = job_key(
        "litmus/sb/7",
        &WorkloadParams::default(),
        &cfg,
        BackendId::Sim,
    );
    assert_eq!(a, b, "no-op params must not fork litmus cache keys");
    let c = job_key(
        "litmus/sb/8",
        &WorkloadParams::small(),
        &cfg,
        BackendId::Sim,
    );
    assert_ne!(a, c, "the seed (via the name) must key the cell");
    let d = job_key(
        "litmus/sb/7",
        &WorkloadParams::small(),
        &cfg.clone().with_fence(FenceConfig::TRADITIONAL),
        BackendId::Sim,
    );
    assert_ne!(a, d, "the machine config must still key the cell");

    // Table IV benchmarks keep keying on their build parameters.
    let e = job_key("dekker", &WorkloadParams::small(), &cfg, BackendId::Sim);
    let f = job_key("dekker", &WorkloadParams::default(), &cfg, BackendId::Sim);
    assert_ne!(e, f);
}

#[test]
fn backend_id_forks_the_cache_key() {
    // The same cell under different engines must occupy distinct
    // keys: a functional result can never answer (or poison) a
    // cycle-accurate query.
    let params = WorkloadParams::small();
    let cfg = MachineConfig::paper_default();
    let sim = job_key("dekker", &params, &cfg, BackendId::Sim);
    let fun = job_key("dekker", &params, &cfg, BackendId::Functional);
    let en = job_key("dekker", &params, &cfg, BackendId::Enumerative);
    assert_ne!(sim, fun);
    assert_ne!(sim, en);
    assert_ne!(fun, en);
    // The backend is part of the canonical description itself.
    let canon = job_canonical_json("dekker", &params, &cfg, BackendId::Functional);
    assert_eq!(
        canon.get("backend").and_then(Json::as_str),
        Some("functional")
    );
}

#[test]
fn sim_and_functional_cells_coexist_in_one_cache() {
    let dir = scratch_dir("backends");
    let exp = Experiment::new("backend-cache-test")
        .workloads(["dekker"], WorkloadParams::small())
        .fences(vec![FenceConfig::SFENCE])
        .axis(Axis::Backend(vec![BackendId::Sim, BackendId::Functional]));

    let mut cache = ResultCache::open(&dir).unwrap();
    let first = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(first.stats.executed, 2, "one sim cell, one functional cell");

    // Both land in the cache under their own keys; a second run of
    // either backend alone hits without executing.
    let mut cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len(), 2);
    for backend in [BackendId::Sim, BackendId::Functional] {
        let one = Experiment::new("backend-cache-test")
            .workloads(["dekker"], WorkloadParams::small())
            .fences(vec![FenceConfig::SFENCE])
            .backend(backend);
        let out = one.run_with(RunOptions::new(1).cache(&mut cache));
        assert_eq!(out.stats.executed, 0, "{}: must hit", backend.name());
        assert_eq!(out.stats.cache_hits, 1);
        assert_eq!(out.rows[0].row.backend, backend.name());
        assert_eq!(
            out.rows[0].row.cycles.is_some(),
            backend == BackendId::Sim,
            "only the sim row carries cycles"
        );
    }
}

#[test]
fn old_schema_v2_entries_are_skipped_not_fatal() {
    let dir = scratch_dir("v2");
    // A realistic-looking v2 line (u64 cycles, no backend field) from
    // before the multi-backend schema bump: it must be skipped and
    // re-run, never parsed into a v3 report and never an error.
    std::fs::write(
        dir.join("old.jsonl"),
        concat!(
            r#"{"key":"deadbeef","report":{"schema_version":2,"exit":"completed","#,
            r#""cycles":123,"core_stats":[],"mem_stats":{},"scope_stats":[],"#,
            r#""watch_log":[],"traces":[],"mem":[],"regs":[]}}"#,
            "\n"
        ),
    )
    .unwrap();
    let cache = ResultCache::open(&dir).unwrap();
    assert!(cache.is_empty(), "v2 entries must not load");
    assert_eq!(cache.skipped_lines(), 1);

    // The poisoned directory still serves a normal run/hit cycle.
    let exp = small_experiment();
    let mut cache = ResultCache::open(&dir).unwrap();
    let first = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(first.stats.executed, exp.job_count());
    let mut cache = ResultCache::open(&dir).unwrap();
    let second = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(second.stats.cache_hits, exp.job_count());
    assert_eq!(second.stats.executed, 0);
}
