//! `RunReport` JSON round-trip: serialize → parse → deserialize must
//! reproduce the exact report, including watch log, traces and the
//! final memory image.

use sfence_harness::{json, RunReport, Session};
use sfence_isa::ir::{c, ld, IrProgram};
use sfence_isa::CompileOpts;
use sfence_sim::FenceConfig;

fn sample_report() -> RunReport {
    let mut p = IrProgram::new();
    let data = p.shared_line("data");
    let flag = p.shared_line("flag");
    let got = p.global_line("got");
    let cls = p.class("Mailbox");
    p.method(cls, "send", &[], move |b| {
        b.store(data.cell(), c(7));
        b.fence_class();
        b.store(flag.cell(), c(1));
    });
    p.thread(move |b| {
        b.call("Mailbox::send", &[]);
        b.halt();
    });
    p.thread(move |b| {
        b.spin_until(ld(flag.cell()).eq(c(1)));
        b.fence();
        b.store(got.cell(), ld(data.cell()));
        b.halt();
    });
    let prog = p.compile(&CompileOpts::default()).unwrap();
    Session::for_program(&prog)
        .cores(2)
        .max_cycles(5_000_000)
        .fence(FenceConfig::SFENCE)
        .trace()
        .watch_var("data")
        .watch_var("flag")
        .run()
}

#[test]
fn run_report_round_trips_through_json() {
    let report = sample_report();
    // The run must have produced something interesting to round-trip.
    assert!(report.completed());
    assert!(!report.watch_log.is_empty(), "watched writes recorded");
    assert!(
        report.traces.iter().any(|t| !t.is_empty()),
        "traces recorded"
    );
    assert!(
        report.regs.iter().any(|core| core.iter().any(|&r| r != 0)),
        "register snapshot recorded"
    );

    let text = report.to_json().to_string_pretty();
    let parsed = json::parse(&text).expect("report JSON parses");
    let back = RunReport::from_json(&parsed).expect("report deserializes");
    assert_eq!(back, report);
    // Fixed point: serializing again yields identical bytes.
    assert_eq!(back.to_json().to_string_pretty(), text);
}

#[test]
fn compact_and_pretty_agree() {
    let report = sample_report();
    let compact = json::parse(&report.to_json().to_string_compact()).unwrap();
    let pretty = json::parse(&report.to_json().to_string_pretty()).unwrap();
    assert_eq!(compact, pretty);
}

/// Reports from the untimed engines round-trip too: absent cycle
/// fields stay absent, the backend tag survives, and enumerative
/// reports carry their SC state set through JSON unchanged.
#[test]
fn functional_and_enumerative_reports_round_trip() {
    use sfence_harness::{EnumerativeBackend, FunctionalBackend};

    let mut p = IrProgram::new();
    let data = p.shared_line("data");
    let flag = p.shared_line("flag");
    let od = p.observer("data");
    p.thread(move |b| {
        b.store(data.cell(), c(9));
        b.fence();
        b.store(flag.cell(), c(1));
        b.halt();
    });
    p.thread(move |b| {
        b.spin_until(ld(flag.cell()).eq(c(1)));
        b.fence();
        b.store(od.cell(), ld(data.cell()));
        b.halt();
    });
    let prog = p.compile(&CompileOpts::default()).unwrap();

    let functional = Session::for_program(&prog)
        .cores(2)
        .backend(&FunctionalBackend)
        .run();
    assert_eq!(functional.cycles, None);
    let enumerative = Session::for_program(&prog)
        .cores(2)
        .backend(&EnumerativeBackend::default())
        .run();
    assert_eq!(enumerative.sc_states.as_deref(), Some(&[vec![9]][..]));

    for report in [functional, enumerative] {
        let text = report.to_json().to_string_pretty();
        let parsed = json::parse(&text).expect("report JSON parses");
        let back = RunReport::from_json(&parsed).expect("report deserializes");
        assert_eq!(back, report);
        assert_eq!(back.to_json().to_string_pretty(), text);
    }
}
