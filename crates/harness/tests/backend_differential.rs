//! Cross-backend differential suite: every registry workload (at
//! `Scale::Small`, fences enabled) runs under both the cycle-accurate
//! `SimBackend` and the functional SC `FunctionalBackend`, and the
//! two engines must agree on everything that is schedule-independent:
//!
//! - both complete and pass the workload's invariant checker (the
//!   `Session` enforces this on every run);
//! - the observed (`obs_*`) state is identical;
//! - for workloads whose final memory is a function of the program
//!   alone (no CAS races deciding *which* thread does what), the
//!   entire final memory image is bit-identical. Racy workloads
//!   (work stealing, lock-free queues/sets, graph races) legitimately
//!   differ in who-did-what bookkeeping — there the invariant checker
//!   is the schedule-independent equivalence, and this suite pins
//!   that both engines satisfy it.
//!
//! Litmus scenarios close the loop with the third engine: the
//! functional backend's observed state must be in the enumerative
//! backend's SC-allowed set for every family.

use sfence_harness::{
    Axis, BackendId, EnumerativeBackend, Experiment, FunctionalBackend, RunReport, Session,
};
use sfence_sim::{FenceConfig, MachineConfig};
use sfence_workloads::litmus::FAMILIES;
use sfence_workloads::{catalog, BuiltWorkload, WorkloadParams};

fn run_both(built: &BuiltWorkload) -> (RunReport, RunReport) {
    let cfg = MachineConfig::paper_default().with_fence(FenceConfig::SFENCE);
    let sim = Session::for_workload(built).config(cfg.clone()).run();
    let fun = Session::for_workload(built)
        .config(cfg)
        .backend(&FunctionalBackend)
        .run();
    (sim, fun)
}

/// Workloads whose final memory is schedule-independent: every store
/// a thread performs is determined by the program, not by which
/// thread wins a race.
const MEM_DETERMINISTIC: [&str; 2] = ["dekker", "barnes"];

#[test]
fn every_registry_workload_agrees_across_backends() {
    for w in &catalog::REGISTRY {
        let built = catalog::build(w.name(), &WorkloadParams::small());
        // `Session::for_workload` already asserts completion and the
        // workload invariants on both engines.
        let (sim, fun) = run_both(&built);
        assert!(sim.completed() && fun.completed(), "{}", w.name());
        assert_eq!(
            sim.observed_state(&built.program),
            fun.observed_state(&built.program),
            "{}: observed state must not depend on the engine",
            w.name()
        );
        assert_eq!(sim.backend, BackendId::Sim);
        assert_eq!(fun.backend, BackendId::Functional);
        assert!(sim.cycles.is_some(), "{}: sim must report time", w.name());
        assert_eq!(fun.cycles, None, "{}: no fabricated cycles", w.name());
        if MEM_DETERMINISTIC.contains(&w.name()) {
            assert_eq!(
                sim.mem,
                fun.mem,
                "{}: schedule-independent workload must agree on all of memory",
                w.name()
            );
        }
    }
}

#[test]
fn every_litmus_family_agrees_with_the_enumerator() {
    let enumerator = EnumerativeBackend::default();
    for family in FAMILIES {
        let name = format!("litmus/{}/0", family.name());
        let built = catalog::build(&name, &WorkloadParams::small());
        let cfg = MachineConfig::paper_default().with_fence(FenceConfig::SFENCE);
        let fun = Session::for_workload(&built)
            .config(cfg.clone())
            .backend(&FunctionalBackend)
            .run();
        let en = Session::for_workload(&built)
            .config(cfg)
            .backend(&enumerator)
            .run();
        assert!(en.completed(), "{name}: enumeration incomplete");
        let allowed = en.sc_states.expect("enumerative report carries the set");
        let observed = fun.observed_state(&built.program);
        assert!(
            allowed.binary_search(&observed).is_ok(),
            "{name}: functional (SC) outcome {observed:?} not in the SC set {allowed:?}"
        );
    }
}

/// An `Axis::Backend` sweep puts the engines side by side in one
/// result: same workload and config, one row per backend, rows
/// carrying exactly the fields their engine measures.
#[test]
fn backend_axis_produces_side_by_side_rows() {
    let exp = Experiment::new("backend-axis")
        .workloads(["dekker"], WorkloadParams::small())
        .fences(vec![FenceConfig::SFENCE])
        .axis(Axis::Backend(vec![BackendId::Sim, BackendId::Functional]));
    assert_eq!(exp.job_count(), 2);
    let result = exp.run_parallel();
    let sim_row = result.row("dekker", "S", "sim");
    let fun_row = result.row("dekker", "S", "functional");
    assert_eq!(sim_row.backend, "sim");
    assert_eq!(fun_row.backend, "functional");
    assert!(sim_row.cycles.is_some() && sim_row.fence_stalls.is_some());
    assert!(fun_row.cycles.is_none() && fun_row.fence_stalls.is_none());
    assert!(fun_row.instrs_retired > 0, "real architectural counts");
    // Serialization round-trips the mixed-backend rows.
    let json = result.to_json_string();
    let parsed = sfence_harness::json::parse(&json).unwrap();
    assert!(parsed.get("rows").is_some());
}

/// A whole experiment moved onto the functional backend executes zero
/// cycle-accurate cells and reports untimed rows throughout.
#[test]
fn functional_experiment_runs_registry_workloads() {
    let exp = Experiment::new("functional-sweep")
        .workloads(["dekker", "msn", "wsq"], WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .backend(BackendId::Functional);
    let result = exp.run_parallel();
    assert_eq!(result.rows.len(), 6);
    for row in &result.rows {
        assert_eq!(row.backend, "functional");
        assert_eq!(row.cycles, None);
        assert_eq!(row.exit, "completed");
        assert!(row.instrs_retired > 0);
    }
}

/// An exhausted enumeration budget on a workload session is a
/// reportable outcome (`exit = cycle_limit`), not a panic: sweeps
/// over the enumerative backend emit rows instead of aborting.
#[test]
fn enumerative_budget_exhaustion_reports_not_panics() {
    use sfence_harness::CheckerConfig;

    let built = catalog::build("dekker", &WorkloadParams::small());
    let tiny = EnumerativeBackend::new(CheckerConfig {
        max_states: 50,
        ..Default::default()
    });
    let report = Session::for_workload(&built).backend(&tiny).run();
    assert!(!report.completed(), "50 states cannot cover dekker");
    assert_eq!(report.backend, BackendId::Enumerative);
    assert!(report.sc_states_explored.unwrap() > 0);
}
