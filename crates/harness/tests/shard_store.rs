//! Sharding, resume, and the JSONL result store: merged shard output
//! must be byte-identical to a single-process parallel run, an
//! interrupted sweep must resume to the identical result, and the
//! store must round-trip rows and reject foreign schema versions.

use sfence_harness::{
    diff_rows, Axis, Experiment, ResultCache, ResultStore, RunMeta, RunOptions, Shard, SweepResult,
};
use sfence_sim::FenceConfig;
use sfence_workloads::WorkloadParams;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sfence-shard-test-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_experiment() -> Experiment {
    Experiment::new("shard-test")
        .workloads(["dekker", "msn"], WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::Level(vec![1, 2]))
}

#[test]
fn shard_partition_is_disjoint_and_exhaustive() {
    let exp = small_experiment();
    for count in [1, 2, 3, 5, 8, 11] {
        let mut seen = vec![0u32; exp.job_count()];
        for index in 0..count {
            for job in exp.shard(index, count) {
                seen[job] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "count={count}: {seen:?}");
    }
}

#[test]
fn merged_shards_are_byte_identical_to_run_parallel() {
    let exp = small_experiment();
    let reference = exp.run_parallel().to_json_string();
    for count in [1, 2, 3] {
        let mut rows = Vec::new();
        for index in 0..count {
            let outcome = exp.run_with(RunOptions::new(2).shard(Shard::new(index, count)));
            assert!(outcome.complete);
            rows.extend(outcome.rows);
        }
        let merged = SweepResult::from_indexed("shard-test", exp.job_count(), rows).unwrap();
        assert_eq!(merged.to_json_string(), reference, "count={count}");
    }
}

#[test]
fn sharded_workers_share_one_cache_without_collisions() {
    // Each "worker" writes its own shard-<i>.jsonl in a shared cache
    // directory; a later full run answers everything from disk.
    let dir = scratch_dir("shared-cache");
    let exp = small_experiment();
    for index in 0..3 {
        let mut cache =
            ResultCache::open_with_writer(&dir, format!("shard-{index}.jsonl")).unwrap();
        let outcome = exp.run_with(
            RunOptions::new(2)
                .cache(&mut cache)
                .shard(Shard::new(index, 3)),
        );
        assert!(outcome.complete);
        assert_eq!(outcome.stats.cache_hits, 0);
    }
    let mut cache = ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len(), exp.job_count());
    let outcome = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert_eq!(outcome.stats.executed, 0);
    assert_eq!(outcome.stats.cache_hits, exp.job_count());
}

#[test]
fn interrupted_sweep_resumes_to_identical_bytes() {
    let dir = scratch_dir("resume");
    let exp = small_experiment();
    let reference = exp.run_parallel().to_json_string();

    // First attempt dies after 3 cells (deterministically: the budget
    // applies to cells in job order).
    let mut cache = ResultCache::open(&dir).unwrap();
    let first = exp.run_with(RunOptions::new(2).cache(&mut cache).max_cells(3));
    assert!(!first.complete);
    assert_eq!(first.stats.executed, 3);
    assert_eq!(first.stats.skipped, exp.job_count() - 3);
    drop(cache);

    // The resume run picks up the cached cells and finishes the rest.
    let mut cache = ResultCache::open(&dir).unwrap();
    let resumed = exp.run_with(RunOptions::new(2).cache(&mut cache));
    assert!(resumed.complete);
    assert_eq!(resumed.stats.cache_hits, 3);
    assert_eq!(resumed.stats.executed, exp.job_count() - 3);
    let merged = SweepResult::from_indexed("shard-test", exp.job_count(), resumed.rows).unwrap();
    assert_eq!(merged.to_json_string(), reference);
}

#[test]
fn from_indexed_rejects_missing_and_duplicated_jobs() {
    let exp = small_experiment();
    let outcome = exp.run_with(RunOptions::new(2));
    let rows = outcome.rows;
    // Missing one row.
    let mut partial = rows.clone();
    partial.pop();
    assert!(SweepResult::from_indexed("shard-test", exp.job_count(), partial).is_err());
    // Duplicated shard: right count, wrong indices.
    let mut duplicated = rows.clone();
    let last = duplicated.len() - 1;
    duplicated[last] = duplicated[0].clone();
    assert!(SweepResult::from_indexed("shard-test", exp.job_count(), duplicated).is_err());
    // Intact set merges.
    assert!(SweepResult::from_indexed("shard-test", exp.job_count(), rows).is_ok());
}

#[test]
fn store_round_trips_and_diffs() {
    let dir = scratch_dir("store");
    let path = dir.join("results.jsonl");
    let store = ResultStore::new(&path);
    let exp = small_experiment();
    let result = exp.run_parallel();

    let meta = RunMeta::new("shard-test", "level", "small", "sim", "v-test", 1234);
    store.append(&meta, &result).unwrap();
    store.append(&meta, &result).unwrap();

    let contents = store.read().unwrap();
    assert_eq!(contents.skipped_lines, 0);
    assert_eq!(contents.runs.len(), 2);
    assert_eq!(contents.runs[0].meta, meta);
    assert_eq!(contents.runs[0].rows, result.rows);

    let latest = store.latest("shard-test").unwrap().unwrap();
    assert!(diff_rows(&latest.rows, &result.rows).is_empty());
    assert!(store.latest("nonesuch").unwrap().is_none());

    // A changed cell shows up in the diff; so do added/removed rows.
    let mut moved = result.clone();
    moved.rows[0].cycles = moved.rows[0].cycles.map(|c| c + 1);
    let extra = moved.rows.pop().unwrap();
    let diff = diff_rows(&latest.rows, &moved.rows);
    assert_eq!(diff.changed.len(), 1);
    assert_eq!(
        diff.changed[0].new.cycles,
        diff.changed[0].old.cycles.map(|c| c + 1)
    );
    assert_eq!(diff.removed.len(), 1);
    assert_eq!(diff.removed[0], extra);
    assert!(diff.added.is_empty());
    assert!(!diff.to_report().is_empty());
}

#[test]
fn history_at_walks_comparable_runs_most_recent_first() {
    // The lookup behind `--diff-run K`: any comparable stored run is
    // reachable, not only the latest append.
    let dir = scratch_dir("history");
    let store = ResultStore::new(dir.join("results.jsonl"));
    let exp = small_experiment();
    let result = exp.run_parallel();
    for (git, ts) in [("g1", 1), ("g2", 2), ("g3", 3)] {
        store
            .append(
                &RunMeta::new("shard-test", "level", "small", "sim", git, ts),
                &result,
            )
            .unwrap();
    }
    // A run of a different identity must never appear in the walk.
    store
        .append(
            &RunMeta::new("shard-test", "level", "eval", "sim", "gx", 4),
            &result,
        )
        .unwrap();

    let history = store.history_at("shard-test", "small", "sim").unwrap();
    let gits: Vec<&str> = history.iter().map(|r| r.meta.git.as_str()).collect();
    assert_eq!(gits, ["g3", "g2", "g1"]);
    assert_eq!(
        store
            .latest_at("shard-test", "small", "sim")
            .unwrap()
            .unwrap()
            .meta
            .git,
        "g3"
    );
    assert!(store
        .history_at("shard-test", "default", "sim")
        .unwrap()
        .is_empty());
}

#[test]
fn store_matches_diff_history_by_scale() {
    let dir = scratch_dir("scales");
    let store = ResultStore::new(dir.join("results.jsonl"));
    let exp = small_experiment();
    let result = exp.run_parallel();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "sim", "g1", 1),
            &result,
        )
        .unwrap();
    store
        .append(
            &RunMeta::new("shard-test", "level", "eval", "sim", "g2", 2),
            &result,
        )
        .unwrap();
    // Diffing must pick the latest run of the *same scale*, not just
    // the latest run of the experiment.
    let at_small = store
        .latest_at("shard-test", "small", "sim")
        .unwrap()
        .unwrap();
    assert_eq!(at_small.meta.git, "g1");
    let at_eval = store
        .latest_at("shard-test", "eval", "sim")
        .unwrap()
        .unwrap();
    assert_eq!(at_eval.meta.git, "g2");
    assert!(store
        .latest_at("shard-test", "default", "sim")
        .unwrap()
        .is_none());
}

#[test]
fn store_matches_diff_history_by_backend() {
    // Sim and functional runs of one experiment are separate
    // histories: a functional run must never become (or diff
    // against) the sim baseline.
    let dir = scratch_dir("backends");
    let store = ResultStore::new(dir.join("results.jsonl"));
    let result = small_experiment().run_parallel();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "sim", "g-sim", 1),
            &result,
        )
        .unwrap();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "functional", "g-fn", 2),
            &result,
        )
        .unwrap();
    let at_sim = store
        .latest_at("shard-test", "small", "sim")
        .unwrap()
        .unwrap();
    assert_eq!(at_sim.meta.git, "g-sim");
    let at_fn = store
        .latest_at("shard-test", "small", "functional")
        .unwrap()
        .unwrap();
    assert_eq!(at_fn.meta.git, "g-fn");
    assert!(store
        .latest_at("shard-test", "small", "enumerative")
        .unwrap()
        .is_none());
}

#[test]
fn run_killed_mid_append_is_dropped_on_read() {
    let dir = scratch_dir("midappend");
    let path = dir.join("results.jsonl");
    let store = ResultStore::new(&path);
    let exp = small_experiment();
    let result = exp.run_parallel();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "sim", "g", 0),
            &result,
        )
        .unwrap();
    // Simulate a writer killed between the kernel writes of a second
    // append: its meta line and a prefix of its rows survive intact.
    let bytes = std::fs::read(&path).unwrap();
    let keep: usize = String::from_utf8(bytes.clone())
        .unwrap()
        .lines()
        .take(4)
        .map(|l| l.len() + 1)
        .sum();
    let mut torn = bytes.clone();
    torn.extend_from_slice(&bytes[..keep]);
    std::fs::write(&path, torn).unwrap();

    let contents = store.read().unwrap();
    assert_eq!(contents.torn_runs, 1, "the half-appended run is dropped");
    assert_eq!(contents.runs.len(), 1);
    assert_eq!(contents.runs[0].rows, result.rows);
    // latest() never serves the torn run as history.
    assert_eq!(
        store.latest("shard-test").unwrap().unwrap().rows,
        result.rows
    );
}

#[test]
fn store_rejects_mismatched_schema_version() {
    let dir = scratch_dir("schema");
    let path = dir.join("results.jsonl");
    std::fs::write(
        &path,
        "{\"kind\":\"meta\",\"schema_version\":999,\"experiment\":\"x\",\"axis\":\"\",\"scale\":\"small\",\"git\":\"g\",\"timestamp\":0,\"rows\":0}\n",
    )
    .unwrap();
    let err = ResultStore::new(&path).read().unwrap_err();
    assert!(err.contains("schema_version 999"), "{err}");
}

#[test]
fn malformed_meta_lines_are_skipped_not_fatal() {
    // A JSON-valid but field-incomplete meta line is foreign garbage:
    // counted and skipped, never aborting the read — only a
    // well-formed meta with a *different* version is fatal.
    let dir = scratch_dir("foreignmeta");
    let path = dir.join("results.jsonl");
    let store = ResultStore::new(&path);
    let exp = small_experiment();
    let result = exp.run_parallel();
    std::fs::write(&path, "{\"kind\":\"meta\",\"x\":1}\n").unwrap();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "sim", "g", 0),
            &result,
        )
        .unwrap();
    let contents = store.read().unwrap();
    assert_eq!(contents.skipped_lines, 1);
    assert_eq!(contents.runs.len(), 1);
    assert_eq!(contents.runs[0].rows, result.rows);
}

#[test]
fn store_skips_torn_tail_lines() {
    let dir = scratch_dir("torn");
    let path = dir.join("results.jsonl");
    let store = ResultStore::new(&path);
    let exp = small_experiment();
    let result = exp.run_parallel();
    store
        .append(
            &RunMeta::new("shard-test", "level", "small", "sim", "g", 0),
            &result,
        )
        .unwrap();
    // Simulate a writer killed mid-append of a second run.
    let mut bytes = std::fs::read(&path).unwrap();
    let torn: Vec<u8> = bytes[..60].to_vec();
    bytes.extend_from_slice(&torn);
    std::fs::write(&path, bytes).unwrap();

    let contents = store.read().unwrap();
    assert_eq!(contents.skipped_lines, 1, "the torn tail is skipped");
    assert_eq!(contents.runs.len(), 1);
    // The first (complete) run is intact regardless of the tail.
    assert_eq!(contents.runs[0].rows, result.rows);
}
