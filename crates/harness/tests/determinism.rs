//! Satellite guarantees of the sweep runner: parallel execution is
//! byte-identical to serial execution, and the structured rows match
//! what direct `Session` runs produce.

use sfence_harness::{Axis, Experiment, Session};
use sfence_sim::FenceConfig;
use sfence_workloads::{catalog, WorkloadParams};

fn small_experiment() -> Experiment {
    Experiment::new("determinism")
        .workloads(["dekker", "msn"], WorkloadParams::small())
        .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
        .axis(Axis::Level(vec![1, 2]))
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let exp = small_experiment();
    let serial = exp.run_serial();
    let parallel = exp.run(4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json_string(), parallel.to_json_string());
    // And repeated parallel runs are stable too.
    let again = exp.run(4);
    assert_eq!(parallel.to_json_string(), again.to_json_string());
}

#[test]
fn sweep_rows_match_direct_session_runs() {
    let exp = small_experiment();
    let result = exp.run(4);
    assert_eq!(result.rows.len(), exp.job_count());
    for (name, fence, level) in [
        ("dekker", FenceConfig::TRADITIONAL, 1u32),
        ("msn", FenceConfig::SFENCE, 2u32),
    ] {
        let w = catalog::build(name, &WorkloadParams::small().level(level));
        let report = Session::for_workload(&w).fence(fence).run();
        let row = result.row(name, fence.label(), &level.to_string());
        assert_eq!(row.cycles, report.cycles);
        assert_eq!(row.backend, "sim");
        assert_eq!(row.fence_stalls, Some(report.total_fence_stalls()));
        assert_eq!(row.instrs_retired, report.total_retired());
        assert_eq!(row.exit, "completed");
    }
}

#[test]
fn row_order_is_spec_order() {
    let exp = small_experiment();
    let result = exp.run(4);
    let labels: Vec<(String, String, String)> = result
        .rows
        .iter()
        .map(|r| (r.workload.clone(), r.value.clone(), r.fence.clone()))
        .collect();
    let mut expected = Vec::new();
    for workload in ["dekker", "msn"] {
        for level in ["1", "2"] {
            for fence in ["T", "S"] {
                expected.push((workload.to_string(), level.to_string(), fence.to_string()));
            }
        }
    }
    assert_eq!(labels, expected);
}
