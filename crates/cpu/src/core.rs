//! The out-of-order core model.
//!
//! One [`Core`] executes one thread's instruction stream with:
//!
//! - **in-order issue** along the *predicted* path into a bounded ROB
//!   (wrong-path instructions are genuinely fetched and squashed at
//!   branch resolution — this is what exercises FSS′);
//! - **dataflow execution**: an instruction dispatches once its source
//!   operands' producers have completed (Tomasulo-style wakeup;
//!   operands are captured as values or producer tags at issue);
//! - **in-order retirement** from the ROB head; stores move to a
//!   bounded store buffer at retire and drain out of order (RMO) or
//!   FIFO, writing shared memory at drain completion;
//! - **load values bound at completion time** from shared memory (or
//!   forwarded from the youngest older matching store), so cross-core
//!   interleavings are physically meaningful;
//! - **CAS** executing non-speculatively at the ROB head after
//!   draining the local store buffer;
//! - **fences** that either block the issue stage until their
//!   condition holds (`T`/`S`) or issue speculatively and hold only
//!   retirement (`T+`/`S+`, in-window speculation), with the condition
//!   supplied by the S-Fence scope unit when scopes are honoured.
//!
//! The register file holds *committed* state only (updated at retire);
//! squash recovery therefore needs no register checkpoints — the
//! producer map is rebuilt by rescanning the surviving ROB entries.

use crate::bpred::BranchPredictor;
use crate::bus::MemBus;
use crate::config::CoreConfig;
use crate::stats::CoreStats;
use sfence_core::{
    ColumnCounters, FenceWait, PipeEvent, PipeKind, RetiredEvent, ScopeMask, ScopeUnit,
};
use sfence_isa::{FenceKind, Instr, Operand, NUM_REGS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A source operand captured at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Ready(i64),
    /// Waiting on the ROB entry with this sequence number.
    Wait(u64),
    /// Operand slot unused by this instruction.
    None,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    /// Waiting for source operands.
    Waiting,
    /// Operands ready; awaiting dispatch (or blocked on
    /// disambiguation / CAS head condition).
    Ready,
    /// In an execution unit or the memory system.
    Executing,
    /// Finished; may retire when it reaches the ROB head.
    Done,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: usize,
    instr: Instr,
    ops: [Src; 3],
    state: EState,
    result: i64,
    addr: usize,
    mask: ScopeMask,
    /// Still counted in `mem_in_flight` / scope-unit counters.
    counted: bool,
    fence_wait: Option<FenceWait>,
    predicted_taken: bool,
    issued_at: u64,
    dispatched_at: u64,
    completed_at: u64,
    waiters: Vec<u64>,
}

#[derive(Debug, Clone)]
struct SbEntry {
    id: u64,
    addr: usize,
    val: i64,
    mask: ScopeMask,
    counted: bool,
    issued: bool,
    /// An older same-address entry is still in the buffer, so this
    /// one must not drain yet (RMO keeps same-address stores
    /// ordered). Maintained at push and at drain completion: the
    /// draining entry is always the oldest for its address, so
    /// exactly the next same-address entry unblocks.
    blocked: bool,
    /// Index into the trace buffer to patch with the drain cycle.
    trace_idx: Option<usize>,
}

/// Bucket count of the address-occupancy filters. A power of two so
/// the bucket index is a mask; collisions only cost a wasted scan,
/// never a wrong answer (the filters gate *scans*, not results).
const ADDR_BUCKETS: usize = 1024;

#[inline]
fn bucket(addr: usize) -> usize {
    addr & (ADDR_BUCKETS - 1)
}

/// Remove `seq` from an ascending sequence-number deque.
fn remove_seq(dq: &mut VecDeque<u64>, seq: u64) {
    let i = dq.partition_point(|&s| s < seq);
    debug_assert_eq!(dq.get(i), Some(&seq));
    dq.remove(i);
}

/// Timed completion events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Rob(u64),
    Sb(u64),
}

/// One simulated core.
pub struct Core {
    pub cfg: CoreConfig,
    id: usize,
    code: Vec<Instr>,

    regs: [i64; NUM_REGS],
    reg_producer: [Option<u64>; NUM_REGS],

    rob: VecDeque<RobEntry>,
    next_seq: u64,
    sb: VecDeque<SbEntry>,
    next_store_id: u64,
    sb_inflight: usize,
    sb_counts: ColumnCounters,

    fetch_pc: usize,
    fetch_resume: u64,
    fetch_done: bool,
    halted: bool,
    /// A fence blocking the issue stage (non-speculative mode).
    blocked_fence: Option<(FenceKind, FenceWait, usize)>,

    events: BinaryHeap<Reverse<(u64, Ev)>>,
    ready_q: Vec<u64>,
    /// Loads parked on memory disambiguation, ascending by seq.
    blocked_loads: Vec<u64>,
    /// Dispatch scratch buffer (capacity reused across cycles).
    work: Vec<u64>,

    // Incremental indices over the ROB/SB, so the per-cycle stages
    // need no full scans. All are derived state: issue/dispatch/
    // retire/squash keep them in sync with the structures above.
    /// Sequence numbers (ascending) of ROB stores whose address is
    /// still unresolved (state Waiting/Ready).
    unresolved_stores: VecDeque<u64>,
    /// Sequence numbers (ascending) of ROB CAS entries that have not
    /// completed (their memory effect lands only at completion).
    incomplete_cas: VecDeque<u64>,
    /// Fence entries currently in the ROB (coherence probes scan only
    /// when nonzero).
    fences_in_rob: usize,
    /// SB entries not yet issued to memory (drain early-out).
    sb_unissued: usize,
    /// Per-address-bucket count of ROB stores with a resolved address
    /// (state Executing/Done) — the store-to-load forwarding scan
    /// runs only when a load's bucket is occupied.
    rob_store_occ: Vec<u32>,
    /// Per-address-bucket count of store-buffer entries.
    sb_occ: Vec<u32>,

    scope: ScopeUnit,
    bpred: BranchPredictor,
    mem_in_flight: usize,

    pub stats: CoreStats,
    /// Retired-event trace (when `cfg.trace`).
    pub trace: Vec<RetiredEvent>,
    /// Pipeline event trace (when `cfg.pipe_trace`).
    pub pipe: Vec<PipeEvent>,
}

impl Core {
    pub fn new(id: usize, code: Vec<Instr>, cfg: CoreConfig) -> Self {
        let scope = ScopeUnit::new(cfg.scope);
        let bpred = BranchPredictor::new(cfg.bpred_entries);
        let halted = code.is_empty();
        Self {
            id,
            code,
            regs: [0; NUM_REGS],
            reg_producer: [None; NUM_REGS],
            rob: VecDeque::with_capacity(cfg.rob_size),
            next_seq: 0,
            sb: VecDeque::with_capacity(cfg.sb_size),
            next_store_id: 0,
            sb_inflight: 0,
            sb_counts: ColumnCounters::new(),
            fetch_pc: 0,
            fetch_resume: 0,
            fetch_done: halted,
            halted,
            blocked_fence: None,
            events: BinaryHeap::new(),
            ready_q: Vec::new(),
            blocked_loads: Vec::new(),
            work: Vec::new(),
            unresolved_stores: VecDeque::new(),
            incomplete_cas: VecDeque::new(),
            fences_in_rob: 0,
            sb_unissued: 0,
            rob_store_occ: vec![0; ADDR_BUCKETS],
            sb_occ: vec![0; ADDR_BUCKETS],
            scope,
            bpred,
            mem_in_flight: 0,
            stats: CoreStats::default(),
            trace: Vec::new(),
            pipe: Vec::new(),
            cfg,
        }
    }

    /// Append a pipeline event. Callers gate on `cfg.pipe_trace`, so
    /// the disabled hot path never reaches the push.
    #[inline]
    fn pipe_event(&mut self, cycle: u64, kind: PipeKind) {
        self.pipe.push(PipeEvent {
            core: self.id as u32,
            cycle,
            kind,
        });
    }

    /// Has this core retired its `halt` and drained all buffers?
    pub fn finished(&self) -> bool {
        self.halted && self.sb.is_empty() && self.rob.is_empty()
    }

    /// Scope-unit statistics (diagnostics).
    pub fn scope_stats(&self) -> sfence_core::ScopeUnitStats {
        self.scope.stats
    }

    /// Scope-unit path coverage (the fuzzer's corpus key).
    pub fn scope_coverage(&self) -> sfence_core::CoverageSet {
        self.scope.coverage
    }

    pub fn branch_stats(&self) -> (u64, u64) {
        (self.bpred.predictions, self.bpred.mispredictions)
    }

    /// Snapshot of the architectural register file. Meaningful once
    /// the core is [`finished`](Self::finished): retired state only —
    /// in-flight speculative writes are not visible here.
    pub fn arch_regs(&self) -> &[i64] {
        &self.regs
    }

    fn honor_scopes(&self) -> bool {
        self.cfg.fence.honor_scopes
    }

    // ------------------------------------------------------------------
    // ROB access helpers

    fn head_seq(&self) -> Option<u64> {
        self.rob.front().map(|e| e.seq)
    }

    /// Locate an entry by sequence number. Sequence numbers are unique
    /// and monotonically increasing but *not* contiguous after a
    /// squash (we never roll `next_seq` back, so stale completion
    /// events can never alias a new entry), hence the binary search.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let idx = self.rob.partition_point(|e| e.seq < seq);
        (idx < self.rob.len() && self.rob[idx].seq == seq).then_some(idx)
    }

    fn entry(&self, seq: u64) -> Option<&RobEntry> {
        self.rob_index(seq).map(|i| &self.rob[i])
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut RobEntry> {
        let i = self.rob_index(seq)?;
        self.rob.get_mut(i)
    }

    // ------------------------------------------------------------------
    // The per-cycle pipeline

    /// Advance the core by one cycle.
    pub fn cycle(&mut self, now: u64, bus: &mut impl MemBus) {
        if self.finished() {
            return;
        }
        let mut fence_stalled = false;
        self.process_completions(now, bus);
        self.drain_store_buffer(now, bus);
        self.retire(now, &mut fence_stalled);
        self.execute(now, bus);
        self.issue(now, &mut fence_stalled);
        if fence_stalled {
            self.stats.fence_stall_cycles += 1;
        }
        if self.finished() && self.stats.finished_at.is_none() {
            self.stats.finished_at = Some(now);
        }
    }

    // ------------------------------------------------------------------
    // Completion

    fn process_completions(&mut self, now: u64, bus: &mut impl MemBus) {
        while let Some(&Reverse((t, ev))) = self.events.peek() {
            if t > now {
                break;
            }
            self.events.pop();
            match ev {
                Ev::Rob(seq) => self.complete_rob(seq, now, bus),
                Ev::Sb(id) => self.complete_drain(id, now, bus),
            }
        }
    }

    fn complete_rob(&mut self, seq: u64, now: u64, bus: &mut impl MemBus) {
        let Some(e) = self.entry(seq) else {
            return; // squashed while its event was in flight
        };
        if e.state != EState::Executing {
            return; // stale event after a squash reused nothing (seq is unique)
        }
        let instr = e.instr;
        match instr {
            Instr::Load { .. } => {
                let addr = e.addr;
                // A forwarded load bound its value at dispatch (addr
                // == usize::MAX marks forwarding); otherwise bind from
                // shared memory now, at completion time.
                let val = if addr == usize::MAX {
                    self.entry(seq).unwrap().result
                } else {
                    bus.read(addr)
                };
                self.finish_mem(seq, val, now);
            }
            Instr::Cas { .. } => {
                let (addr, expected, new) = {
                    let e = self.entry(seq).unwrap();
                    (e.addr, src_val(e.ops[1]), src_val(e.ops[2]))
                };
                let old = bus.read(addr);
                let ok = old == expected;
                if ok {
                    bus.write(self.id, addr, new);
                }
                remove_seq(&mut self.incomplete_cas, seq);
                self.finish_mem(seq, ok as i64, now);
            }
            Instr::Branch { op, a, b, target } => {
                let (va, vb, predicted) = {
                    let e = self.entry(seq).unwrap();
                    (
                        operand_val(a, &e.ops, 0),
                        operand_val(b, &e.ops, 1),
                        e.predicted_taken,
                    )
                };
                let taken = op.apply(va, vb);
                self.stats.branches_resolved += 1;
                let pc = self.entry(seq).unwrap().pc;
                self.mark_done(seq, 0, now);
                if taken != predicted {
                    self.stats.mispredictions += 1;
                    self.bpred.update(pc, taken, true);
                    let next = if taken { target } else { pc + 1 };
                    self.squash_after(seq, next, now);
                } else {
                    self.bpred.update(pc, taken, false);
                    if self.honor_scopes() {
                        self.scope.branch_resolved(seq, false);
                    }
                }
            }
            _ => {
                // ALU-class instruction: result was computed at dispatch.
                let r = self.entry(seq).unwrap().result;
                self.mark_done(seq, r, now);
            }
        }
    }

    /// Mark a load/CAS complete: value, counters, wakeup.
    fn finish_mem(&mut self, seq: u64, val: i64, now: u64) {
        let mask = {
            let e = self.entry_mut(seq).unwrap();
            debug_assert!(e.counted);
            e.counted = false;
            e.mask
        };
        self.mem_in_flight -= 1;
        if self.honor_scopes() {
            self.scope.mem_completed(mask);
        }
        self.mark_done(seq, val, now);
    }

    /// Transition to Done, record result, wake consumers.
    fn mark_done(&mut self, seq: u64, result: i64, now: u64) {
        let waiters = {
            let e = self.entry_mut(seq).unwrap();
            e.state = EState::Done;
            e.result = result;
            e.completed_at = now;
            std::mem::take(&mut e.waiters)
        };
        for w in waiters {
            self.wake(w, seq, result);
        }
    }

    fn wake(&mut self, waiter: u64, producer: u64, value: i64) {
        let Some(e) = self.entry_mut(waiter) else {
            return; // squashed
        };
        for op in e.ops.iter_mut() {
            if *op == Src::Wait(producer) {
                *op = Src::Ready(value);
            }
        }
        if e.state == EState::Waiting && e.ops.iter().all(|o| !matches!(o, Src::Wait(_))) {
            e.state = EState::Ready;
            self.ready_q.push(waiter);
        }
    }

    fn complete_drain(&mut self, id: u64, _now: u64, bus: &mut impl MemBus) {
        // Store ids are handed out monotonically and entries are never
        // reordered, so the buffer is sorted by id.
        let pos = self.sb.partition_point(|s| s.id < id);
        assert!(
            self.sb.get(pos).is_some_and(|s| s.id == id),
            "store-buffer drains are never squashed"
        );
        let entry = self.sb.remove(pos).unwrap();
        bus.write(self.id, entry.addr, entry.val);
        self.sb_inflight -= 1;
        self.sb_counts.remove(entry.mask);
        self.sb_occ[bucket(entry.addr)] -= 1;
        // The drained entry was the oldest for its address (it could
        // not have issued otherwise); unblock the next one, if any.
        if self.sb_occ[bucket(entry.addr)] > 0 {
            if let Some(next) = self.sb.iter_mut().find(|s| s.addr == entry.addr) {
                next.blocked = false;
            }
        }
        if entry.counted {
            self.mem_in_flight -= 1;
            if self.honor_scopes() {
                self.scope.mem_completed(entry.mask);
            }
        }
        if let Some(idx) = entry.trace_idx {
            if let RetiredEvent::Mem { complete, .. } = &mut self.trace[idx] {
                *complete = _now;
            }
        }
    }

    // ------------------------------------------------------------------
    // Store buffer drain

    fn drain_store_buffer(&mut self, now: u64, bus: &mut impl MemBus) {
        if self.sb_unissued == 0 {
            return;
        }
        let max = self.cfg.max_outstanding_stores;
        if self.cfg.sb_drain_in_order {
            // FIFO drain: only the head, one at a time.
            if self.sb_inflight == 0 {
                let head = self.sb.front_mut().unwrap();
                if !head.issued {
                    head.issued = true;
                    self.sb_unissued -= 1;
                    let (id, addr) = (head.id, head.addr);
                    let lat = bus.access_latency(self.id, addr, true).max(1);
                    self.events.push(Reverse((now + lat, Ev::Sb(id))));
                    self.sb_inflight += 1;
                }
            }
            return;
        }
        // RMO: drain any entry, but same-address stores stay ordered
        // (the `blocked` flag, maintained at push/drain).
        for i in 0..self.sb.len() {
            if self.sb_inflight >= max {
                break;
            }
            if self.sb[i].issued || self.sb[i].blocked {
                continue;
            }
            self.sb[i].issued = true;
            self.sb_unissued -= 1;
            let (id, addr) = (self.sb[i].id, self.sb[i].addr);
            let lat = bus.access_latency(self.id, addr, true).max(1);
            self.events.push(Reverse((now + lat, Ev::Sb(id))));
            self.sb_inflight += 1;
            if self.sb_unissued == 0 {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire

    fn retire(&mut self, now: u64, fence_stalled: &mut bool) {
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.rob.front() else {
                return;
            };
            if head.state != EState::Done {
                // CAS parks Ready at the head until the SB drains; all
                // other kinds are simply not finished yet.
                return;
            }
            let instr = head.instr;
            let head_pc = head.pc;
            // Fences under in-window speculation hold retirement until
            // their (captured) condition is satisfied by the SB.
            if let Instr::Fence { .. } = instr {
                if self.cfg.fence.in_window_speculation {
                    let ok = match head.fence_wait {
                        Some(FenceWait::All) | None => self.sb.is_empty(),
                        Some(FenceWait::Mask(m)) => self.sb_counts.clear_in(m),
                    };
                    if !ok {
                        *fence_stalled = true;
                        self.scope
                            .coverage
                            .insert(sfence_core::coverage::STALL_AT_RETIRE);
                        return;
                    }
                    if self.cfg.pipe_trace {
                        self.pipe_event(now, PipeKind::FenceComplete { pc: head_pc as u64 });
                    }
                }
                self.stats.fences_retired += 1;
            }
            // Stores need a store-buffer slot.
            if let Instr::Store { .. } = instr {
                if self.sb.len() == self.cfg.sb_size {
                    self.stats.sb_full_stall_cycles += 1;
                    return;
                }
            }
            let e = self.rob.pop_front().unwrap();
            self.stats.instrs_retired += 1;
            if self.cfg.pipe_trace {
                self.pipe_event(
                    now,
                    PipeKind::Retire {
                        seq: e.seq,
                        pc: e.pc as u64,
                    },
                );
            }
            // Commit the register value.
            if let Some(rd) = e.instr.dest() {
                self.regs[rd.0 as usize] = e.result;
                if self.reg_producer[rd.0 as usize] == Some(e.seq) {
                    self.reg_producer[rd.0 as usize] = None;
                }
            }
            match e.instr {
                Instr::Store { set_flagged, .. } => {
                    self.stats.stores += 1;
                    let trace_idx = if self.cfg.trace {
                        self.trace.push(RetiredEvent::Mem {
                            id: e.seq,
                            flagged: set_flagged,
                            issue: e.dispatched_at,
                            complete: u64::MAX, // patched at drain
                        });
                        Some(self.trace.len() - 1)
                    } else {
                        None
                    };
                    let id = self.next_store_id;
                    self.next_store_id += 1;
                    self.sb_counts.add(e.mask);
                    self.rob_store_occ[bucket(e.addr)] -= 1;
                    // Exact check, gated by the (conservative) bucket
                    // count: every existing entry is older.
                    let blocked =
                        self.sb_occ[bucket(e.addr)] > 0 && self.sb.iter().any(|s| s.addr == e.addr);
                    self.sb_occ[bucket(e.addr)] += 1;
                    self.sb_unissued += 1;
                    self.sb.push_back(SbEntry {
                        id,
                        addr: e.addr,
                        val: e.result,
                        mask: e.mask,
                        counted: e.counted,
                        issued: false,
                        blocked,
                        trace_idx,
                    });
                }
                Instr::Load { set_flagged, .. } => {
                    self.stats.loads += 1;
                    if self.cfg.trace {
                        self.trace.push(RetiredEvent::Mem {
                            id: e.seq,
                            flagged: set_flagged,
                            issue: e.dispatched_at,
                            complete: e.completed_at,
                        });
                    }
                }
                Instr::Cas { set_flagged, .. } => {
                    self.stats.cas_ops += 1;
                    if self.cfg.trace {
                        self.trace.push(RetiredEvent::Mem {
                            id: e.seq,
                            flagged: set_flagged,
                            issue: e.dispatched_at,
                            complete: e.completed_at,
                        });
                    }
                }
                Instr::Fence { kind } => {
                    self.fences_in_rob -= 1;
                    if self.cfg.trace {
                        let kind_eff = if self.honor_scopes() {
                            kind
                        } else {
                            FenceKind::Global
                        };
                        self.trace.push(RetiredEvent::Fence {
                            kind: kind_eff,
                            issue: e.issued_at,
                        });
                    }
                }
                Instr::FsStart { cid } => {
                    if self.honor_scopes() {
                        self.scope.fs_retired();
                    }
                    if self.cfg.trace {
                        self.trace.push(RetiredEvent::FsStart(cid));
                    }
                }
                Instr::FsEnd { .. } => {
                    if self.honor_scopes() {
                        self.scope.fs_retired();
                    }
                    if self.cfg.trace {
                        self.trace.push(RetiredEvent::FsEnd);
                    }
                }
                Instr::Halt => {
                    self.halted = true;
                    self.stats.halted_at = Some(now);
                    return;
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Execute

    fn execute(&mut self, now: u64, bus: &mut impl MemBus) {
        // Re-examine loads blocked on disambiguation and a CAS parked
        // at the head, then dispatch the newly ready instructions.
        // Also: a Ready CAS at the head re-checks every cycle.
        let head_cas = self
            .rob
            .front()
            .filter(|h| matches!(h.instr, Instr::Cas { .. }) && h.state == EState::Ready)
            .map(|h| h.seq);
        if self.blocked_loads.is_empty() && self.ready_q.is_empty() && head_cas.is_none() {
            return;
        }
        // Reuse one scratch buffer's capacity across cycles.
        let mut work = std::mem::take(&mut self.work);
        debug_assert!(work.is_empty());
        work.append(&mut self.ready_q);
        if let Some(seq) = head_cas {
            if !work.contains(&seq) {
                work.push(seq);
            }
        }
        work.sort_unstable();
        work.dedup();
        // Disambiguation retries, without re-dispatching: a blocked
        // load would pass its (seq-ordered) turn iff no unresolved
        // older store/CAS remains by then. Every Ready store is in
        // `work` and dispatches unconditionally at its own turn —
        // before any younger load's — and `incomplete_cas` only
        // changes at completion (a different phase), so the oldest
        // blocker *surviving this cycle* is computable up front.
        // Loads older than it take their successful retry through the
        // dispatch order; the rest are charged their failed retry in
        // bulk, exactly as if each had re-dispatched and bounced.
        if !self.blocked_loads.is_empty() {
            let mut boundary = self.incomplete_cas.front().copied().unwrap_or(u64::MAX);
            for &s in &self.unresolved_stores {
                if s >= boundary {
                    break;
                }
                if work.binary_search(&s).is_err() {
                    boundary = s;
                    break;
                }
            }
            let unblocked = self.blocked_loads.partition_point(|&s| s < boundary);
            self.stats.load_disambiguation_blocks += (self.blocked_loads.len() - unblocked) as u64;
            if unblocked > 0 {
                work.extend(self.blocked_loads.drain(..unblocked));
                work.sort_unstable();
            }
        }
        for &seq in &work {
            self.dispatch(seq, now, bus);
        }
        work.clear();
        self.work = work;
    }

    fn dispatch(&mut self, seq: u64, now: u64, bus: &mut impl MemBus) {
        let Some(e) = self.entry(seq) else {
            return;
        };
        if e.state != EState::Ready {
            return;
        }
        let instr = e.instr;
        match instr {
            Instr::Imm { value, .. } => self.start_exec(seq, value, 1, now),
            Instr::Mov { a, .. } => {
                let v = operand_val(a, &self.entry(seq).unwrap().ops, 0);
                self.start_exec(seq, v, 1, now);
            }
            Instr::Alu { op, a, b, .. } => {
                let ops = self.entry(seq).unwrap().ops;
                let v = op.apply(operand_val(a, &ops, 0), operand_val(b, &ops, 1));
                self.start_exec(seq, v, 1, now);
            }
            Instr::Cmp { op, a, b, .. } => {
                let ops = self.entry(seq).unwrap().ops;
                let v = op.apply(operand_val(a, &ops, 0), operand_val(b, &ops, 1)) as i64;
                self.start_exec(seq, v, 1, now);
            }
            Instr::Branch { .. } => {
                // Resolution happens at the completion event.
                self.start_exec(seq, 0, 1, now);
            }
            Instr::Load { base, offset, .. } => {
                self.dispatch_load(seq, base, offset, now, bus);
            }
            Instr::Store {
                src, base, offset, ..
            } => {
                let ops = self.entry(seq).unwrap().ops;
                let addr = mem_addr(operand_val(base, &ops, 1), offset);
                let val = operand_val(src, &ops, 0);
                let e = self.entry_mut(seq).unwrap();
                e.addr = addr;
                e.dispatched_at = now;
                // The address is now resolved: older loads stop
                // blocking on this store, and forwarding can see it.
                remove_seq(&mut self.unresolved_stores, seq);
                self.rob_store_occ[bucket(addr)] += 1;
                // Address generation: Done next cycle; the store's
                // memory effect happens after retire, from the SB.
                self.start_exec(seq, val, 1, now);
            }
            Instr::Cas { base, offset, .. } => {
                // Non-speculative: only at the ROB head. Prior loads
                // are thus complete; prior stores are ordered only if
                // `cas_drains_sb` (or when they target the same
                // address, preserving single-thread semantics).
                if self.head_seq() != Some(seq) {
                    return; // stays Ready; retried next cycle
                }
                let ops = self.entry(seq).unwrap().ops;
                let addr = mem_addr(operand_val(base, &ops, 0), offset);
                let blocked = if self.cfg.cas_drains_sb {
                    !self.sb.is_empty() || self.sb_inflight > 0
                } else {
                    self.sb_occ[bucket(addr)] > 0 && self.sb.iter().any(|s| s.addr == addr)
                };
                if blocked {
                    return; // wait for the store buffer to make progress
                }
                let lat = bus.access_latency(self.id, addr, true).max(1);
                let e = self.entry_mut(seq).unwrap();
                e.addr = addr;
                e.dispatched_at = now;
                e.state = EState::Executing;
                let pc = e.pc;
                self.events.push(Reverse((now + lat, Ev::Rob(seq))));
                if self.cfg.pipe_trace {
                    self.pipe_event(now, PipeKind::Issue { seq, pc: pc as u64 });
                }
            }
            // Scope markers, fences, jumps, nops and halts are Done at
            // issue and never reach dispatch.
            other => unreachable!("dispatch of non-executing instruction {other:?}"),
        }
    }

    fn start_exec(&mut self, seq: u64, result: i64, latency: u64, now: u64) {
        let e = self.entry_mut(seq).unwrap();
        e.state = EState::Executing;
        e.result = result;
        if e.dispatched_at == 0 {
            e.dispatched_at = now;
        }
        let pc = e.pc;
        self.events.push(Reverse((now + latency, Ev::Rob(seq))));
        if self.cfg.pipe_trace {
            self.pipe_event(now, PipeKind::Issue { seq, pc: pc as u64 });
        }
    }

    fn dispatch_load(
        &mut self,
        seq: u64,
        base: Operand,
        offset: i64,
        now: u64,
        bus: &mut impl MemBus,
    ) {
        // Conservative disambiguation: every older store must have a
        // resolved address, and every older CAS must have completed
        // (its memory effect lands only at completion), before a load
        // may dispatch. Applied identically under all fence configs.
        // The deques are ascending, so "an older one exists" is just a
        // front check.
        let unresolved_older_store = self.unresolved_stores.front().is_some_and(|&s| s < seq)
            || self.incomplete_cas.front().is_some_and(|&s| s < seq);
        if unresolved_older_store {
            self.stats.load_disambiguation_blocks += 1;
            // Kept ascending so execute() can split it at the blocker
            // boundary with a partition point.
            let at = self.blocked_loads.partition_point(|&s| s < seq);
            self.blocked_loads.insert(at, seq);
            return;
        }
        let ops = self.entry(seq).unwrap().ops;
        let addr = mem_addr(operand_val(base, &ops, 0), offset);

        // Store-to-load forwarding: youngest older matching store in
        // the ROB, then the youngest in the store buffer. The scans
        // run only when the address's occupancy bucket says a
        // resolved store to it may exist.
        let mut fwd: Option<i64> = None;
        if self.rob_store_occ[bucket(addr)] > 0 {
            for e in self.rob.iter().rev() {
                if e.seq >= seq {
                    continue;
                }
                if let Instr::Store { .. } = e.instr {
                    if matches!(e.state, EState::Done | EState::Executing) && e.addr == addr {
                        // An Executing store has computed addr/result
                        // already (start_exec stored them).
                        fwd = Some(e.result);
                        break;
                    }
                }
            }
        }
        if fwd.is_none() && self.sb_occ[bucket(addr)] > 0 {
            fwd = self.sb.iter().rev().find(|s| s.addr == addr).map(|s| s.val);
        }

        let e = self.entry_mut(seq).unwrap();
        e.dispatched_at = now;
        e.state = EState::Executing;
        let pc = e.pc;
        if self.cfg.pipe_trace {
            self.pipe_event(now, PipeKind::Issue { seq, pc: pc as u64 });
        }
        if let Some(v) = fwd {
            self.stats.forwarded_loads += 1;
            let e = self.entry_mut(seq).unwrap();
            e.addr = usize::MAX; // marks "value already bound"
            e.result = v;
            self.events.push(Reverse((now + 1, Ev::Rob(seq))));
        } else {
            let lat = bus.access_latency(self.id, addr, false).max(1);
            let e = self.entry_mut(seq).unwrap();
            e.addr = addr;
            self.events.push(Reverse((now + lat, Ev::Rob(seq))));
        }
    }

    // ------------------------------------------------------------------
    // Squash (branch misprediction)

    fn squash_after(&mut self, branch_seq: u64, next_pc: usize, now: u64) {
        self.squash_tail(branch_seq, next_pc, now);
        if self.honor_scopes() {
            self.scope.branch_resolved(branch_seq, true);
            if self.cfg.pipe_trace {
                self.pipe_event(
                    now,
                    PipeKind::Recovery {
                        from_seq: branch_seq,
                    },
                );
            }
        }
    }

    /// Remove every entry younger than `keep_upto` (exclusive) and
    /// redirect fetch. Scope-unit recovery is the caller's business.
    fn squash_tail(&mut self, keep_upto: u64, next_pc: usize, now: u64) {
        while let Some(back) = self.rob.back() {
            if back.seq <= keep_upto {
                break;
            }
            let e = self.rob.pop_back().unwrap();
            if e.counted {
                self.mem_in_flight -= 1;
                if self.honor_scopes() {
                    self.scope.mem_squashed(e.mask);
                }
            }
            match e.instr {
                Instr::Store { .. } => {
                    if matches!(e.state, EState::Executing | EState::Done) {
                        self.rob_store_occ[bucket(e.addr)] -= 1;
                    }
                }
                Instr::Fence { .. } => self.fences_in_rob -= 1,
                _ => {}
            }
        }
        // The index deques are ascending: squashed tails pop off the
        // back.
        while self
            .unresolved_stores
            .back()
            .is_some_and(|&s| s > keep_upto)
        {
            self.unresolved_stores.pop_back();
        }
        while self.incomplete_cas.back().is_some_and(|&s| s > keep_upto) {
            self.incomplete_cas.pop_back();
        }
        // Rebuild the producer map from the survivors (front-to-back,
        // so the youngest producer of each register wins).
        self.reg_producer = [None; NUM_REGS];
        for e in &self.rob {
            if let Some(rd) = e.instr.dest() {
                self.reg_producer[rd.0 as usize] = Some(e.seq);
            }
        }
        self.ready_q.retain(|&s| s <= keep_upto);
        self.blocked_loads.retain(|&s| s <= keep_upto);
        self.blocked_fence = None;
        self.fetch_done = false;
        self.fetch_pc = next_pc;
        self.fetch_resume = now + self.cfg.mispredict_penalty;
    }

    /// In-window speculation violation replay (Gharachorloo): a remote
    /// write to `addr` just became visible. Any load of `addr` that
    /// completed but has not retired, and that sits behind a
    /// still-unretired speculatively-issued fence, may have bound a
    /// stale value; squash from the oldest such load and re-execute.
    /// Without in-window speculation fences block issue, so no load
    /// ever crosses a fence and plain load-load reordering is legal
    /// RMO behaviour.
    pub fn coherence_probe(&mut self, addr: usize, now: u64) {
        if !self.cfg.fence.in_window_speculation {
            return;
        }
        // A victim load must sit behind a fence; with none in the ROB
        // the scan cannot find one.
        if self.fences_in_rob == 0 {
            return;
        }
        let mut fence_seen = false;
        let mut victim: Option<(u64, usize)> = None;
        for e in &self.rob {
            if matches!(e.instr, Instr::Fence { .. }) {
                fence_seen = true;
                continue;
            }
            if fence_seen
                && e.state == EState::Done
                && matches!(e.instr, Instr::Load { .. })
                && e.addr == addr
            {
                victim = Some((e.seq, e.pc));
                break;
            }
        }
        let Some((seq, pc)) = victim else {
            return;
        };
        self.stats.speculation_replays += 1;
        self.squash_tail(seq.saturating_sub(1), pc, now);
        if self.honor_scopes() {
            self.scope.squash_from(seq);
            if self.cfg.pipe_trace {
                self.pipe_event(now, PipeKind::Recovery { from_seq: seq });
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue

    fn issue(&mut self, now: u64, fence_stalled: &mut bool) {
        for _ in 0..self.cfg.issue_width {
            if self.fetch_done || now < self.fetch_resume {
                return;
            }
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.rob_full_stall_cycles += 1;
                return;
            }
            // A fence blocking the issue stage (T/S mode).
            if let Some((kind, wait, pc)) = self.blocked_fence {
                if !self.fence_satisfied(wait) {
                    *fence_stalled = true;
                    self.scope
                        .coverage
                        .insert(sfence_core::coverage::STALL_AT_ISSUE);
                    return;
                }
                self.blocked_fence = None;
                if self.cfg.pipe_trace {
                    self.pipe_event(now, PipeKind::FenceComplete { pc: pc as u64 });
                }
                self.push_entry(pc, Instr::Fence { kind }, now, |_| {});
                continue;
            }
            let pc = self.fetch_pc;
            let instr = self.code[pc];
            match instr {
                Instr::Fence { kind } => {
                    let kind_eff = if self.honor_scopes() {
                        kind
                    } else {
                        FenceKind::Global
                    };
                    let wait = if self.honor_scopes() {
                        if self.cfg.pipe_trace {
                            // Delta-compare the scope-unit counter: a
                            // degrade inside fence_request is otherwise
                            // invisible at this call site.
                            let degraded = self.scope.stats.degraded_fences;
                            let wait = self.scope.fence_request(kind_eff);
                            if self.scope.stats.degraded_fences > degraded {
                                self.pipe_event(now, PipeKind::Degrade { pc: pc as u64 });
                            }
                            wait
                        } else {
                            self.scope.fence_request(kind_eff)
                        }
                    } else {
                        FenceWait::All
                    };
                    if self.cfg.pipe_trace {
                        self.pipe_event(
                            now,
                            PipeKind::FenceDispatch {
                                pc: pc as u64,
                                scoped: matches!(wait, FenceWait::Mask(_)),
                            },
                        );
                    }
                    if self.cfg.fence.in_window_speculation {
                        self.fetch_pc += 1;
                        self.push_entry(pc, instr, now, |e| {
                            e.fence_wait = Some(wait);
                        });
                    } else if self.fence_satisfied(wait) {
                        self.fetch_pc += 1;
                        if self.cfg.pipe_trace {
                            self.pipe_event(now, PipeKind::FenceComplete { pc: pc as u64 });
                        }
                        self.push_entry(pc, instr, now, |_| {});
                    } else {
                        self.fetch_pc += 1;
                        self.blocked_fence = Some((kind, wait, pc));
                        *fence_stalled = true;
                        self.scope
                            .coverage
                            .insert(sfence_core::coverage::STALL_AT_ISSUE);
                        return;
                    }
                }
                Instr::FsStart { cid } => {
                    let seq = self.next_seq;
                    if self.honor_scopes() {
                        if self.cfg.pipe_trace {
                            let overflows = self.scope.stats.fss_overflows;
                            self.scope.fs_start(cid, seq);
                            if self.scope.stats.fss_overflows > overflows {
                                self.pipe_event(now, PipeKind::Overflow { seq });
                            }
                        } else {
                            self.scope.fs_start(cid, seq);
                        }
                    }
                    self.fetch_pc += 1;
                    self.push_entry(pc, instr, now, |_| {});
                }
                Instr::FsEnd { .. } => {
                    let seq = self.next_seq;
                    if self.honor_scopes() {
                        self.scope.fs_end(seq);
                    }
                    self.fetch_pc += 1;
                    self.push_entry(pc, instr, now, |_| {});
                }
                Instr::Jump { target } => {
                    self.fetch_pc = target;
                    self.push_entry(pc, instr, now, |_| {});
                }
                Instr::Halt => {
                    self.fetch_done = true;
                    self.push_entry(pc, instr, now, |_| {});
                }
                Instr::Branch { target, .. } => {
                    let predicted = self.bpred.predict(pc);
                    let seq = self.next_seq;
                    if self.honor_scopes() {
                        self.scope.branch_issued(seq);
                    }
                    self.fetch_pc = if predicted { target } else { pc + 1 };
                    self.push_entry(pc, instr, now, |e| {
                        e.predicted_taken = predicted;
                    });
                }
                Instr::Load { set_flagged, .. }
                | Instr::Store { set_flagged, .. }
                | Instr::Cas { set_flagged, .. } => {
                    let mask = if self.honor_scopes() {
                        self.scope.mem_issued(set_flagged)
                    } else {
                        ScopeMask::EMPTY
                    };
                    self.mem_in_flight += 1;
                    self.fetch_pc += 1;
                    self.push_entry(pc, instr, now, |e| {
                        e.mask = mask;
                        e.counted = true;
                    });
                }
                _ => {
                    self.fetch_pc += 1;
                    self.push_entry(pc, instr, now, |_| {});
                }
            }
        }
    }

    fn fence_satisfied(&self, wait: FenceWait) -> bool {
        match wait {
            FenceWait::All => self.mem_in_flight == 0,
            FenceWait::Mask(m) => self.scope.mask_clear(m),
        }
    }

    /// Allocate a ROB entry for the instruction at `pc`, resolving its
    /// source operands.
    fn push_entry(&mut self, pc: usize, instr: Instr, now: u64, fixup: impl FnOnce(&mut RobEntry)) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.instrs_issued += 1;

        match instr {
            // A store's address is unresolved until dispatch; a CAS
            // is incomplete until its completion event.
            Instr::Store { .. } => self.unresolved_stores.push_back(seq),
            Instr::Cas { .. } => self.incomplete_cas.push_back(seq),
            Instr::Fence { .. } => self.fences_in_rob += 1,
            _ => {}
        }

        let mut ops = [Src::None; 3];
        let slots: [(usize, Option<Operand>); 3] = match instr {
            Instr::Mov { a, .. } => [(0, Some(a)), (1, None), (2, None)],
            Instr::Alu { a, b, .. } | Instr::Cmp { a, b, .. } | Instr::Branch { a, b, .. } => {
                [(0, Some(a)), (1, Some(b)), (2, None)]
            }
            Instr::Load { base, .. } => [(0, Some(base)), (1, None), (2, None)],
            Instr::Store { src, base, .. } => [(0, Some(src)), (1, Some(base)), (2, None)],
            Instr::Cas {
                base,
                expected,
                new,
                ..
            } => [(0, Some(base)), (1, Some(expected)), (2, Some(new))],
            _ => [(0, None), (1, None), (2, None)],
        };
        for (slot, op) in slots {
            if let Some(op) = op {
                ops[slot] = self.resolve_src(op, seq);
            }
        }
        let executes = matches!(
            instr,
            Instr::Imm { .. }
                | Instr::Mov { .. }
                | Instr::Alu { .. }
                | Instr::Cmp { .. }
                | Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Cas { .. }
                | Instr::Branch { .. }
        );
        let waiting = ops.iter().any(|o| matches!(o, Src::Wait(_)));
        let state = if !executes {
            EState::Done
        } else if waiting {
            EState::Waiting
        } else {
            EState::Ready
        };
        let mut e = RobEntry {
            seq,
            pc,
            instr,
            ops,
            state,
            result: 0,
            addr: 0,
            mask: ScopeMask::EMPTY,
            counted: false,
            fence_wait: None,
            predicted_taken: false,
            issued_at: now,
            dispatched_at: 0,
            completed_at: now,
            waiters: Vec::new(),
        };
        fixup(&mut e);
        if let Some(rd) = instr.dest() {
            self.reg_producer[rd.0 as usize] = Some(seq);
        }
        if state == EState::Ready {
            self.ready_q.push(seq);
        }
        self.rob.push_back(e);
        if self.cfg.pipe_trace {
            self.pipe_event(now, PipeKind::Fetch { seq, pc: pc as u64 });
        }
    }

    fn resolve_src(&mut self, op: Operand, consumer: u64) -> Src {
        match op {
            Operand::Imm(v) => Src::Ready(v),
            Operand::Reg(r) => match self.reg_producer[r.0 as usize] {
                None => Src::Ready(self.regs[r.0 as usize]),
                Some(p) => {
                    let e = self.entry_mut(p).expect("producer must be in ROB");
                    if e.state == EState::Done {
                        Src::Ready(e.result)
                    } else {
                        e.waiters.push(consumer);
                        Src::Wait(p)
                    }
                }
            },
        }
    }
}

#[inline]
fn src_val(s: Src) -> i64 {
    match s {
        Src::Ready(v) => v,
        other => panic!("operand not ready at use: {other:?}"),
    }
}

/// Value of an instruction operand, taking immediates directly and
/// register operands from the captured slot.
#[inline]
fn operand_val(op: Operand, ops: &[Src; 3], slot: usize) -> i64 {
    match op {
        Operand::Imm(v) => v,
        Operand::Reg(_) => src_val(ops[slot]),
    }
}

#[inline]
fn mem_addr(base: i64, offset: i64) -> usize {
    let a = base.wrapping_add(offset);
    debug_assert!(a >= 0, "negative address {a}");
    a as usize
}
