//! The interface between a core and the shared machine: timing
//! queries against the cache hierarchy and functional reads/writes of
//! the flat word memory. The machine (sfence-sim) implements this; the
//! cpu crate's unit tests use a trivial fixed-latency implementation.

/// Shared-machine services used by a core.
pub trait MemBus {
    /// Resolve the timing of an access *dispatched this cycle* (tag
    /// lookup, coherence, LRU — all charged instantly; the data moves
    /// at completion time).
    fn access_latency(&mut self, core: usize, addr: usize, write: bool) -> u64;

    /// Functional read at completion time.
    fn read(&mut self, addr: usize) -> i64;

    /// Functional write at store-drain (or CAS) completion time.
    fn write(&mut self, core: usize, addr: usize, val: i64);
}

/// A flat, fixed-latency bus for unit tests: every access costs
/// `latency` cycles (no caches).
#[derive(Debug, Clone)]
pub struct FlatBus {
    pub mem: Vec<i64>,
    pub latency: u64,
    /// Optional per-address latency overrides (simulating misses).
    pub slow_addrs: Vec<(usize, u64)>,
}

impl FlatBus {
    pub fn new(words: usize, latency: u64) -> Self {
        Self {
            mem: vec![0; words],
            latency,
            slow_addrs: Vec::new(),
        }
    }
}

impl MemBus for FlatBus {
    fn access_latency(&mut self, _core: usize, addr: usize, _write: bool) -> u64 {
        self.slow_addrs
            .iter()
            .find(|&&(a, _)| a == addr)
            .map(|&(_, l)| l)
            .unwrap_or(self.latency)
    }

    fn read(&mut self, addr: usize) -> i64 {
        self.mem[addr]
    }

    fn write(&mut self, _core: usize, addr: usize, val: i64) {
        self.mem[addr] = val;
    }
}
