//! Per-core execution statistics, including the fence-stall
//! attribution that the paper's figures are built from.

/// Statistics collected by one core over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired (architectural).
    pub instrs_retired: u64,
    /// Instructions issued (includes wrong-path work).
    pub instrs_issued: u64,
    pub loads: u64,
    pub stores: u64,
    pub cas_ops: u64,
    pub fences_retired: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwarded_loads: u64,
    /// Cycles the issue stage (T/S) or the retire stage (T+/S+) was
    /// blocked by a fence — the paper's "Fence Stalls" component.
    pub fence_stall_cycles: u64,
    /// Cycles issue was blocked because the ROB was full.
    pub rob_full_stall_cycles: u64,
    /// Cycles retire was blocked because the store buffer was full.
    pub sb_full_stall_cycles: u64,
    /// Load dispatches delayed by memory disambiguation.
    pub load_disambiguation_blocks: u64,
    pub branches_resolved: u64,
    pub mispredictions: u64,
    /// In-window speculation violation replays (loads squashed because
    /// a remote write invalidated their value before retirement).
    pub speculation_replays: u64,
    /// Cycle at which this core retired its `halt`.
    pub halted_at: Option<u64>,
    /// Cycle at which the core fully drained (halt + empty SB).
    pub finished_at: Option<u64>,
}

impl CoreStats {
    /// Fraction of this core's active cycles spent stalled on fences.
    pub fn fence_stall_fraction(&self) -> f64 {
        match self.finished_at {
            Some(t) if t > 0 => self.fence_stall_cycles as f64 / t as f64,
            _ => 0.0,
        }
    }
}
