//! Core configuration: pipeline geometry and the four fence
//! configurations of the paper's evaluation (T, S, T+, S+).

use sfence_core::ScopeConfig;

/// The four fence configurations of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FenceConfig {
    /// `true` = S-Fence hardware enabled (scoped fences honoured);
    /// `false` = every fence behaves as a traditional full fence.
    pub honor_scopes: bool,
    /// In-window speculation [Gharachorloo et al.]: fences issue
    /// speculatively and hold only retirement.
    pub in_window_speculation: bool,
}

impl FenceConfig {
    /// `T` — traditional fences.
    pub const TRADITIONAL: FenceConfig = FenceConfig {
        honor_scopes: false,
        in_window_speculation: false,
    };
    /// `S` — scoped fences.
    pub const SFENCE: FenceConfig = FenceConfig {
        honor_scopes: true,
        in_window_speculation: false,
    };
    /// `T+` — traditional fences with in-window speculation.
    pub const TRADITIONAL_SPEC: FenceConfig = FenceConfig {
        honor_scopes: false,
        in_window_speculation: true,
    };
    /// `S+` — scoped fences with in-window speculation.
    pub const SFENCE_SPEC: FenceConfig = FenceConfig {
        honor_scopes: true,
        in_window_speculation: true,
    };

    /// The paper's label for this configuration.
    pub fn label(&self) -> &'static str {
        match (self.honor_scopes, self.in_window_speculation) {
            (false, false) => "T",
            (true, false) => "S",
            (false, true) => "T+",
            (true, true) => "S+",
        }
    }
}

/// Per-core microarchitectural parameters (paper Table III defaults).
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Reorder buffer entries (Fig. 16 sweeps 64/128/256).
    pub rob_size: usize,
    /// Store buffer entries.
    pub sb_size: usize,
    /// Instructions issued into the ROB per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Redirect bubble after a branch misprediction.
    pub mispredict_penalty: u64,
    /// Branch predictor table entries (power of two).
    pub bpred_entries: usize,
    /// Maximum store-buffer drains in flight (out-of-order drain).
    pub max_outstanding_stores: usize,
    /// Drain the store buffer in FIFO order (TSO-ish) instead of the
    /// default out-of-order drain (RMO, the paper's memory model).
    pub sb_drain_in_order: bool,
    /// Make CAS drain the store buffer before executing (x86
    /// lock-prefix semantics). Off by default: under RMO a CAS orders
    /// prior *loads* (it executes at the ROB head) but not prior
    /// stores — explicit fences must do that, which is exactly what
    /// the paper's benchmarks exercise. Same-address stores are always
    /// ordered regardless.
    pub cas_drains_sb: bool,
    pub fence: FenceConfig,
    pub scope: ScopeConfig,
    /// Record retired-event traces for conformance checking.
    pub trace: bool,
    /// Record the microarchitectural pipeline event trace
    /// ([`sfence_core::pipe`]): fetch/issue/retire, fence
    /// dispatch/complete, degrade/overflow/recovery, directory walks.
    /// Off by default; the hot path pays one bool check when disabled.
    pub pipe_trace: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            rob_size: 128,
            sb_size: 8,
            issue_width: 2,
            retire_width: 2,
            mispredict_penalty: 8,
            bpred_entries: 512,
            max_outstanding_stores: 4,
            sb_drain_in_order: false,
            cas_drains_sb: false,
            fence: FenceConfig::SFENCE,
            scope: ScopeConfig::default(),
            trace: false,
            pipe_trace: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(FenceConfig::TRADITIONAL.label(), "T");
        assert_eq!(FenceConfig::SFENCE.label(), "S");
        assert_eq!(FenceConfig::TRADITIONAL_SPEC.label(), "T+");
        assert_eq!(FenceConfig::SFENCE_SPEC.label(), "S+");
    }
}
