//! # sfence-cpu
//!
//! The out-of-order core model with S-Fence hardware support: ROB,
//! store buffer with store-to-load forwarding, dataflow wakeup, branch
//! prediction with genuine wrong-path fetch and squash, the scope unit
//! from `sfence-core`, and the four fence configurations of the
//! paper's evaluation (T, S, T+, S+).

pub mod bpred;
pub mod bus;
pub mod config;
pub mod core;
pub mod stats;

pub use bpred::BranchPredictor;
pub use bus::{FlatBus, MemBus};
pub use config::{CoreConfig, FenceConfig};
pub use core::Core;
pub use stats::CoreStats;

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_isa::interp::run_single;
    use sfence_isa::ir::*;
    use sfence_isa::{CompileOpts, Program};

    fn compile(p: &IrProgram) -> Program {
        p.compile(&CompileOpts::default()).expect("compile")
    }

    /// Run one thread on a single core over a flat bus; return final
    /// memory and the core.
    fn run_core(prog: &Program, cfg: CoreConfig, latency: u64, fuel: u64) -> (Vec<i64>, Core) {
        let mut bus = FlatBus::new(prog.data_size, latency);
        for &(a, v) in &prog.data_init {
            bus.mem[a] = v;
        }
        let mut core = Core::new(0, prog.threads[0].clone(), cfg);
        for now in 0..fuel {
            core.cycle(now, &mut bus);
            if core.finished() {
                break;
            }
        }
        assert!(core.finished(), "core did not finish within {fuel} cycles");
        (bus.mem, core)
    }

    fn sum_program() -> IrProgram {
        let mut p = IrProgram::new();
        let out = p.global("out");
        let arr = p.array("arr", 64);
        p.thread(move |b| {
            b.let_("i", c(0));
            b.while_(l("i").lt(c(64)), move |w| {
                w.store(arr.at(l("i")), l("i").mul(c(3)));
                w.assign("i", l("i").add(c(1)));
            });
            b.let_("i2", c(0));
            b.let_("sum", c(0));
            b.while_(l("i2").lt(c(64)), move |w| {
                w.assign("sum", l("sum").add(ld(arr.at(l("i2")))));
                w.assign("i2", l("i2").add(c(1)));
            });
            b.store(out.cell(), l("sum"));
            b.halt();
        });
        p
    }

    /// The golden oracle: for single-threaded programs, the OoO core
    /// must produce exactly the reference interpreter's final memory,
    /// for every fence config and timing knob.
    #[test]
    fn matches_reference_interpreter_under_all_configs() {
        let p = sum_program();
        let prog = compile(&p);
        let mut ref_mem = prog.initial_memory();
        run_single(&prog, 0, &mut ref_mem, 1_000_000).unwrap();

        for fence in [
            FenceConfig::TRADITIONAL,
            FenceConfig::SFENCE,
            FenceConfig::TRADITIONAL_SPEC,
            FenceConfig::SFENCE_SPEC,
        ] {
            for rob in [8, 32, 128] {
                for in_order in [false, true] {
                    let cfg = CoreConfig {
                        rob_size: rob,
                        fence,
                        sb_drain_in_order: in_order,
                        ..CoreConfig::default()
                    };
                    let (mem, _) = run_core(&prog, cfg, 30, 2_000_000);
                    assert_eq!(
                        mem,
                        ref_mem,
                        "config {:?} rob={rob} in_order={in_order}",
                        fence.label()
                    );
                }
            }
        }
    }

    #[test]
    fn branch_mispredictions_squash_correctly() {
        // Data-dependent branches with an irregular pattern.
        let mut p = IrProgram::new();
        let out = p.global("out");
        p.thread(move |b| {
            b.let_("x", c(7));
            b.let_("acc", c(0));
            b.let_("i", c(0));
            b.while_(l("i").lt(c(100)), move |w| {
                // xorshift-ish irregular pattern
                w.assign("x", l("x").mul(c(1103515245)).add(c(12345)));
                w.if_else(
                    l("x").shr(c(16)).bitand(c(1)).eq(c(0)),
                    |t| t.assign("acc", l("acc").add(c(3))),
                    |e| e.assign("acc", l("acc").sub(c(1))),
                );
                w.assign("i", l("i").add(c(1)));
            });
            b.store(out.cell(), l("acc"));
            b.halt();
        });
        let prog = compile(&p);
        let mut ref_mem = prog.initial_memory();
        run_single(&prog, 0, &mut ref_mem, 1_000_000).unwrap();
        let (mem, core) = run_core(&prog, CoreConfig::default(), 10, 2_000_000);
        assert_eq!(mem[prog.addr_of("out")], ref_mem[prog.addr_of("out")]);
        assert!(
            core.stats.mispredictions > 0,
            "pattern must defeat a 2-bit predictor sometimes"
        );
        assert!(core.stats.instrs_issued > core.stats.instrs_retired);
    }

    #[test]
    fn store_to_load_forwarding_observes_program_order() {
        let mut p = IrProgram::new();
        let x = p.global("x");
        let out = p.global("out");
        p.thread(move |b| {
            b.store(x.cell(), c(1));
            b.store(x.cell(), c(2));
            b.let_("v", ld(x.cell()));
            b.store(out.cell(), l("v"));
            b.halt();
        });
        let prog = compile(&p);
        let (mem, core) = run_core(&prog, CoreConfig::default(), 100, 100_000);
        assert_eq!(mem[prog.addr_of("out")], 2, "must see youngest older store");
        assert!(core.stats.forwarded_loads >= 1);
    }

    #[test]
    fn traditional_fence_drains_everything() {
        // store (slow) ; FENCE ; load — the load must not be
        // dispatched until the store drained.
        let mut p = IrProgram::new();
        let a = p.global("a");
        let b_ = p.global("b");
        let out = p.global("out");
        p.thread(move |bb| {
            bb.store(a.cell(), c(5));
            bb.fence();
            bb.let_("v", ld(b_.cell()));
            bb.store(out.cell(), l("v").add(c(1)));
            bb.halt();
        });
        let prog = compile(&p);
        let cfg = CoreConfig {
            fence: FenceConfig::TRADITIONAL,
            trace: true,
            ..CoreConfig::default()
        };
        let (_, core) = run_core(&prog, cfg, 50, 100_000);
        assert!(core.stats.fence_stall_cycles > 0, "fence must stall");
        // Conformance: replay the trace through the semantics checker.
        sfence_core::check_trace(&core.trace).expect("trace conforms");
    }

    #[test]
    fn scoped_fence_skips_out_of_scope_stall() {
        // A slow *unscoped* store before a class-scope region whose
        // fence only waits for the fast in-scope store.
        let mut p = IrProgram::new();
        let slow = p.global("slow");
        let fast = p.global("fast");
        let cls = p.class("Q");
        p.method(cls, "op", &[], move |b| {
            b.store(fast.cell(), c(1));
            b.fence_class();
            b.store(fast.cell(), c(2));
        });
        p.thread(move |b| {
            b.store(slow.cell(), c(9)); // long-latency, out of scope
            b.call("Q::op", &[]);
            b.halt();
        });
        let prog = compile(&p);
        let slow_addr = prog.addr_of("slow");

        let mk = |fence| CoreConfig {
            fence,
            trace: true,
            ..CoreConfig::default()
        };
        let run = |fence| {
            let mut bus = FlatBus::new(prog.data_size, 3);
            bus.slow_addrs.push((slow_addr, 400));
            let mut core = Core::new(0, prog.threads[0].clone(), mk(fence));
            let mut now = 0;
            while !core.finished() {
                core.cycle(now, &mut bus);
                now += 1;
                assert!(now < 100_000);
            }
            (now, core)
        };
        let (t_cycles, t_core) = run(FenceConfig::TRADITIONAL);
        let (s_cycles, s_core) = run(FenceConfig::SFENCE);
        assert!(
            s_cycles < t_cycles,
            "S-Fence ({s_cycles}) must beat traditional ({t_cycles})"
        );
        assert!(s_core.stats.fence_stall_cycles < t_core.stats.fence_stall_cycles);
        sfence_core::check_trace(&t_core.trace).expect("T conforms");
        sfence_core::check_trace(&s_core.trace).expect("S conforms");
    }

    #[test]
    fn in_window_speculation_reduces_stalls() {
        let mut p = IrProgram::new();
        let a = p.global("a");
        let b_ = p.global("b");
        p.thread(move |bb| {
            bb.let_("i", c(0));
            bb.while_(l("i").lt(c(20)), move |w| {
                w.store(a.cell(), l("i"));
                w.fence();
                w.let_("v", ld(b_.cell()));
                w.assign("i", l("i").add(l("v")).add(c(1)));
            });
            bb.halt();
        });
        let prog = compile(&p);
        let run = |fence| {
            let (_, core) = run_core(
                &prog,
                CoreConfig {
                    fence,
                    ..CoreConfig::default()
                },
                60,
                1_000_000,
            );
            core.stats.finished_at.unwrap()
        };
        let t = run(FenceConfig::TRADITIONAL);
        let t_spec = run(FenceConfig::TRADITIONAL_SPEC);
        assert!(
            t_spec < t,
            "in-window speculation ({t_spec}) must beat blocking issue ({t})"
        );
    }

    #[test]
    fn cas_is_atomic_and_nonspeculative() {
        let mut p = IrProgram::new();
        let x = p.shared("x");
        let wins = p.global("wins");
        p.init(x, 0);
        p.thread(move |b| {
            b.let_("n", c(0));
            b.let_("i", c(0));
            b.while_(l("i").lt(c(50)), move |w| {
                w.cas("ok", x.cell(), l("i"), l("i").add(c(1)));
                w.assign("n", l("n").add(l("ok")));
                w.assign("i", l("i").add(c(1)));
            });
            b.store(wins.cell(), l("n"));
            b.halt();
        });
        let prog = compile(&p);
        let (mem, core) = run_core(&prog, CoreConfig::default(), 20, 1_000_000);
        assert_eq!(mem[prog.addr_of("x")], 50);
        assert_eq!(mem[prog.addr_of("wins")], 50);
        assert_eq!(core.stats.cas_ops, 50);
    }

    #[test]
    fn rob_size_bounds_inflight_work() {
        let p = sum_program();
        let prog = compile(&p);
        let (_, small) = run_core(
            &prog,
            CoreConfig {
                rob_size: 4,
                ..CoreConfig::default()
            },
            200,
            5_000_000,
        );
        let (_, large) = run_core(
            &prog,
            CoreConfig {
                rob_size: 256,
                ..CoreConfig::default()
            },
            200,
            5_000_000,
        );
        assert!(
            large.stats.finished_at.unwrap() < small.stats.finished_at.unwrap(),
            "bigger ROB must overlap more memory latency"
        );
        assert!(small.stats.rob_full_stall_cycles > 0);
    }
}
