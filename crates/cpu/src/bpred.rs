//! Branch direction predictor: a table of 2-bit saturating counters
//! indexed by a PC hash. Branch targets are static in this ISA, so no
//! BTB is needed.

/// 2-bit-counter branch predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mask: usize,
    pub predictions: u64,
    pub mispredictions: u64,
}

impl BranchPredictor {
    /// `entries` must be a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        Self {
            // Weakly taken: loop branches warm up fast.
            counters: vec![2; entries],
            mask: entries - 1,
            predictions: 0,
            mispredictions: 0,
        }
    }

    #[inline]
    fn index(&self, pc: usize) -> usize {
        // Cheap avalanche; PCs are small and dense.
        (pc.wrapping_mul(0x9E37_79B9)) >> 4 & self.mask
    }

    /// Predict the direction of the branch at `pc`.
    pub fn predict(&mut self, pc: usize) -> bool {
        self.predictions += 1;
        self.counters[self.index(pc)] >= 2
    }

    /// Train with the actual outcome; call once per resolved branch.
    pub fn update(&mut self, pc: usize, taken: bool, mispredicted: bool) {
        if mispredicted {
            self.mispredictions += 1;
        }
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..4 {
            let pred = p.predict(100);
            p.update(100, true, !pred);
        }
        assert!(p.predict(100), "saturated taken");
        for _ in 0..4 {
            let pred = p.predict(100);
            p.update(100, false, pred);
        }
        assert!(!p.predict(100), "re-learned not-taken");
        assert!(p.mispredictions > 0);
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut p = BranchPredictor::new(1024);
        for _ in 0..8 {
            let t = p.predict(8);
            p.update(8, true, !t);
            let n = p.predict(9);
            p.update(9, false, n);
        }
        assert!(p.predict(8));
        assert!(!p.predict(9));
    }
}
