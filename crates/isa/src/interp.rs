//! Reference interpreters.
//!
//! These execute compiled programs *functionally* (no timing, no
//! reordering) and serve as oracles for the cycle-level simulator:
//!
//! - [`run_single`] executes one thread in program order against a
//!   private memory image. For single-threaded programs the simulator
//!   must produce exactly the same final memory regardless of any
//!   timing knob or fence configuration — this is the strongest cheap
//!   correctness oracle we have, and the property tests lean on it.
//! - [`run_sc`] executes all threads under sequential consistency with
//!   a caller-controlled (e.g. seeded round-robin) interleaving. It is
//!   used for workload sanity checks: if an invariant fails under SC,
//!   the bug is in the workload, not the memory model.

use crate::instr::{Instr, Operand, Reg, NUM_REGS};
use crate::program::Program;
use std::fmt;

/// Why an interpretation stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpExit {
    /// The thread executed `halt`.
    Halted,
    /// Instruction budget exhausted (likely livelock or missing halt).
    OutOfFuel,
}

/// Interpreter errors (the machine itself never faults; these indicate
/// malformed programs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    AddrOutOfRange { thread: usize, pc: usize, addr: i64 },
    PcOutOfRange { thread: usize, pc: usize },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::AddrOutOfRange { thread, pc, addr } => {
                write!(f, "thread {thread} pc {pc}: address {addr} out of range")
            }
            InterpError::PcOutOfRange { thread, pc } => {
                write!(f, "thread {thread}: pc {pc} out of range")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Statistics from a reference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpStats {
    pub instrs: u64,
    pub loads: u64,
    pub stores: u64,
    pub cas_attempts: u64,
    pub cas_successes: u64,
    pub fences: u64,
}

/// Architectural state of one interpreted thread.
#[derive(Debug, Clone)]
pub struct ThreadState {
    pub regs: [i64; NUM_REGS],
    pub pc: usize,
    pub halted: bool,
}

impl Default for ThreadState {
    fn default() -> Self {
        Self {
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
        }
    }
}

impl ThreadState {
    fn operand(&self, op: Operand) -> i64 {
        match op {
            Operand::Reg(Reg(r)) => self.regs[r as usize],
            Operand::Imm(v) => v,
        }
    }

    /// Execute one instruction of `code` against `mem` under SC
    /// semantics (every instruction is atomic and immediately
    /// visible). Returns false when the thread halts (or was already
    /// halted).
    ///
    /// Public so external schedulers — in particular the
    /// `sfence-litmus` SC reference checker, which enumerates
    /// interleavings by driving one [`ThreadState`] per thread — can
    /// step threads one instruction at a time.
    pub fn step(
        &mut self,
        thread: usize,
        code: &[Instr],
        mem: &mut [i64],
        stats: &mut InterpStats,
    ) -> Result<bool, InterpError> {
        if self.halted {
            return Ok(false);
        }
        if self.pc >= code.len() {
            return Err(InterpError::PcOutOfRange {
                thread,
                pc: self.pc,
            });
        }
        let pc = self.pc;
        let addr_of = |base: i64, offset: i64| -> Result<usize, InterpError> {
            let a = base.wrapping_add(offset);
            if a < 0 || a as usize >= mem.len() {
                Err(InterpError::AddrOutOfRange {
                    thread,
                    pc,
                    addr: a,
                })
            } else {
                Ok(a as usize)
            }
        };
        stats.instrs += 1;
        let mut next = pc + 1;
        match &code[pc] {
            Instr::Imm { rd, value } => self.regs[rd.0 as usize] = *value,
            Instr::Mov { rd, a } => self.regs[rd.0 as usize] = self.operand(*a),
            Instr::Alu { op, rd, a, b } => {
                self.regs[rd.0 as usize] = op.apply(self.operand(*a), self.operand(*b));
            }
            Instr::Cmp { op, rd, a, b } => {
                self.regs[rd.0 as usize] = op.apply(self.operand(*a), self.operand(*b)) as i64;
            }
            Instr::Load {
                rd, base, offset, ..
            } => {
                stats.loads += 1;
                let a = addr_of(self.operand(*base), *offset)?;
                self.regs[rd.0 as usize] = mem[a];
            }
            Instr::Store {
                src, base, offset, ..
            } => {
                stats.stores += 1;
                let a = addr_of(self.operand(*base), *offset)?;
                mem[a] = self.operand(*src);
            }
            Instr::Cas {
                rd,
                base,
                offset,
                expected,
                new,
                ..
            } => {
                stats.cas_attempts += 1;
                let a = addr_of(self.operand(*base), *offset)?;
                if mem[a] == self.operand(*expected) {
                    mem[a] = self.operand(*new);
                    self.regs[rd.0 as usize] = 1;
                    stats.cas_successes += 1;
                } else {
                    self.regs[rd.0 as usize] = 0;
                }
            }
            Instr::Fence { .. } => stats.fences += 1,
            Instr::FsStart { .. } | Instr::FsEnd { .. } | Instr::Nop => {}
            Instr::Branch { op, a, b, target } => {
                if op.apply(self.operand(*a), self.operand(*b)) {
                    next = *target;
                }
            }
            Instr::Jump { target } => next = *target,
            Instr::Halt => {
                self.halted = true;
                return Ok(false);
            }
        }
        self.pc = next;
        Ok(true)
    }
}

/// Run one thread to completion (program order, own memory image).
pub fn run_single(
    prog: &Program,
    thread: usize,
    mem: &mut [i64],
    fuel: u64,
) -> Result<(InterpExit, InterpStats), InterpError> {
    let mut st = ThreadState::default();
    let mut stats = InterpStats::default();
    let code = &prog.threads[thread];
    for _ in 0..fuel {
        if !st.step(thread, code, mem, &mut stats)? {
            return Ok((InterpExit::Halted, stats));
        }
    }
    Ok((InterpExit::OutOfFuel, stats))
}

/// Run all threads under sequential consistency.
///
/// `schedule` picks, for each step, which of the still-running threads
/// advances: it receives the list of runnable thread indices and
/// returns a position within that list. Use a seeded RNG for varied
/// but reproducible interleavings, or `|r| 0` for round-robin-ish
/// behaviour.
pub fn run_sc(
    prog: &Program,
    mem: &mut [i64],
    fuel: u64,
    mut schedule: impl FnMut(&[usize]) -> usize,
) -> Result<(InterpExit, InterpStats), InterpError> {
    let mut threads: Vec<ThreadState> = (0..prog.threads.len())
        .map(|_| ThreadState::default())
        .collect();
    let mut stats = InterpStats::default();
    let mut runnable: Vec<usize> = (0..threads.len()).collect();
    for _ in 0..fuel {
        if runnable.is_empty() {
            return Ok((InterpExit::Halted, stats));
        }
        let pick = schedule(&runnable).min(runnable.len() - 1);
        let t = runnable[pick];
        let alive = threads[t].step(t, &prog.threads[t], mem, &mut stats)?;
        if !alive {
            runnable.remove(pick);
        }
    }
    if runnable.is_empty() {
        Ok((InterpExit::Halted, stats))
    } else {
        Ok((InterpExit::OutOfFuel, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::lower::CompileOpts;

    fn compile(p: &IrProgram) -> Program {
        p.compile(&CompileOpts::default()).expect("compile")
    }

    #[test]
    fn loop_sums_correctly() {
        let mut p = IrProgram::new();
        let out = p.global("out");
        p.thread(|b| {
            b.let_("i", c(0));
            b.let_("sum", c(0));
            b.while_(l("i").lt(c(10)), |w| {
                w.assign("sum", l("sum").add(l("i")));
                w.assign("i", l("i").add(c(1)));
            });
            b.store(out.cell(), l("sum"));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        let (exit, stats) = run_single(&prog, 0, &mut mem, 10_000).unwrap();
        assert_eq!(exit, InterpExit::Halted);
        assert_eq!(mem[prog.addr_of("out")], 45);
        assert!(stats.instrs > 10);
    }

    #[test]
    fn routine_inlining_and_return_values() {
        let mut p = IrProgram::new();
        let out = p.global("out");
        p.routine("double_plus", &["x", "y"], |b| {
            b.ret(Some(l("x").mul(c(2)).add(l("y"))));
        });
        p.thread(|b| {
            b.call_ret("r", "double_plus", &[c(20), c(2)]);
            b.call_ret("r2", "double_plus", &[l("r"), c(0)]);
            b.store(out.cell(), l("r2"));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        run_single(&prog, 0, &mut mem, 10_000).unwrap();
        assert_eq!(mem[prog.addr_of("out")], 84);
    }

    #[test]
    fn early_return_in_branch() {
        let mut p = IrProgram::new();
        let out = p.global("out");
        p.routine("clamp", &["x"], |b| {
            b.if_(l("x").gt(c(100)), |t| t.ret(Some(c(100))));
            b.ret(Some(l("x")));
        });
        p.thread(|b| {
            b.call_ret("a", "clamp", &[c(250)]);
            b.call_ret("b", "clamp", &[c(7)]);
            b.store(out.cell(), l("a").add(l("b")));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        run_single(&prog, 0, &mut mem, 10_000).unwrap();
        assert_eq!(mem[prog.addr_of("out")], 107);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut p = IrProgram::new();
        let x = p.shared("x");
        let out = p.global("out");
        p.init(x, 5);
        p.thread(|b| {
            b.cas("ok1", x.cell(), c(5), c(9)); // succeeds
            b.cas("ok2", x.cell(), c(5), c(11)); // fails (x is 9)
            b.store(out.cell(), l("ok1").mul(c(10)).add(l("ok2")));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        let (_, stats) = run_single(&prog, 0, &mut mem, 1_000).unwrap();
        assert_eq!(mem[prog.addr_of("x")], 9);
        assert_eq!(mem[prog.addr_of("out")], 10);
        assert_eq!(stats.cas_attempts, 2);
        assert_eq!(stats.cas_successes, 1);
    }

    #[test]
    fn array_indexing() {
        let mut p = IrProgram::new();
        let a = p.array("a", 8);
        let out = p.global("out");
        p.thread(|b| {
            b.let_("i", c(0));
            b.while_(l("i").lt(c(8)), |w| {
                w.store(a.at(l("i")), l("i").mul(l("i")));
                w.assign("i", l("i").add(c(1)));
            });
            b.let_("x", ld(a.at(c(3))).add(ld(a.at(c(7)))));
            b.store(out.cell(), l("x"));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        run_single(&prog, 0, &mut mem, 10_000).unwrap();
        assert_eq!(mem[prog.addr_of("out")], 9 + 49);
    }

    #[test]
    fn sc_interleaving_message_passing_is_ordered() {
        // Under SC, if the consumer sees flag==1 it must see data==42.
        let mut p = IrProgram::new();
        let data = p.shared("data");
        let flag = p.shared("flag");
        let got = p.global("got");
        p.thread(|b| {
            b.store(data.cell(), c(42));
            b.store(flag.cell(), c(1));
            b.halt();
        });
        p.thread(|b| {
            b.spin_until(ld(flag.cell()).eq(c(1)));
            b.store(got.cell(), ld(data.cell()));
            b.halt();
        });
        let prog = compile(&p);
        // Try a bunch of deterministic interleavings.
        for seed in 0..20u64 {
            let mut mem = prog.initial_memory();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let (exit, _) = run_sc(&prog, &mut mem, 1_000_000, |runnable| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as usize) % runnable.len()
            })
            .unwrap();
            assert_eq!(exit, InterpExit::Halted, "seed {seed}");
            assert_eq!(mem[prog.addr_of("got")], 42, "seed {seed}");
        }
    }

    #[test]
    fn out_of_fuel_reported() {
        let mut p = IrProgram::new();
        p.thread(|b| {
            b.loop_(|_| {});
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        let (exit, _) = run_single(&prog, 0, &mut mem, 100).unwrap();
        assert_eq!(exit, InterpExit::OutOfFuel);
    }

    #[test]
    fn address_out_of_range_detected() {
        let mut p = IrProgram::new();
        let a = p.array("a", 4);
        p.thread(|b| {
            b.store(a.at(c(1_000_000)), c(1));
            b.halt();
        });
        let prog = compile(&p);
        let mut mem = prog.initial_memory();
        assert!(matches!(
            run_single(&prog, 0, &mut mem, 100),
            Err(InterpError::AddrOutOfRange { .. })
        ));
    }
}
