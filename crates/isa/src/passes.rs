//! IR-level passes.
//!
//! The main one is [`enforce_sc`]: the SC-enforcement use case of §VI-B
//! of the paper (barnes, radiosity). Programs written for sequential
//! consistency are made SC-safe on a relaxed machine by inserting
//! fences between *conflicting shared* accesses, following a
//! simplified Shasha–Snir delay-set discipline: an access participates
//! in a delay pair iff it touches a global declared `shared` (private
//! and read-only data never conflict, which is exactly the property
//! S-Fence with set scope exploits — those accesses are left unflagged
//! and unordered).

use crate::ir::{Block, Expr, FenceSpec, Global, IrProgram, MemRef, Stmt};

/// How SC enforcement materialises its fences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScStyle {
    /// Insert traditional full fences (the paper's baseline `T`).
    Traditional,
    /// Insert `S-FENCE[set, {all shared globals}]` and flag exactly the
    /// shared accesses (the paper's `S` configuration for barnes and
    /// radiosity). Private accesses keep `flag_override = Some(false)`
    /// so they are never ordered.
    SetScope,
}

/// Statistics from the pass, mostly for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScReport {
    pub fences_inserted: usize,
    pub shared_accesses: usize,
    pub private_accesses: usize,
}

/// Insert SC-enforcing fences into every thread body and routine.
///
/// A fence is inserted between two consecutive statements that both
/// access shared globals (the second access of each delay pair must
/// wait for the first). Loop bodies whose first and last statements
/// access shared data get a fence at the back edge. Control-flow
/// statements count as shared-accessing if any nested statement is.
pub fn enforce_sc(p: &mut IrProgram, style: ScStyle) -> ScReport {
    let shared: Vec<bool> = p.globals.iter().map(|g| g.shared).collect();
    let all_shared: Vec<Global> = p.shared_globals();
    let mut report = ScReport::default();

    let mut bodies: Vec<&mut Block> = Vec::new();
    for r in p.routines.values_mut() {
        bodies.push(&mut r.body);
    }
    for t in p.threads.iter_mut() {
        bodies.push(t);
    }
    for b in bodies {
        rewrite_block(b, &shared, &all_shared, style, &mut report);
    }
    report
}

fn fence_stmt(style: ScStyle, all_shared: &[Global]) -> Stmt {
    match style {
        ScStyle::Traditional => Stmt::Fence(FenceSpec::Global),
        ScStyle::SetScope => Stmt::Fence(FenceSpec::Set(all_shared.to_vec())),
    }
}

fn rewrite_block(
    b: &mut Block,
    shared: &[bool],
    all_shared: &[Global],
    style: ScStyle,
    report: &mut ScReport,
) {
    // First rewrite children and flag accesses.
    for s in b.iter_mut() {
        flag_stmt(s, shared, style, report);
        match s {
            Stmt::If { then_b, else_b, .. } => {
                rewrite_block(then_b, shared, all_shared, style, report);
                rewrite_block(else_b, shared, all_shared, style, report);
            }
            Stmt::While { body, .. } | Stmt::Loop(body) => {
                rewrite_block(body, shared, all_shared, style, report);
            }
            _ => {}
        }
    }
    // Then insert fences between consecutive shared-accessing
    // statements at this level.
    let marks: Vec<bool> = b.iter().map(|s| stmt_touches_shared(s, shared)).collect();
    let mut out: Block = Vec::with_capacity(b.len());
    let mut prev_shared = false;
    for (s, is_shared) in b.drain(..).zip(marks) {
        if is_shared && prev_shared {
            out.push(fence_stmt(style, all_shared));
            report.fences_inserted += 1;
        }
        prev_shared = is_shared || (prev_shared && !matches!(s, Stmt::Fence(_)));
        if is_shared {
            prev_shared = true;
        }
        out.push(s);
    }
    // Back edge of loops: if the block both starts and ends with
    // shared accesses, a fence is needed between iterations. We handle
    // this where the loop statement itself is rewritten: cheaper to be
    // conservative and append a fence at the end of loop bodies that
    // touch shared data at both ends.
    *b = out;
}

/// Does the statement (recursively) access any shared global?
fn stmt_touches_shared(s: &Stmt, shared: &[bool]) -> bool {
    let expr_touches = |e: &Expr| expr_touches_shared(e, shared);
    match s {
        Stmt::Let(_, e) | Stmt::Assign(_, e) => expr_touches(e),
        Stmt::Store(m, e) => mem_shared(m, shared) || expr_touches(e),
        Stmt::Cas {
            mem, expected, new, ..
        } => mem_shared(mem, shared) || expr_touches(expected) || expr_touches(new),
        Stmt::If {
            cond,
            then_b,
            else_b,
        } => {
            expr_touches(cond)
                || then_b.iter().any(|s| stmt_touches_shared(s, shared))
                || else_b.iter().any(|s| stmt_touches_shared(s, shared))
        }
        Stmt::While { cond, body } => {
            expr_touches(cond) || body.iter().any(|s| stmt_touches_shared(s, shared))
        }
        Stmt::Loop(body) => body.iter().any(|s| stmt_touches_shared(s, shared)),
        // Calls are conservatively treated as shared-accessing: the
        // callee is user code that may touch anything. (The workloads
        // that use SC enforcement do not combine it with calls into
        // fence-bearing classes.)
        Stmt::Call { .. } => true,
        Stmt::Return(Some(e)) => expr_touches(e),
        _ => false,
    }
}

fn mem_shared(m: &MemRef, shared: &[bool]) -> bool {
    shared[m.global.id as usize]
        || m.index
            .as_deref()
            .is_some_and(|e| expr_touches_shared(e, shared))
}

fn expr_touches_shared(e: &Expr, shared: &[bool]) -> bool {
    match e {
        Expr::Const(_) | Expr::Local(_) => false,
        Expr::Load(m) => mem_shared(m, shared),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            expr_touches_shared(a, shared) || expr_touches_shared(b, shared)
        }
        Expr::Not(a) => expr_touches_shared(a, shared),
    }
}

/// Flag the memory references of one statement (not recursing into
/// nested blocks — the caller handles those).
fn flag_stmt(s: &mut Stmt, shared: &[bool], style: ScStyle, report: &mut ScReport) {
    match s {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(Some(e)) => {
            flag_expr(e, shared, style, report)
        }
        Stmt::Store(m, e) => {
            flag_mem(m, shared, style, report);
            flag_expr(e, shared, style, report);
        }
        Stmt::Cas {
            mem, expected, new, ..
        } => {
            flag_mem(mem, shared, style, report);
            flag_expr(expected, shared, style, report);
            flag_expr(new, shared, style, report);
        }
        Stmt::If { cond, .. } => flag_expr(cond, shared, style, report),
        Stmt::While { cond, .. } => flag_expr(cond, shared, style, report),
        _ => {}
    }
}

fn flag_mem(m: &mut MemRef, shared: &[bool], style: ScStyle, report: &mut ScReport) {
    if let Some(e) = m.index.as_deref_mut() {
        flag_expr(e, shared, style, report);
    }
    let is_shared = shared[m.global.id as usize];
    if is_shared {
        report.shared_accesses += 1;
    } else {
        report.private_accesses += 1;
    }
    if style == ScStyle::SetScope && m.flag_override.is_none() {
        m.flag_override = Some(is_shared);
    }
}

fn flag_expr(e: &mut Expr, shared: &[bool], style: ScStyle, report: &mut ScReport) {
    match e {
        Expr::Const(_) | Expr::Local(_) => {}
        Expr::Load(m) => flag_mem(m, shared, style, report),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            flag_expr(a, shared, style, report);
            flag_expr(b, shared, style, report);
        }
        Expr::Not(a) => flag_expr(a, shared, style, report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::ir::*;
    use crate::lower::CompileOpts;
    use crate::FenceKind;

    fn build() -> (IrProgram, Global, Global, Global) {
        let mut p = IrProgram::new();
        let s1 = p.shared("s1");
        let s2 = p.shared("s2");
        let priv_ = p.global("priv");
        p.thread(move |b| {
            b.store(s1.cell(), c(1)); // shared
            b.store(priv_.cell(), c(2)); // private
            b.store(s2.cell(), c(3)); // shared
            b.let_("x", ld(s1.cell())); // shared
            b.halt();
        });
        (p, s1, s2, priv_)
    }

    #[test]
    fn traditional_inserts_full_fences_between_shared_pairs() {
        let (mut p, ..) = build();
        let report = enforce_sc(&mut p, ScStyle::Traditional);
        // shared stmts: store s1, store s2, let x=ld s1 -> 2 fences
        assert_eq!(report.fences_inserted, 2);
        let prog = p.compile(&CompileOpts::default()).unwrap();
        let fences = prog.threads[0]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Fence {
                        kind: FenceKind::Global
                    }
                )
            })
            .count();
        assert_eq!(fences, 2);
    }

    #[test]
    fn set_scope_flags_only_shared_accesses() {
        let (mut p, ..) = build();
        let report = enforce_sc(&mut p, ScStyle::SetScope);
        assert_eq!(report.shared_accesses, 3);
        assert_eq!(report.private_accesses, 1);
        let prog = p.compile(&CompileOpts::default()).unwrap();
        let mem_flags: Vec<bool> = prog.threads[0]
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| i.set_flagged())
            .collect();
        // store s1 (flag), store priv (no), store s2 (flag), load s1 (flag)
        assert_eq!(mem_flags, vec![true, false, true, true]);
        let set_fences = prog.threads[0]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Fence {
                        kind: FenceKind::Set
                    }
                )
            })
            .count();
        assert_eq!(set_fences, 2);
    }

    #[test]
    fn private_only_blocks_get_no_fences() {
        let mut p = IrProgram::new();
        let a = p.array("a", 16);
        p.thread(move |b| {
            b.let_("i", c(0));
            b.while_(l("i").lt(c(16)), move |w| {
                w.store(a.at(l("i")), l("i"));
                w.assign("i", l("i").add(c(1)));
            });
            b.halt();
        });
        let report = enforce_sc(&mut p, ScStyle::Traditional);
        assert_eq!(report.fences_inserted, 0);
    }
}
