//! The compiler: IR → linear ISA.
//!
//! Responsibilities, mirroring §IV-A-1 and §V-A-1 of the paper:
//!
//! 1. **Inlining.** The ISA has no call instruction; every [`Stmt::Call`]
//!    is inlined at its call site (recursion is rejected). Inlining
//!    preserves the dynamic nesting of class scopes because the scope
//!    markers are emitted around the inlined body.
//! 2. **Class-scope instrumentation.** A class is *instrumented* iff
//!    any of its methods contains an `S-FENCE[class]`. For every call
//!    to a method of an instrumented class the compiler emits
//!    `fs_start cid` at the entry and `fs_end cid` at *each* exit
//!    (every `return` path and the fallthrough), exactly as the paper
//!    prescribes for public functions.
//! 3. **Set-scope flagging.** The union of all variables named by
//!    set-scope fences is computed, and every memory instruction whose
//!    target global is in that union gets its `set_flagged` bit set
//!    (the paper's single shared set-scope FSB column means sets of
//!    different fences are not differentiated). An explicit
//!    [`MemRef::flagged`] override wins — the SC-enforcement pass uses
//!    it to flag exactly the delay-set accesses.
//! 4. **Register allocation.** Locals live in architectural registers,
//!    allocated with a per-frame watermark; expression temporaries are
//!    allocated above the watermark and recycled per statement.

use crate::instr::{Addr, ClassId, CmpOp, Instr, Operand, Reg, NUM_REGS};

/// Registers `0..TEMP_BASE` hold locals (allocated upward, per frame);
/// registers `TEMP_BASE..NUM_REGS` hold expression temporaries
/// (allocated upward from `TEMP_BASE`, reset at every statement).
/// Temporaries never need to outlive their statement: loop conditions
/// are re-evaluated at the loop head, so reusing their registers inside
/// the body is safe.
const TEMP_BASE: u8 = 96;
use crate::ir::{Block, Expr, FenceSpec, IrProgram, MemRef, Stmt};
use crate::program::{Program, Symbol};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompileOpts {
    /// Emit `fs_start`/`fs_end` markers (on by default; turning this
    /// off degrades every class-fence to a fence over an empty FSS —
    /// only useful for ablation).
    pub emit_scope_markers: bool,
    /// Base address of the data segment (word address). Leaving a
    /// guard gap at address 0 helps catch stray null-ish accesses.
    pub data_base: Addr,
}

impl Default for CompileOpts {
    fn default() -> Self {
        Self {
            emit_scope_markers: true,
            data_base: 8,
        }
    }
}

/// Compile-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    UnknownRoutine(String),
    UnknownLocal(String),
    Recursion(String),
    ClassFenceOutsideClass,
    BreakOutsideLoop,
    ContinueOutsideLoop,
    ReturnOutsideRoutine,
    ArgCount {
        routine: String,
        expected: usize,
        got: usize,
    },
    OutOfRegisters,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownRoutine(n) => write!(f, "unknown routine {n:?}"),
            CompileError::UnknownLocal(n) => write!(f, "unknown local {n:?}"),
            CompileError::Recursion(n) => write!(
                f,
                "recursive call to {n:?} (calls are inlined; recursion is not supported)"
            ),
            CompileError::ClassFenceOutsideClass => {
                write!(f, "S-FENCE[class] used outside a class method")
            }
            CompileError::BreakOutsideLoop => write!(f, "break outside loop"),
            CompileError::ContinueOutsideLoop => write!(f, "continue outside loop"),
            CompileError::ReturnOutsideRoutine => write!(f, "return outside routine"),
            CompileError::ArgCount {
                routine,
                expected,
                got,
            } => write!(
                f,
                "call to {routine:?}: expected {expected} args, got {got}"
            ),
            CompileError::OutOfRegisters => write!(
                f,
                "out of registers (programs are limited to {NUM_REGS} live locals+temps)"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl IrProgram {
    /// Compile this IR program to machine code.
    pub fn compile(&self, opts: &CompileOpts) -> Result<Program, CompileError> {
        // Data layout.
        let mut addr = opts.data_base;
        let mut global_addr = Vec::with_capacity(self.globals.len());
        let mut prog = Program::new();
        for g in &self.globals {
            global_addr.push(addr);
            prog.add_symbol(Symbol {
                name: g.name.clone(),
                addr,
                len: g.len,
                shared: g.shared,
            });
            for &(idx, val) in &g.init {
                prog.data_init.push((addr + idx, val));
            }
            addr += g.len;
        }
        prog.data_size = addr;
        prog.class_names = self.class_names.clone();

        // Which classes are instrumented (contain class-scope fences)?
        let mut instrumented: HashSet<u32> = HashSet::new();
        for r in self.routines.values() {
            if let Some(class) = r.class {
                if block_has_class_fence(&r.body) {
                    instrumented.insert(class);
                }
            }
        }

        // Union of set-scope variables across the whole program
        // (paper §V-A-2: set scopes of different fences share one FSB
        // column and are not differentiated).
        let mut set_union: HashSet<u32> = HashSet::new();
        for r in self.routines.values() {
            collect_set_vars(&r.body, &mut set_union);
        }
        for t in &self.threads {
            collect_set_vars(t, &mut set_union);
        }

        for body in &self.threads {
            let mut lw = Lower {
                ir: self,
                opts,
                instrumented: &instrumented,
                global_addr: &global_addr,
                code: Vec::new(),
                labels: Vec::new(),
                patches: Vec::new(),
                frames: vec![Frame {
                    locals: HashMap::new(),
                    saved_watermark: 0,
                    exit: None,
                    class: None,
                    loop_base: 0,
                }],
                watermark: 0,
                loop_stack: Vec::new(),
                call_stack: Vec::new(),
                mem_globals: Vec::new(),
            };
            lw.block(body)?;
            lw.emit(Instr::Halt);
            lw.resolve_patches();
            let mut code = lw.code;
            // Set-scope flagging pass.
            for (pc, gid, over) in lw.mem_globals {
                let flag = over.unwrap_or_else(|| set_union.contains(&gid));
                if let Some(slot) = code[pc].set_flagged_mut() {
                    *slot = flag;
                }
            }
            prog.threads.push(code);
        }
        debug_assert!(prog.validate().is_ok(), "compiler produced invalid program");
        Ok(prog)
    }
}

fn block_has_class_fence(b: &Block) -> bool {
    b.iter().any(|s| match s {
        Stmt::Fence(FenceSpec::Class) => true,
        Stmt::If { then_b, else_b, .. } => {
            block_has_class_fence(then_b) || block_has_class_fence(else_b)
        }
        Stmt::While { body, .. } | Stmt::Loop(body) => block_has_class_fence(body),
        _ => false,
    })
}

fn collect_set_vars(b: &Block, out: &mut HashSet<u32>) {
    for s in b {
        match s {
            Stmt::Fence(FenceSpec::Set(vars)) => out.extend(vars.iter().map(|g| g.id)),
            Stmt::If { then_b, else_b, .. } => {
                collect_set_vars(then_b, out);
                collect_set_vars(else_b, out);
            }
            Stmt::While { body, .. } | Stmt::Loop(body) => collect_set_vars(body, out),
            _ => {}
        }
    }
}

type LabelId = usize;

struct Frame {
    locals: HashMap<String, Reg>,
    saved_watermark: u8,
    /// For inlined routine frames: (exit label, return-value register,
    /// fs_end cid to emit on each exit).
    exit: Option<(LabelId, Option<Reg>, Option<ClassId>)>,
    class: Option<u32>,
    /// Loop-stack depth at frame entry; `break`/`continue` may not
    /// escape an inlined routine.
    loop_base: usize,
}

struct Lower<'a> {
    ir: &'a IrProgram,
    opts: &'a CompileOpts,
    instrumented: &'a HashSet<u32>,
    global_addr: &'a [Addr],
    code: Vec<Instr>,
    labels: Vec<Option<usize>>,
    patches: Vec<(usize, LabelId)>,
    frames: Vec<Frame>,
    watermark: u8,
    loop_stack: Vec<(LabelId, LabelId)>,
    call_stack: Vec<String>,
    /// (pc, global id, flag override) for every memory instruction;
    /// consumed by the set-scope flagging pass after lowering.
    mem_globals: Vec<(usize, u32, Option<bool>)>,
}

impl<'a> Lower<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn label(&mut self) -> LabelId {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind(&mut self, l: LabelId) {
        debug_assert!(self.labels[l].is_none(), "label bound twice");
        self.labels[l] = Some(self.code.len());
    }

    fn emit_jump(&mut self, l: LabelId) {
        let pc = self.emit(Instr::Jump { target: usize::MAX });
        self.patches.push((pc, l));
    }

    fn emit_branch(&mut self, op: CmpOp, a: Operand, b: Operand, l: LabelId) {
        let pc = self.emit(Instr::Branch {
            op,
            a,
            b,
            target: usize::MAX,
        });
        self.patches.push((pc, l));
    }

    fn resolve_patches(&mut self) {
        for &(pc, l) in &self.patches {
            let target = self.labels[l].expect("unbound label");
            match &mut self.code[pc] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("patch on non-branch {other:?}"),
            }
        }
    }

    fn alloc_reg(&mut self, temps: &mut u8) -> Result<Reg, CompileError> {
        let r = *temps;
        if (r as usize) >= NUM_REGS {
            return Err(CompileError::OutOfRegisters);
        }
        *temps += 1;
        Ok(Reg(r))
    }

    /// Fresh temporary pool for one statement.
    fn temp_pool(&self) -> u8 {
        TEMP_BASE
    }

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("frame stack empty")
    }

    fn lookup_local(&self, name: &str) -> Result<Reg, CompileError> {
        self.frames
            .last()
            .and_then(|f| f.locals.get(name).copied())
            .ok_or_else(|| CompileError::UnknownLocal(name.to_string()))
    }

    /// Declare a local at the watermark (persistent for the frame).
    fn declare_local(&mut self, name: &str) -> Result<Reg, CompileError> {
        if let Some(&r) = self.frames.last().unwrap().locals.get(name) {
            return Ok(r);
        }
        let r = self.watermark;
        if r >= TEMP_BASE {
            return Err(CompileError::OutOfRegisters);
        }
        self.watermark += 1;
        self.frame().locals.insert(name.to_string(), Reg(r));
        Ok(Reg(r))
    }

    /// Evaluate an expression; temporaries are allocated from `temps`.
    fn eval(&mut self, e: &Expr, temps: &mut u8) -> Result<Operand, CompileError> {
        Ok(match e {
            Expr::Const(v) => Operand::Imm(*v),
            Expr::Local(name) => Operand::Reg(self.lookup_local(name)?),
            Expr::Load(m) => {
                let (base, offset, gid, over) = self.eval_mem(m, temps)?;
                let rd = self.alloc_reg(temps)?;
                let pc = self.emit(Instr::Load {
                    rd,
                    base,
                    offset,
                    set_flagged: false,
                });
                self.mem_globals.push((pc, gid, over));
                Operand::Reg(rd)
            }
            Expr::Bin(op, a, b) => {
                let ea = self.eval(a, temps)?;
                let eb = self.eval(b, temps)?;
                if let (Operand::Imm(x), Operand::Imm(y)) = (ea, eb) {
                    return Ok(Operand::Imm(op.apply(x, y))); // constant fold
                }
                let rd = self.alloc_reg(temps)?;
                self.emit(Instr::Alu {
                    op: *op,
                    rd,
                    a: ea,
                    b: eb,
                });
                Operand::Reg(rd)
            }
            Expr::Cmp(op, a, b) => {
                let ea = self.eval(a, temps)?;
                let eb = self.eval(b, temps)?;
                if let (Operand::Imm(x), Operand::Imm(y)) = (ea, eb) {
                    return Ok(Operand::Imm(op.apply(x, y) as i64));
                }
                let rd = self.alloc_reg(temps)?;
                self.emit(Instr::Cmp {
                    op: *op,
                    rd,
                    a: ea,
                    b: eb,
                });
                Operand::Reg(rd)
            }
            Expr::Not(a) => {
                let ea = self.eval(a, temps)?;
                if let Operand::Imm(x) = ea {
                    return Ok(Operand::Imm((x == 0) as i64));
                }
                let rd = self.alloc_reg(temps)?;
                self.emit(Instr::Cmp {
                    op: CmpOp::Eq,
                    rd,
                    a: ea,
                    b: Operand::Imm(0),
                });
                Operand::Reg(rd)
            }
        })
    }

    /// Evaluate the address parts of a memory reference.
    fn eval_mem(
        &mut self,
        m: &MemRef,
        temps: &mut u8,
    ) -> Result<(Operand, i64, u32, Option<bool>), CompileError> {
        let gaddr = self.global_addr[m.global.id as usize] as i64;
        let base = match &m.index {
            None => Operand::Imm(0),
            Some(e) => self.eval(e, temps)?,
        };
        Ok((base, gaddr, m.global.id, m.flag_override))
    }

    /// Emit a branch to `l` taken when `cond` is **false**.
    fn branch_if_false(
        &mut self,
        cond: &Expr,
        l: LabelId,
        temps: &mut u8,
    ) -> Result<(), CompileError> {
        match cond {
            Expr::Cmp(op, a, b) => {
                let ea = self.eval(a, temps)?;
                let eb = self.eval(b, temps)?;
                self.emit_branch(op.negate(), ea, eb, l);
            }
            Expr::Not(inner) => self.branch_if_true(inner, l, temps)?,
            Expr::Const(v) => {
                if *v == 0 {
                    self.emit_jump(l);
                }
            }
            _ => {
                let e = self.eval(cond, temps)?;
                self.emit_branch(CmpOp::Eq, e, Operand::Imm(0), l);
            }
        }
        Ok(())
    }

    /// Emit a branch to `l` taken when `cond` is **true**.
    fn branch_if_true(
        &mut self,
        cond: &Expr,
        l: LabelId,
        temps: &mut u8,
    ) -> Result<(), CompileError> {
        match cond {
            Expr::Cmp(op, a, b) => {
                let ea = self.eval(a, temps)?;
                let eb = self.eval(b, temps)?;
                self.emit_branch(*op, ea, eb, l);
            }
            Expr::Not(inner) => self.branch_if_false(inner, l, temps)?,
            Expr::Const(v) => {
                if *v != 0 {
                    self.emit_jump(l);
                }
            }
            _ => {
                let e = self.eval(cond, temps)?;
                self.emit_branch(CmpOp::Ne, e, Operand::Imm(0), l);
            }
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<(), CompileError> {
        for s in b {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        let mut temps = self.temp_pool();
        match s {
            Stmt::Let(name, e) => {
                let v = self.eval(e, &mut temps)?;
                let rd = self.declare_local(name)?;
                if v != Operand::Reg(rd) {
                    self.emit(Instr::Mov { rd, a: v });
                }
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(e, &mut temps)?;
                let rd = self.lookup_local(name)?;
                if v != Operand::Reg(rd) {
                    self.emit(Instr::Mov { rd, a: v });
                }
            }
            Stmt::Store(m, e) => {
                let (base, offset, gid, over) = self.eval_mem(m, &mut temps)?;
                let src = self.eval(e, &mut temps)?;
                let pc = self.emit(Instr::Store {
                    src,
                    base,
                    offset,
                    set_flagged: false,
                });
                self.mem_globals.push((pc, gid, over));
            }
            Stmt::Fence(spec) => {
                let kind = match spec {
                    FenceSpec::Global => crate::FenceKind::Global,
                    FenceSpec::Class => {
                        if self.frames.last().unwrap().class.is_none() {
                            return Err(CompileError::ClassFenceOutsideClass);
                        }
                        crate::FenceKind::Class
                    }
                    FenceSpec::Set(_) => crate::FenceKind::Set,
                };
                self.emit(Instr::Fence { kind });
            }
            Stmt::Cas {
                dst,
                mem,
                expected,
                new,
            } => {
                let (base, offset, gid, over) = self.eval_mem(mem, &mut temps)?;
                let ee = self.eval(expected, &mut temps)?;
                let en = self.eval(new, &mut temps)?;
                let rd = self.declare_local(dst)?;
                let pc = self.emit(Instr::Cas {
                    rd,
                    base,
                    offset,
                    expected: ee,
                    new: en,
                    set_flagged: false,
                });
                self.mem_globals.push((pc, gid, over));
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                if else_b.is_empty() {
                    let l_end = self.label();
                    self.branch_if_false(cond, l_end, &mut temps)?;
                    self.block(then_b)?;
                    self.bind(l_end);
                } else {
                    let l_else = self.label();
                    let l_end = self.label();
                    self.branch_if_false(cond, l_else, &mut temps)?;
                    self.block(then_b)?;
                    self.emit_jump(l_end);
                    self.bind(l_else);
                    self.block(else_b)?;
                    self.bind(l_end);
                }
            }
            Stmt::While { cond, body } => {
                let l_cont = self.label();
                let l_brk = self.label();
                self.bind(l_cont);
                self.branch_if_false(cond, l_brk, &mut temps)?;
                self.loop_stack.push((l_cont, l_brk));
                self.block(body)?;
                self.loop_stack.pop();
                self.emit_jump(l_cont);
                self.bind(l_brk);
            }
            Stmt::Loop(body) => {
                let l_cont = self.label();
                let l_brk = self.label();
                self.bind(l_cont);
                self.loop_stack.push((l_cont, l_brk));
                self.block(body)?;
                self.loop_stack.pop();
                self.emit_jump(l_cont);
                self.bind(l_brk);
            }
            Stmt::Break => {
                let base = self.frames.last().unwrap().loop_base;
                if self.loop_stack.len() <= base {
                    return Err(CompileError::BreakOutsideLoop);
                }
                let (_, l_brk) = *self.loop_stack.last().unwrap();
                self.emit_jump(l_brk);
            }
            Stmt::Continue => {
                let base = self.frames.last().unwrap().loop_base;
                if self.loop_stack.len() <= base {
                    return Err(CompileError::ContinueOutsideLoop);
                }
                let (l_cont, _) = *self.loop_stack.last().unwrap();
                self.emit_jump(l_cont);
            }
            Stmt::Call { routine, args, ret } => self.call(routine, args, ret.as_deref())?,
            Stmt::Return(e) => {
                let (exit, ret_reg, fs_end) = match self.frames.last().unwrap().exit {
                    Some(x) => x,
                    None => return Err(CompileError::ReturnOutsideRoutine),
                };
                if let Some(e) = e {
                    let v = self.eval(e, &mut temps)?;
                    if let Some(rd) = ret_reg {
                        if v != Operand::Reg(rd) {
                            self.emit(Instr::Mov { rd, a: v });
                        }
                    }
                }
                if let Some(cid) = fs_end {
                    self.emit(Instr::FsEnd { cid });
                }
                self.emit_jump(exit);
            }
            Stmt::Halt => {
                self.emit(Instr::Halt);
            }
        }
        Ok(())
    }

    fn call(&mut self, name: &str, args: &[Expr], ret: Option<&str>) -> Result<(), CompileError> {
        let routine = self
            .ir
            .routines
            .get(name)
            .ok_or_else(|| CompileError::UnknownRoutine(name.to_string()))?;
        if self.call_stack.iter().any(|n| n == name) {
            return Err(CompileError::Recursion(name.to_string()));
        }
        if routine.params.len() != args.len() {
            return Err(CompileError::ArgCount {
                routine: name.to_string(),
                expected: routine.params.len(),
                got: args.len(),
            });
        }

        // Return register lives in the caller's frame.
        let ret_reg = match ret {
            Some(dst) => Some(self.declare_local(dst)?),
            None => None,
        };

        // Evaluate arguments in the caller's frame. Argument values sit
        // in temporaries (or caller locals/immediates) until the
        // parameter-binding moves right below; nothing in between
        // allocates temporaries, so they stay live long enough.
        let saved_watermark = self.watermark;
        let mut temps = self.temp_pool();
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in args {
            arg_vals.push(self.eval(a, &mut temps)?);
        }

        let instrument = routine
            .class
            .filter(|c| self.instrumented.contains(c))
            .map(ClassId)
            .filter(|_| self.opts.emit_scope_markers);

        let exit = self.label();
        let mut frame = Frame {
            locals: HashMap::new(),
            saved_watermark,
            exit: Some((exit, ret_reg, instrument)),
            class: routine.class,
            loop_base: self.loop_stack.len(),
        };
        // Bind parameters.
        let params = routine.params.clone();
        self.frames.push(frame);
        for (p, v) in params.iter().zip(arg_vals) {
            let rd = self.declare_local(p)?;
            if v != Operand::Reg(rd) {
                self.emit(Instr::Mov { rd, a: v });
            }
        }

        if let Some(cid) = instrument {
            self.emit(Instr::FsStart { cid });
        }
        self.call_stack.push(name.to_string());
        let body = routine.body.clone();
        self.block(&body)?;
        self.call_stack.pop();
        if let Some(cid) = instrument {
            self.emit(Instr::FsEnd { cid });
        }
        self.bind(exit);
        frame = self.frames.pop().unwrap();
        self.watermark = frame.saved_watermark;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;
    use crate::FenceKind;

    fn compile(p: &IrProgram) -> Program {
        p.compile(&CompileOpts::default()).expect("compile")
    }

    #[test]
    fn straight_line_lowering() {
        let mut p = IrProgram::new();
        let x = p.global("x");
        p.thread(|b| {
            b.let_("a", c(2).add(c(3))); // folds to 5
            b.store(x.cell(), l("a").mul(c(4)));
            b.halt();
        });
        let prog = compile(&p);
        assert!(prog.validate().is_ok());
        // constant folding happened: no Alu for 2+3
        let adds = prog.threads[0]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Alu {
                        op: crate::AluOp::Add,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(adds, 0);
    }

    #[test]
    fn class_instrumentation_wraps_calls() {
        let mut p = IrProgram::new();
        let g = p.shared("g");
        let cls = p.class("Q");
        p.method(cls, "op", &[], |b| {
            b.store(g.cell(), c(1));
            b.fence_class();
            b.store(g.cell(), c(2));
        });
        p.thread(|b| {
            b.call("Q::op", &[]);
            b.halt();
        });
        let prog = compile(&p);
        let code = &prog.threads[0];
        let starts: Vec<usize> = code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::FsStart { .. }))
            .map(|(pc, _)| pc)
            .collect();
        let ends: Vec<usize> = code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::FsEnd { .. }))
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        let fence_pc = code
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Instr::Fence {
                        kind: FenceKind::Class
                    }
                )
            })
            .unwrap();
        assert!(starts[0] < fence_pc && fence_pc < ends[0]);
    }

    #[test]
    fn uninstrumented_class_has_no_markers() {
        let mut p = IrProgram::new();
        let g = p.global("g");
        let cls = p.class("Plain");
        p.method(cls, "op", &[], |b| {
            b.store(g.cell(), c(1));
        });
        p.thread(|b| {
            b.call("Plain::op", &[]);
            b.halt();
        });
        let prog = compile(&p);
        assert!(!prog.threads[0]
            .iter()
            .any(|i| matches!(i, Instr::FsStart { .. } | Instr::FsEnd { .. })));
    }

    #[test]
    fn every_return_path_gets_fs_end() {
        let mut p = IrProgram::new();
        let g = p.shared("g");
        let cls = p.class("Q");
        p.method(cls, "op", &["v"], |b| {
            b.fence_class();
            b.if_(l("v").eq(c(0)), |t| {
                t.ret(Some(c(-1)));
            });
            b.store(g.cell(), l("v"));
            b.ret(Some(c(1)));
        });
        p.thread(|b| {
            b.call_ret("r", "Q::op", &[c(5)]);
            b.halt();
        });
        let prog = compile(&p);
        let ends = prog.threads[0]
            .iter()
            .filter(|i| matches!(i, Instr::FsEnd { .. }))
            .count();
        // one per return + one fallthrough
        assert_eq!(ends, 3);
    }

    #[test]
    fn set_scope_flags_accesses_to_named_vars() {
        let mut p = IrProgram::new();
        let flag0 = p.shared("flag0");
        let flag1 = p.shared("flag1");
        let m = p.global("m");
        p.thread(|b| {
            b.store(m.cell(), c(1)); // not flagged
            b.store(flag0.cell(), c(1)); // flagged
            b.fence_set(&[flag0, flag1]);
            b.let_("x", ld(flag1.cell())); // flagged
            b.halt();
        });
        let prog = compile(&p);
        let flags: Vec<bool> = prog.threads[0]
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| i.set_flagged())
            .collect();
        assert_eq!(flags, vec![false, true, true]);
    }

    #[test]
    fn flag_override_wins() {
        let mut p = IrProgram::new();
        let a = p.shared("a");
        let b_ = p.shared("b");
        p.thread(|bb| {
            bb.store(a.cell().flagged(false), c(1)); // suppressed
            bb.store(b_.cell().flagged(true), c(1)); // forced (not in any set)
            bb.fence_set(&[a]);
            bb.halt();
        });
        let prog = compile(&p);
        let flags: Vec<bool> = prog.threads[0]
            .iter()
            .filter(|i| i.is_mem())
            .map(|i| i.set_flagged())
            .collect();
        assert_eq!(flags, vec![false, true]);
    }

    #[test]
    fn recursion_rejected() {
        let mut p = IrProgram::new();
        p.routine("f", &[], |b| {
            b.call("f", &[]);
        });
        p.thread(|b| {
            b.call("f", &[]);
            b.halt();
        });
        assert_eq!(
            p.compile(&CompileOpts::default()).unwrap_err(),
            CompileError::Recursion("f".into())
        );
    }

    #[test]
    fn class_fence_outside_class_rejected() {
        let mut p = IrProgram::new();
        p.thread(|b| {
            b.fence_class();
            b.halt();
        });
        assert_eq!(
            p.compile(&CompileOpts::default()).unwrap_err(),
            CompileError::ClassFenceOutsideClass
        );
    }

    #[test]
    fn break_outside_loop_rejected() {
        let mut p = IrProgram::new();
        p.thread(|b| b.break_());
        assert_eq!(
            p.compile(&CompileOpts::default()).unwrap_err(),
            CompileError::BreakOutsideLoop
        );
    }

    #[test]
    fn break_cannot_escape_inlined_routine() {
        let mut p = IrProgram::new();
        p.routine("inner", &[], |b| b.break_());
        p.thread(|b| {
            b.loop_(|lb| {
                lb.call("inner", &[]);
                lb.break_();
            });
            b.halt();
        });
        assert_eq!(
            p.compile(&CompileOpts::default()).unwrap_err(),
            CompileError::BreakOutsideLoop
        );
    }

    #[test]
    fn arg_count_checked() {
        let mut p = IrProgram::new();
        p.routine("f", &["a", "b"], |_| {});
        p.thread(|b| {
            b.call("f", &[c(1)]);
            b.halt();
        });
        assert!(matches!(
            p.compile(&CompileOpts::default()).unwrap_err(),
            CompileError::ArgCount {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn nested_class_scopes_nest_markers() {
        let mut p = IrProgram::new();
        let ga = p.shared("ga");
        let gb = p.shared("gb");
        let ca = p.class("A");
        let cb = p.class("B");
        p.method(cb, "fb", &[], |b| {
            b.store(gb.cell(), c(1));
            b.fence_class();
        });
        p.method(ca, "fa", &[], |b| {
            b.call("B::fb", &[]);
            b.fence_class();
            b.store(ga.cell(), c(2));
        });
        p.thread(|b| {
            b.call("A::fa", &[]);
            b.halt();
        });
        let prog = compile(&p);
        // Expect fs_start A ... fs_start B ... fs_end B ... fs_end A
        let seq: Vec<String> = prog.threads[0]
            .iter()
            .filter_map(|i| match i {
                Instr::FsStart { cid } => Some(format!("s{}", cid.0)),
                Instr::FsEnd { cid } => Some(format!("e{}", cid.0)),
                _ => None,
            })
            .collect();
        assert_eq!(seq, vec!["s0", "s1", "e1", "e0"]);
    }

    #[test]
    fn while_and_if_control_flow() {
        let mut p = IrProgram::new();
        let out = p.global("out");
        p.thread(|b| {
            b.let_("i", c(0));
            b.let_("sum", c(0));
            b.while_(l("i").lt(c(5)), |w| {
                w.if_else(
                    l("i").rem(c(2)).eq(c(0)),
                    |t| t.assign("sum", l("sum").add(l("i"))),
                    |e| e.assign("sum", l("sum").sub(c(1))),
                );
                w.assign("i", l("i").add(c(1)));
            });
            b.store(out.cell(), l("sum"));
            b.halt();
        });
        let prog = compile(&p);
        assert!(prog.validate().is_ok());
        // Executed later by the interpreter tests; here just shape.
        assert!(prog.threads[0].len() > 5);
    }
}
