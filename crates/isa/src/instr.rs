//! The mini ISA executed by the simulated cores.
//!
//! The instruction set is a small, RISC-like, word-addressed register
//! machine extended with the paper's ISA additions (Tables I and II of
//! the paper):
//!
//! - [`Instr::Fence`] carries a [`FenceKind`] — `Global` is the
//!   traditional full fence, `Class` is the paper's `class-fence`, and
//!   `Set` is the paper's `set-fence`.
//! - [`Instr::FsStart`] / [`Instr::FsEnd`] are the compiler-inserted
//!   scope delimiters (`fs_start cid` / `fs_end cid`). At runtime they
//!   behave as nops apart from updating the fence scope stack.
//! - Memory instructions carry a `set_flagged` bit: the compiler flags
//!   accesses to variables named in some set-scope fence, and the core
//!   sets the dedicated set-scope FSB column for flagged accesses.

use std::fmt;

/// A word address in the simulated flat memory. Each address names one
/// 64-bit word; cache lines group [`WORDS_PER_LINE`](crate::WORDS_PER_LINE)
/// consecutive words.
pub type Addr = usize;

/// Number of architectural registers per core.
pub const NUM_REGS: usize = 128;

/// An architectural register index (`0..NUM_REGS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A class identifier, assigned by the compiler to each class that
/// contains class-scope fences (the paper's `cid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid{}", self.0)
    }
}

/// ALU operations. All arithmetic is wrapping two's-complement on
/// `i64`; division and remainder by zero yield 0 (the simulator never
/// faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 0..63).
    Shl,
    /// Arithmetic shift right (shift amount masked to 0..63).
    Shr,
    Min,
    Max,
}

impl AluOp {
    /// Apply the operation to two values.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        }
    }
}

/// Comparison operations, used both by [`Instr::Cmp`] (materialising a
/// 0/1 result) and by [`Instr::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison.
    #[inline]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with operands swapped (`a op b == b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b) == a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// The three fence statements of the paper (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// `S-FENCE` — traditional fence, global scope: orders all prior
    /// memory accesses against all subsequent ones.
    Global,
    /// `S-FENCE[class]` — class scope: orders only memory accesses
    /// performed within the dynamic extent of the surrounding class
    /// (tracked by `fs_start`/`fs_end` and the fence scope stack).
    Class,
    /// `S-FENCE[set, {v...}]` — set scope: orders only memory accesses
    /// to the named variables (flagged by the compiler).
    Set,
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Global => write!(f, "fence"),
            FenceKind::Class => write!(f, "class-fence"),
            FenceKind::Set => write!(f, "set-fence"),
        }
    }
}

/// An instruction operand: either a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    Reg(Reg),
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if any.
    #[inline]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// One machine instruction.
///
/// Memory addresses are computed as `base + offset` where `base` is an
/// operand (often the index expression) and `offset` a static
/// displacement (often the global's base address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd <- value`
    Imm { rd: Reg, value: i64 },
    /// `rd <- a` (register/immediate move)
    Mov { rd: Reg, a: Operand },
    /// `rd <- a op b`
    Alu {
        op: AluOp,
        rd: Reg,
        a: Operand,
        b: Operand,
    },
    /// `rd <- (a cmp b) ? 1 : 0`
    Cmp {
        op: CmpOp,
        rd: Reg,
        a: Operand,
        b: Operand,
    },
    /// `rd <- mem[base + offset]`
    Load {
        rd: Reg,
        base: Operand,
        offset: i64,
        /// Set-scope flag (paper Table II): a flagged access also sets
        /// the dedicated set-scope FSB column.
        set_flagged: bool,
    },
    /// `mem[base + offset] <- src`
    Store {
        src: Operand,
        base: Operand,
        offset: i64,
        set_flagged: bool,
    },
    /// Atomic compare-and-swap:
    /// `rd <- (mem[base+offset] == expected) ? (mem[..] = new; 1) : 0`.
    ///
    /// Executes non-speculatively at the head of the ROB.
    Cas {
        rd: Reg,
        base: Operand,
        offset: i64,
        expected: Operand,
        new: Operand,
        set_flagged: bool,
    },
    /// A fence of the given scope kind.
    Fence { kind: FenceKind },
    /// `fs_start cid` — enter a class scope (compiler-inserted).
    FsStart { cid: ClassId },
    /// `fs_end cid` — leave a class scope (compiler-inserted).
    FsEnd { cid: ClassId },
    /// Conditional branch: `if a cmp b goto target`.
    Branch {
        op: CmpOp,
        a: Operand,
        b: Operand,
        target: usize,
    },
    /// Unconditional jump.
    Jump { target: usize },
    /// No operation (consumes an issue slot and one execute cycle).
    Nop,
    /// Stop this core. Remaining in-flight operations drain first.
    Halt,
}

impl Instr {
    /// Is this a memory instruction (load, store or CAS)?
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. } | Instr::Store { .. } | Instr::Cas { .. }
        )
    }

    /// Does this instruction carry the set-scope flag?
    #[inline]
    pub fn set_flagged(&self) -> bool {
        match self {
            Instr::Load { set_flagged, .. }
            | Instr::Store { set_flagged, .. }
            | Instr::Cas { set_flagged, .. } => *set_flagged,
            _ => false,
        }
    }

    /// Mutable access to the set-scope flag of a memory instruction.
    pub fn set_flagged_mut(&mut self) -> Option<&mut bool> {
        match self {
            Instr::Load { set_flagged, .. }
            | Instr::Store { set_flagged, .. }
            | Instr::Cas { set_flagged, .. } => Some(set_flagged),
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        let (a, b, c): (Option<Reg>, Option<Reg>, Option<Reg>) = match self {
            Instr::Imm { .. }
            | Instr::Fence { .. }
            | Instr::FsStart { .. }
            | Instr::FsEnd { .. }
            | Instr::Jump { .. }
            | Instr::Nop
            | Instr::Halt => (None, None, None),
            Instr::Mov { a, .. } => (a.reg(), None, None),
            Instr::Alu { a, b, .. } | Instr::Cmp { a, b, .. } | Instr::Branch { a, b, .. } => {
                (a.reg(), b.reg(), None)
            }
            Instr::Load { base, .. } => (base.reg(), None, None),
            Instr::Store { src, base, .. } => (src.reg(), base.reg(), None),
            Instr::Cas {
                base,
                expected,
                new,
                ..
            } => (base.reg(), expected.reg(), new.reg()),
        };
        [a, b, c].into_iter().flatten()
    }

    /// Register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match self {
            Instr::Imm { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::Cmp { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Cas { rd, .. } => Some(*rd),
            _ => None,
        }
    }

    /// Is this a control-flow instruction (branch or jump)?
    #[inline]
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jump { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { rd, value } => write!(f, "li    {rd}, {value}"),
            Instr::Mov { rd, a } => write!(f, "mov   {rd}, {a}"),
            Instr::Alu { op, rd, a, b } => {
                write!(f, "{:<5} {rd}, {a}, {b}", format!("{op:?}").to_lowercase())
            }
            Instr::Cmp { op, rd, a, b } => {
                write!(f, "c{:<4} {rd}, {a}, {b}", format!("{op:?}").to_lowercase())
            }
            Instr::Load {
                rd,
                base,
                offset,
                set_flagged,
            } => write!(
                f,
                "ld{}   {rd}, {offset}({base})",
                if *set_flagged { "*" } else { " " }
            ),
            Instr::Store {
                src,
                base,
                offset,
                set_flagged,
            } => write!(
                f,
                "st{}   {src}, {offset}({base})",
                if *set_flagged { "*" } else { " " }
            ),
            Instr::Cas {
                rd,
                base,
                offset,
                expected,
                new,
                set_flagged,
            } => write!(
                f,
                "cas{}  {rd}, {offset}({base}), {expected} -> {new}",
                if *set_flagged { "*" } else { " " }
            ),
            Instr::Fence { kind } => write!(f, "{kind}"),
            Instr::FsStart { cid } => write!(f, "fs_start {cid}"),
            Instr::FsEnd { cid } => write!(f, "fs_end   {cid}"),
            Instr::Branch { op, a, b, target } => {
                write!(
                    f,
                    "b{:<4} {a}, {b}, @{target}",
                    format!("{op:?}").to_lowercase()
                )
            }
            Instr::Jump { target } => write!(f, "j     @{target}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_wrapping_and_div_by_zero() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Mul.apply(i64::MAX, 2), -2);
        assert_eq!(AluOp::Div.apply(42, 0), 0);
        assert_eq!(AluOp::Rem.apply(42, 0), 0);
        assert_eq!(AluOp::Div.apply(7, 2), 3);
        assert_eq!(AluOp::Rem.apply(7, 2), 1);
        assert_eq!(AluOp::Min.apply(-1, 3), -1);
        assert_eq!(AluOp::Max.apply(-1, 3), 3);
    }

    #[test]
    fn shift_masks_amount() {
        assert_eq!(AluOp::Shl.apply(1, 64), 1); // 64 & 63 == 0
        assert_eq!(AluOp::Shl.apply(1, 3), 8);
        assert_eq!(AluOp::Shr.apply(-8, 1), -4); // arithmetic
    }

    #[test]
    fn cmp_flip_negate() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(op.apply(a, b), op.flip().apply(b, a), "{op:?} flip");
                assert_eq!(op.apply(a, b), !op.negate().apply(a, b), "{op:?} negate");
            }
        }
    }

    #[test]
    fn sources_and_dest() {
        let i = Instr::Cas {
            rd: Reg(1),
            base: Operand::Reg(Reg(2)),
            offset: 0,
            expected: Operand::Reg(Reg(3)),
            new: Operand::Imm(9),
            set_flagged: false,
        };
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg(2), Reg(3)]);
        assert_eq!(i.dest(), Some(Reg(1)));
        assert!(i.is_mem());

        let st = Instr::Store {
            src: Operand::Reg(Reg(4)),
            base: Operand::Imm(0),
            offset: 16,
            set_flagged: true,
        };
        assert_eq!(st.dest(), None);
        assert!(st.set_flagged());
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Load {
            rd: Reg(7),
            base: Operand::Imm(0),
            offset: 100,
            set_flagged: true,
        };
        assert_eq!(format!("{i}"), "ld*   r7, 100(#0)");
    }
}
