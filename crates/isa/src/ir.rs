//! A small structured IR and builder DSL.
//!
//! Workloads are written against this IR — classes with routines
//! (methods), thread bodies, scalar and array globals, locals,
//! structured control flow, CAS, and the three fence statements of the
//! paper. The compiler ([`crate::lower`]) inlines every call, inserts
//! `fs_start`/`fs_end` around inlined bodies of instrumented classes
//! (the paper's compiler support for class scope), flags set-scope
//! accesses (the paper's compiler support for set scope), and lowers
//! to the linear ISA.
//!
//! ```
//! use sfence_isa::ir::*;
//! use sfence_isa::CompileOpts;
//!
//! let mut p = IrProgram::new();
//! let flag = p.shared("flag");
//! let data = p.global("data");
//! let cls = p.class("Mailbox");
//! p.method(cls, "send", &["v"], |b| {
//!     b.store(data.cell(), l("v"));
//!     b.fence_class();
//!     b.store(flag.cell(), c(1));
//! });
//! p.thread(|b| {
//!     b.call("Mailbox::send", &[c(7)]);
//! });
//! let prog = p.compile(&CompileOpts::default()).unwrap();
//! assert!(prog.validate().is_ok());
//! ```

use crate::instr::{AluOp, CmpOp};
use std::collections::HashMap;

/// Handle to a global variable or array declared on an [`IrProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Global {
    pub(crate) id: u32,
}

impl Global {
    /// Reference the scalar cell (or element 0 of an array).
    pub fn cell(self) -> MemRef {
        MemRef {
            global: self,
            index: None,
            flag_override: None,
        }
    }

    /// Reference element `index` of an array global.
    pub fn at(self, index: Expr) -> MemRef {
        MemRef {
            global: self,
            index: Some(Box::new(index)),
            flag_override: None,
        }
    }
}

/// A memory reference: a global plus an optional element index.
#[derive(Debug, Clone, PartialEq)]
pub struct MemRef {
    pub global: Global,
    pub index: Option<Box<Expr>>,
    /// Explicit set-scope flag override. `None` means "flag iff the
    /// global appears in some set-fence's variable set" (the default
    /// compiler behaviour); `Some(b)` forces the flag — used by the
    /// SC-enforcement pass, which flags exactly the delay-set accesses.
    pub flag_override: Option<bool>,
}

impl MemRef {
    /// Force or suppress the set-scope flag for this access.
    pub fn flagged(mut self, flag: bool) -> Self {
        self.flag_override = Some(flag);
        self
    }
}

/// An expression tree. Expressions are side-effect free apart from the
/// memory traffic of [`Expr::Load`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Const(i64),
    /// Read a local variable of the current routine or thread body.
    Local(String),
    Load(MemRef),
    Bin(AluOp, Box<Expr>, Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation: 1 if the operand is 0, else 0.
    Not(Box<Expr>),
}

/// Literal constant.
pub fn c(v: i64) -> Expr {
    Expr::Const(v)
}

/// Read a local variable.
pub fn l(name: &str) -> Expr {
    Expr::Local(name.to_string())
}

/// Load from memory.
pub fn ld(m: MemRef) -> Expr {
    Expr::Load(m)
}

/// Logical not.
pub fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

macro_rules! bin_methods {
    ($($meth:ident => $op:expr),* $(,)?) => {
        impl Expr {
            $(
                #[doc = concat!("Binary `", stringify!($meth), "`.")]
                #[allow(clippy::should_implement_trait)]
                pub fn $meth(self, rhs: Expr) -> Expr {
                    Expr::Bin($op, Box::new(self), Box::new(rhs))
                }
            )*
        }
    };
}

bin_methods! {
    add => AluOp::Add,
    sub => AluOp::Sub,
    mul => AluOp::Mul,
    div => AluOp::Div,
    rem => AluOp::Rem,
    bitand => AluOp::And,
    bitor => AluOp::Or,
    bitxor => AluOp::Xor,
    shl => AluOp::Shl,
    shr => AluOp::Shr,
    min => AluOp::Min,
    max => AluOp::Max,
}

macro_rules! cmp_methods {
    ($($meth:ident => $op:expr),* $(,)?) => {
        impl Expr {
            $(
                #[doc = concat!("Comparison `", stringify!($meth), "`, yielding 0 or 1.")]
                pub fn $meth(self, rhs: Expr) -> Expr {
                    Expr::Cmp($op, Box::new(self), Box::new(rhs))
                }
            )*
        }
    };
}

cmp_methods! {
    eq => CmpOp::Eq,
    ne => CmpOp::Ne,
    lt => CmpOp::Lt,
    le => CmpOp::Le,
    gt => CmpOp::Gt,
    ge => CmpOp::Ge,
}

/// Fence statements (paper Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum FenceSpec {
    /// `S-FENCE` — traditional fence.
    Global,
    /// `S-FENCE[class]` — must appear inside a class method.
    Class,
    /// `S-FENCE[set, {vars...}]`.
    Set(Vec<Global>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare (if absent) and assign a local.
    Let(String, Expr),
    /// Assign an existing local.
    Assign(String, Expr),
    Store(MemRef, Expr),
    Fence(FenceSpec),
    /// `dst <- CAS(mem, expected, new)`; `dst` is 1 on success.
    Cas {
        dst: String,
        mem: MemRef,
        expected: Expr,
        new: Expr,
    },
    If {
        cond: Expr,
        then_b: Block,
        else_b: Block,
    },
    While {
        cond: Expr,
        body: Block,
    },
    Loop(Block),
    Break,
    Continue,
    Call {
        routine: String,
        args: Vec<Expr>,
        ret: Option<String>,
    },
    Return(Option<Expr>),
    Halt,
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// Handle to a declared class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Class {
    pub(crate) idx: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct GlobalDef {
    pub name: String,
    pub len: usize,
    pub shared: bool,
    pub init: Vec<(usize, i64)>,
}

#[derive(Debug, Clone)]
pub(crate) struct Routine {
    pub class: Option<u32>,
    pub params: Vec<String>,
    pub body: Block,
}

/// A whole-machine IR program: globals, classes, routines and one body
/// per thread.
#[derive(Debug, Clone, Default)]
pub struct IrProgram {
    pub(crate) globals: Vec<GlobalDef>,
    pub(crate) class_names: Vec<String>,
    pub(crate) routines: HashMap<String, Routine>,
    pub(crate) threads: Vec<Block>,
}

impl IrProgram {
    pub fn new() -> Self {
        Self::default()
    }

    fn add_global(&mut self, name: &str, len: usize, shared: bool) -> Global {
        assert!(len > 0, "global {name:?} must have nonzero length");
        assert!(
            !self.globals.iter().any(|g| g.name == name),
            "duplicate global {name:?}"
        );
        let id = self.globals.len() as u32;
        self.globals.push(GlobalDef {
            name: name.to_string(),
            len,
            shared,
            init: Vec::new(),
        });
        Global { id }
    }

    /// Declare a private scalar global (not part of any delay set).
    pub fn global(&mut self, name: &str) -> Global {
        self.add_global(name, 1, false)
    }

    /// Declare a shared-mutable scalar global (participates in
    /// SC-enforcement delay-set classification).
    pub fn shared(&mut self, name: &str) -> Global {
        self.add_global(name, 1, true)
    }

    /// Declare a private array global of `len` words.
    pub fn array(&mut self, name: &str, len: usize) -> Global {
        self.add_global(name, len, false)
    }

    /// Declare a shared-mutable array global.
    pub fn shared_array(&mut self, name: &str, len: usize) -> Global {
        self.add_global(name, len, true)
    }

    /// Declare a private scalar padded to a full cache line (avoids
    /// false sharing with neighbouring globals; access via `.cell()`).
    /// Alignment holds as long as all previously declared globals are
    /// line-sized multiples, since layout is sequential.
    pub fn global_line(&mut self, name: &str) -> Global {
        self.add_global(name, crate::WORDS_PER_LINE, false)
    }

    /// Declare a shared scalar padded to a full cache line.
    pub fn shared_line(&mut self, name: &str) -> Global {
        self.add_global(name, crate::WORDS_PER_LINE, true)
    }

    /// Declare an *observed* location: a private, line-padded scalar
    /// named `obs_<name>` whose final value is part of the program's
    /// final state (`Program::observed_symbols`). Litmus generators
    /// store each thread's observations here; the SC reference
    /// checker and the differential runner read exactly these cells.
    pub fn observer(&mut self, name: &str) -> Global {
        let full = format!("{}{}", crate::program::OBS_PREFIX, name);
        self.add_global(&full, crate::WORDS_PER_LINE, false)
    }

    /// Declare a *shared* observed location (e.g. a contended counter
    /// whose final value is itself the observation).
    pub fn shared_observer(&mut self, name: &str) -> Global {
        let full = format!("{}{}", crate::program::OBS_PREFIX, name);
        self.add_global(&full, crate::WORDS_PER_LINE, true)
    }

    /// Set the initial value of a scalar global.
    pub fn init(&mut self, g: Global, val: i64) {
        self.init_elem(g, 0, val);
    }

    /// Set the initial value of one array element.
    pub fn init_elem(&mut self, g: Global, idx: usize, val: i64) {
        let def = &mut self.globals[g.id as usize];
        assert!(idx < def.len, "init index out of range for {}", def.name);
        def.init.push((idx, val));
    }

    /// Declare a class. Methods are registered with [`Self::method`]
    /// and called as `"ClassName::method"`.
    pub fn class(&mut self, name: &str) -> Class {
        assert!(
            !self.class_names.iter().any(|n| n == name),
            "duplicate class {name:?}"
        );
        let idx = self.class_names.len() as u32;
        self.class_names.push(name.to_string());
        Class { idx }
    }

    /// Name of a declared class.
    pub fn class_name_of(&self, class: Class) -> &str {
        &self.class_names[class.idx as usize]
    }

    fn add_routine(
        &mut self,
        full_name: String,
        class: Option<u32>,
        params: &[&str],
        build: impl FnOnce(&mut BlockBuilder),
    ) {
        assert!(
            !self.routines.contains_key(&full_name),
            "duplicate routine {full_name:?}"
        );
        let mut b = BlockBuilder::new();
        build(&mut b);
        self.routines.insert(
            full_name,
            Routine {
                class,
                params: params.iter().map(|s| s.to_string()).collect(),
                body: b.stmts,
            },
        );
    }

    /// Register a free routine (not belonging to any class).
    pub fn routine(&mut self, name: &str, params: &[&str], build: impl FnOnce(&mut BlockBuilder)) {
        self.add_routine(name.to_string(), None, params, build);
    }

    /// Register a method of `class`; callable as `"Class::name"`.
    pub fn method(
        &mut self,
        class: Class,
        name: &str,
        params: &[&str],
        build: impl FnOnce(&mut BlockBuilder),
    ) {
        let full = format!("{}::{}", self.class_names[class.idx as usize], name);
        self.add_routine(full, Some(class.idx), params, build);
    }

    /// Add a thread body; returns the thread index (= core index).
    pub fn thread(&mut self, build: impl FnOnce(&mut BlockBuilder)) -> usize {
        let mut b = BlockBuilder::new();
        build(&mut b);
        let idx = self.threads.len();
        self.threads.push(b.stmts);
        idx
    }

    /// Number of threads added so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// All shared globals (used by the SC-enforcement pass and by
    /// set-scope helpers).
    pub fn shared_globals(&self) -> Vec<Global> {
        self.globals
            .iter()
            .enumerate()
            .filter(|(_, g)| g.shared)
            .map(|(i, _)| Global { id: i as u32 })
            .collect()
    }
}

/// Builder for a [`Block`]. Obtained from [`IrProgram::thread`],
/// [`IrProgram::routine`] / [`IrProgram::method`], or the closures of
/// the structured-control-flow methods.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    pub(crate) stmts: Vec<Stmt>,
}

impl BlockBuilder {
    fn new() -> Self {
        Self { stmts: Vec::new() }
    }

    fn child(&self, build: impl FnOnce(&mut BlockBuilder)) -> Block {
        let mut b = BlockBuilder::new();
        build(&mut b);
        b.stmts
    }

    /// Declare (or re-assign) a local.
    pub fn let_(&mut self, name: &str, e: Expr) {
        self.stmts.push(Stmt::Let(name.to_string(), e));
    }

    /// Assign an existing local.
    pub fn assign(&mut self, name: &str, e: Expr) {
        self.stmts.push(Stmt::Assign(name.to_string(), e));
    }

    /// Store to memory.
    pub fn store(&mut self, m: MemRef, e: Expr) {
        self.stmts.push(Stmt::Store(m, e));
    }

    /// Traditional full fence (`S-FENCE`).
    pub fn fence(&mut self) {
        self.stmts.push(Stmt::Fence(FenceSpec::Global));
    }

    /// Class-scope fence (`S-FENCE[class]`). Only valid inside a class
    /// method; checked at compile time.
    pub fn fence_class(&mut self) {
        self.stmts.push(Stmt::Fence(FenceSpec::Class));
    }

    /// Set-scope fence (`S-FENCE[set, {vars...}]`).
    pub fn fence_set(&mut self, vars: &[Global]) {
        self.stmts.push(Stmt::Fence(FenceSpec::Set(vars.to_vec())));
    }

    /// Atomic compare-and-swap; `dst` receives 1 on success, 0 on
    /// failure.
    pub fn cas(&mut self, dst: &str, mem: MemRef, expected: Expr, new: Expr) {
        self.stmts.push(Stmt::Cas {
            dst: dst.to_string(),
            mem,
            expected,
            new,
        });
    }

    pub fn if_(&mut self, cond: Expr, then_b: impl FnOnce(&mut BlockBuilder)) {
        let then_b = self.child(then_b);
        self.stmts.push(Stmt::If {
            cond,
            then_b,
            else_b: Vec::new(),
        });
    }

    pub fn if_else(
        &mut self,
        cond: Expr,
        then_b: impl FnOnce(&mut BlockBuilder),
        else_b: impl FnOnce(&mut BlockBuilder),
    ) {
        let then_b = self.child(then_b);
        let else_b = self.child(else_b);
        self.stmts.push(Stmt::If {
            cond,
            then_b,
            else_b,
        });
    }

    pub fn while_(&mut self, cond: Expr, body: impl FnOnce(&mut BlockBuilder)) {
        let body = self.child(body);
        self.stmts.push(Stmt::While { cond, body });
    }

    /// Infinite loop; exit with [`Self::break_`].
    pub fn loop_(&mut self, body: impl FnOnce(&mut BlockBuilder)) {
        let body = self.child(body);
        self.stmts.push(Stmt::Loop(body));
    }

    pub fn break_(&mut self) {
        self.stmts.push(Stmt::Break);
    }

    pub fn continue_(&mut self) {
        self.stmts.push(Stmt::Continue);
    }

    /// Spin until `cond` becomes true (busy wait).
    pub fn spin_until(&mut self, cond: Expr) {
        self.while_(not(cond), |_| {});
    }

    /// Call a routine, discarding any return value.
    pub fn call(&mut self, routine: &str, args: &[Expr]) {
        self.stmts.push(Stmt::Call {
            routine: routine.to_string(),
            args: args.to_vec(),
            ret: None,
        });
    }

    /// Call a routine, binding its return value to local `dst`.
    pub fn call_ret(&mut self, dst: &str, routine: &str, args: &[Expr]) {
        self.stmts.push(Stmt::Call {
            routine: routine.to_string(),
            args: args.to_vec(),
            ret: Some(dst.to_string()),
        });
    }

    /// Return from the current routine.
    pub fn ret(&mut self, e: Option<Expr>) {
        self.stmts.push(Stmt::Return(e));
    }

    /// Halt this core.
    pub fn halt(&mut self) {
        self.stmts.push(Stmt::Halt);
    }

    /// Append a pre-built statement (used by IR-rewriting passes).
    pub fn push(&mut self, s: Stmt) {
        self.stmts.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_compose() {
        let e = c(1).add(l("x")).mul(c(3)).eq(c(9));
        match e {
            Expr::Cmp(CmpOp::Eq, lhs, rhs) => {
                assert!(matches!(*rhs, Expr::Const(9)));
                assert!(matches!(*lhs, Expr::Bin(AluOp::Mul, _, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn memref_flag_override() {
        let mut p = IrProgram::new();
        let g = p.array("a", 4);
        let m = g.at(c(2)).flagged(true);
        assert_eq!(m.flag_override, Some(true));
        assert!(g.cell().flag_override.is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate global")]
    fn duplicate_global_panics() {
        let mut p = IrProgram::new();
        p.global("x");
        p.global("x");
    }

    #[test]
    fn program_accumulates_threads_and_routines() {
        let mut p = IrProgram::new();
        let cls = p.class("Q");
        p.method(cls, "push", &["v"], |b| {
            b.ret(None);
        });
        p.routine("free", &[], |b| b.halt());
        let t = p.thread(|b| {
            b.call("Q::push", &[c(1)]);
            b.halt();
        });
        assert_eq!(t, 0);
        assert_eq!(p.num_threads(), 1);
        assert!(p.routines.contains_key("Q::push"));
        assert!(p.routines.contains_key("free"));
        assert_eq!(p.class_name_of(cls), "Q");
    }

    #[test]
    fn shared_globals_listed() {
        let mut p = IrProgram::new();
        p.global("priv");
        let s1 = p.shared("s1");
        let s2 = p.shared_array("s2", 8);
        assert_eq!(p.shared_globals(), vec![s1, s2]);
    }
}
