//! # sfence-isa
//!
//! The instruction set, structured IR and compiler of the Fence
//! Scoping reproduction.
//!
//! The simulated machine executes a small, RISC-like, word-addressed
//! ISA ([`instr`]) extended with the paper's additions: `class-fence`,
//! `set-fence`, the `fs_start`/`fs_end` scope delimiters, and a
//! set-scope flag bit on memory instructions. Workloads are written in
//! a structured IR ([`ir`]) with classes, routines and threads; the
//! compiler ([`lower`]) inlines calls, inserts scope markers around
//! methods of classes that contain class-scope fences, flags set-scope
//! accesses, and allocates registers. [`passes::enforce_sc`]
//! implements the paper's SC-enforcement use case via a simplified
//! delay-set discipline, and [`interp`] provides functional reference
//! interpreters used as test oracles.

pub mod instr;
pub mod interp;
pub mod ir;
pub mod lower;
pub mod passes;
pub mod program;

pub use instr::{Addr, AluOp, ClassId, CmpOp, FenceKind, Instr, Operand, Reg, NUM_REGS};
pub use lower::{CompileError, CompileOpts};
pub use program::{Program, ProgramError, Symbol, OBS_PREFIX};

/// Words per cache line in the simulated memory system. Word-addressed
/// memory with 8 words per line models 64-byte lines of 8-byte words.
pub const WORDS_PER_LINE: usize = 8;
