//! Compiled machine programs: one instruction stream per simulated
//! core, a flat data segment, and a symbol table so tests and
//! invariant checkers can locate globals by name.

use crate::instr::{Addr, ClassId, Instr, NUM_REGS};
use std::collections::HashMap;
use std::fmt;

/// Name prefix marking a global as an *observed* location: part of
/// the final state of a litmus-style program (see
/// [`Program::observed_symbols`]).
pub const OBS_PREFIX: &str = "obs_";

/// A symbol: a named region of the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    pub name: String,
    pub addr: Addr,
    /// Length in words (1 for scalars).
    pub len: usize,
    /// Declared shared-mutable (participates in SC-enforcement
    /// delay-set classification).
    pub shared: bool,
}

/// A compiled program for the whole machine.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// One instruction stream per core/thread. Core `i` runs
    /// `threads[i]`; cores beyond `threads.len()` stay halted.
    pub threads: Vec<Vec<Instr>>,
    /// Size of the flat data segment in words.
    pub data_size: usize,
    /// Initial values for the data segment (zero-filled if shorter).
    pub data_init: Vec<(Addr, i64)>,
    /// Named globals.
    pub symbols: Vec<Symbol>,
    /// Class names, indexed by `ClassId`.
    pub class_names: Vec<String>,
    symbol_index: HashMap<String, usize>,
}

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    BranchOutOfRange {
        thread: usize,
        pc: usize,
        target: usize,
    },
    RegisterOutOfRange {
        thread: usize,
        pc: usize,
        reg: u8,
    },
    MissingHalt {
        thread: usize,
    },
    DataInitOutOfRange {
        addr: Addr,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BranchOutOfRange { thread, pc, target } => {
                write!(
                    f,
                    "thread {thread} pc {pc}: branch target {target} out of range"
                )
            }
            ProgramError::RegisterOutOfRange { thread, pc, reg } => {
                write!(f, "thread {thread} pc {pc}: register r{reg} out of range")
            }
            ProgramError::MissingHalt { thread } => {
                write!(f, "thread {thread}: no halt instruction")
            }
            ProgramError::DataInitOutOfRange { addr } => {
                write!(f, "data initialiser at {addr} outside data segment")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of threads (cores used).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Register a symbol. Returns its index.
    pub fn add_symbol(&mut self, sym: Symbol) -> usize {
        let idx = self.symbols.len();
        self.symbol_index.insert(sym.name.clone(), idx);
        self.symbols.push(sym);
        idx
    }

    /// Look up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbol_index.get(name).map(|&i| &self.symbols[i])
    }

    /// Address of a named global; panics if absent (test convenience).
    pub fn addr_of(&self, name: &str) -> Addr {
        self.symbol(name)
            .unwrap_or_else(|| panic!("no symbol named {name:?}"))
            .addr
    }

    /// Build the initial memory image.
    pub fn initial_memory(&self) -> Vec<i64> {
        let mut mem = vec![0i64; self.data_size];
        for &(addr, val) in &self.data_init {
            mem[addr] = val;
        }
        mem
    }

    /// The name of a class, for diagnostics.
    pub fn class_name(&self, cid: ClassId) -> &str {
        self.class_names
            .get(cid.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Static sanity checks: branch targets in range, registers in
    /// range, every thread ends reachably in `halt` (approximated by
    /// the presence of at least one `halt`), data initialisers inside
    /// the segment.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (t, code) in self.threads.iter().enumerate() {
            let mut has_halt = false;
            for (pc, instr) in code.iter().enumerate() {
                if matches!(instr, Instr::Halt) {
                    has_halt = true;
                }
                let target = match instr {
                    Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
                    _ => None,
                };
                if let Some(target) = target {
                    if target >= code.len() {
                        return Err(ProgramError::BranchOutOfRange {
                            thread: t,
                            pc,
                            target,
                        });
                    }
                }
                for r in instr.sources().chain(instr.dest()) {
                    if (r.0 as usize) >= NUM_REGS {
                        return Err(ProgramError::RegisterOutOfRange {
                            thread: t,
                            pc,
                            reg: r.0,
                        });
                    }
                }
            }
            if !code.is_empty() && !has_halt {
                return Err(ProgramError::MissingHalt { thread: t });
            }
        }
        for &(addr, _) in &self.data_init {
            if addr >= self.data_size {
                return Err(ProgramError::DataInitOutOfRange { addr });
            }
        }
        Ok(())
    }

    /// The observed symbols of a litmus-style program: every global
    /// whose name starts with [`OBS_PREFIX`], in address order. The
    /// values of these locations in the final memory image are the
    /// program's *final state* — the tuple the SC reference checker
    /// enumerates and the differential runner compares against.
    pub fn observed_symbols(&self) -> Vec<&Symbol> {
        let mut obs: Vec<&Symbol> = self
            .symbols
            .iter()
            .filter(|s| s.name.starts_with(OBS_PREFIX))
            .collect();
        obs.sort_by_key(|s| s.addr);
        obs
    }

    /// Read the observed final state out of a memory image: one word
    /// per observed symbol, in address order. Returns an empty vector
    /// when the program declares no `obs_` globals.
    pub fn observed_state(&self, mem: &[i64]) -> Vec<i64> {
        self.observed_symbols()
            .iter()
            .map(|s| mem[s.addr])
            .collect()
    }

    /// Total static instruction count across threads.
    pub fn total_instrs(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Disassemble one thread, one instruction per line with indices.
    pub fn disasm(&self, thread: usize) -> String {
        let mut out = String::new();
        for (pc, i) in self.threads[thread].iter().enumerate() {
            out.push_str(&format!("{pc:5}: {i}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Operand, Reg};

    fn halted(instrs: Vec<Instr>) -> Program {
        Program {
            threads: vec![instrs],
            data_size: 16,
            ..Program::default()
        }
    }

    #[test]
    fn validate_ok() {
        let p = halted(vec![
            Instr::Imm {
                rd: Reg(0),
                value: 1,
            },
            Instr::Halt,
        ]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_branch_range() {
        let p = halted(vec![
            Instr::Branch {
                op: CmpOp::Eq,
                a: Operand::Imm(0),
                b: Operand::Imm(0),
                target: 9,
            },
            Instr::Halt,
        ]);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BranchOutOfRange { target: 9, .. })
        ));
    }

    #[test]
    fn validate_missing_halt() {
        let p = halted(vec![Instr::Nop]);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::MissingHalt { thread: 0 })
        ));
    }

    #[test]
    fn validate_register_range() {
        let p = halted(vec![
            Instr::Imm {
                rd: Reg(200),
                value: 0,
            },
            Instr::Halt,
        ]);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::RegisterOutOfRange { reg: 200, .. })
        ));
    }

    #[test]
    fn symbols_and_memory_image() {
        let mut p = halted(vec![Instr::Halt]);
        p.add_symbol(Symbol {
            name: "HEAD".into(),
            addr: 3,
            len: 1,
            shared: true,
        });
        p.data_init.push((3, 42));
        assert_eq!(p.addr_of("HEAD"), 3);
        assert!(p.symbol("TAIL").is_none());
        let mem = p.initial_memory();
        assert_eq!(mem.len(), 16);
        assert_eq!(mem[3], 42);
        assert!(p.validate().is_ok());
    }
}
