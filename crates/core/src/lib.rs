//! # sfence-core
//!
//! The paper's primary contribution: the **scoped fence (S-Fence)**
//! mechanism.
//!
//! - [`mask`] — fence scope bits (FSB) attached to every ROB and
//!   store-buffer entry, with per-column outstanding counters.
//! - [`stack`] — the fence scope stack (FSS) with bounded capacity and
//!   the overflow counter that degrades fences when scopes exceed the
//!   hardware.
//! - [`mapping`] — the cid → FSB-column mapping table, including the
//!   shared fallback column.
//! - [`unit`](mod@unit) — the per-core scope unit tying the above together,
//!   including the shadow stack FSS′ for branch-misprediction recovery
//!   and a precise checkpoint ablation.
//! - [`semantics`] — the executable operational semantics of class
//!   scope (paper Fig. 5) plus a trace conformance checker used to
//!   validate the CPU model against the definition of S-Fence.
//! - [`coverage`] — the compact event bitmap of scope-unit paths the
//!   fuzzer (`sfence-fuzz`) keys its corpus on.
//! - [`pipe`] — the opt-in pipeline event taxonomy the CPU model emits
//!   for the observability layer (`sfence-obs` renders it as Chrome
//!   `trace_event` JSON).
//! - [`cost`] — the §VI-E hardware cost accounting.

pub mod cost;
pub mod coverage;
pub mod mapping;
pub mod mask;
pub mod pipe;
pub mod semantics;
pub mod stack;
pub mod unit;

pub use cost::{hw_cost, HwCost};
pub use coverage::CoverageSet;
pub use mask::{ColumnCounters, ScopeMask, MAX_FSB_ENTRIES};
pub use pipe::{PipeEvent, PipeKind, WalkKind};
pub use semantics::{check_trace, ClassScopeModel, ConformanceStats, RetiredEvent, Violation};
pub use sfence_isa::ClassId;
pub use unit::{FenceWait, ScopeConfig, ScopeRecovery, ScopeUnit, ScopeUnitStats};
