//! Compact scope-unit event coverage, for the fuzzer's corpus.
//!
//! Every interesting micro-architectural path through the scope unit
//! (Fig. 7) sets one bit in a per-core [`CoverageSet`]: FSB column
//! allocation and eviction, mapping-table hits and overflow, FSS
//! push/pop and overflow-degrade, FSS′ misprediction recovery, and
//! the two distinct fence stall paths (at issue vs at retire). The
//! bitmap is cheap enough to maintain unconditionally, rides out of
//! the simulator in `RunSummary::scope_coverage`, and is what
//! `sfence-fuzz` keys its corpus on: a candidate program is only
//! retained if it lights a bit no earlier corpus entry reached under
//! the same machine configuration.

/// A set of scope-unit coverage events, one bit each.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CoverageSet(pub u32);

/// A tracked scope was pushed onto the FSS with an FSB column.
pub const FSS_PUSH: u32 = 1 << 0;
/// A scope was pushed untracked (`Push(None)`: table full or degraded).
pub const FSS_PUSH_UNTRACKED: u32 = 1 << 1;
/// A scope was popped from the FSS.
pub const FSS_POP: u32 = 1 << 2;
/// An FSS push overflowed capacity: the unit entered degraded mode.
pub const FSS_OVERFLOW: u32 = 1 << 3;
/// The mapping table returned an existing class→column mapping.
pub const MAP_HIT: u32 = 1 << 4;
/// The mapping table allocated a fresh class column.
pub const MAP_ALLOC: u32 = 1 << 5;
/// Class columns exhausted: the shared fallback column was allocated.
pub const MAP_FALLBACK: u32 = 1 << 6;
/// The mapping table itself was full: the scope went untracked.
pub const MAP_FULL: u32 = 1 << 7;
/// A quiescent column's mapping was evicted (reclaim path).
pub const FSB_EVICT: u32 = 1 << 8;
/// Branch misprediction recovered the FSS from the shadow stack FSS′.
pub const RECOVER_SHADOW: u32 = 1 << 9;
/// Branch misprediction recovered the FSS from a checkpoint.
pub const RECOVER_CHECKPOINT: u32 = 1 << 10;
/// Arbitrary-point squash (speculation violation replay) rebuilt the
/// FSS from the retirement boundary.
pub const RECOVER_SQUASH: u32 = 1 << 11;
/// A memory operation was flagged into the reserved set-scope column.
pub const SET_FLAGGED: u32 = 1 << 12;
/// A scoped fence degraded to a full wait (overflow or untracked).
pub const FENCE_DEGRADED: u32 = 1 << 13;
/// A scoped fence resolved to a column mask.
pub const FENCE_SCOPED: u32 = 1 << 14;
/// A global fence was requested.
pub const FENCE_GLOBAL: u32 = 1 << 15;
/// A fence blocked instruction issue (non-speculative path, or an
/// in-window fence re-checked and still unsatisfied).
pub const STALL_AT_ISSUE: u32 = 1 << 16;
/// A fence held retirement (in-window speculation path).
pub const STALL_AT_RETIRE: u32 = 1 << 17;

/// Every defined bit with its short name, in bit order — the coverage
/// map documented in `crates/fuzz/README.md`.
pub const COVERAGE_NAMES: [(u32, &str); 18] = [
    (FSS_PUSH, "fss_push"),
    (FSS_PUSH_UNTRACKED, "fss_push_untracked"),
    (FSS_POP, "fss_pop"),
    (FSS_OVERFLOW, "fss_overflow"),
    (MAP_HIT, "map_hit"),
    (MAP_ALLOC, "map_alloc"),
    (MAP_FALLBACK, "map_fallback"),
    (MAP_FULL, "map_full"),
    (FSB_EVICT, "fsb_evict"),
    (RECOVER_SHADOW, "recover_shadow"),
    (RECOVER_CHECKPOINT, "recover_checkpoint"),
    (RECOVER_SQUASH, "recover_squash"),
    (SET_FLAGGED, "set_flagged"),
    (FENCE_DEGRADED, "fence_degraded"),
    (FENCE_SCOPED, "fence_scoped"),
    (FENCE_GLOBAL, "fence_global"),
    (STALL_AT_ISSUE, "stall_at_issue"),
    (STALL_AT_RETIRE, "stall_at_retire"),
];

impl CoverageSet {
    pub const EMPTY: CoverageSet = CoverageSet(0);

    /// Record an event.
    pub fn insert(&mut self, bit: u32) {
        self.0 |= bit;
    }

    /// Were any of `bits` recorded?
    pub fn contains(self, bits: u32) -> bool {
        self.0 & bits != 0
    }

    /// Union with another set.
    pub fn union(self, other: CoverageSet) -> CoverageSet {
        CoverageSet(self.0 | other.0)
    }

    /// Bits in `self` that `other` lacks.
    pub fn novel_over(self, other: CoverageSet) -> CoverageSet {
        CoverageSet(self.0 & !other.0)
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of distinct events recorded.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// The raw bitmap (what `RunReport` serializes).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Short names of the recorded events, in bit order.
    pub fn names(self) -> Vec<&'static str> {
        COVERAGE_NAMES
            .iter()
            .filter(|&&(bit, _)| self.contains(bit))
            .map(|&(_, name)| name)
            .collect()
    }
}

impl std::fmt::Display for CoverageSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.names().join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_distinct_and_named() {
        let mut all = 0u32;
        for (bit, name) in COVERAGE_NAMES {
            assert_eq!(bit.count_ones(), 1, "{name} is a single bit");
            assert_eq!(all & bit, 0, "{name} is distinct");
            all |= bit;
        }
        assert_eq!(all.count_ones() as usize, COVERAGE_NAMES.len());
    }

    #[test]
    fn set_operations() {
        let mut a = CoverageSet::default();
        assert!(a.is_empty());
        a.insert(FSS_PUSH);
        a.insert(MAP_HIT);
        assert!(a.contains(FSS_PUSH) && a.contains(MAP_HIT));
        assert_eq!(a.count(), 2);
        let b = CoverageSet(FSS_PUSH | FENCE_SCOPED);
        assert_eq!(a.novel_over(b), CoverageSet(MAP_HIT));
        assert_eq!(a.union(b).count(), 3);
        assert_eq!(a.names(), vec!["fss_push", "map_hit"]);
        assert_eq!(format!("{}", CoverageSet(FSS_POP)), "fss_pop");
    }
}
