//! The fence scope stack (FSS) and its branch-misprediction shadow.
//!
//! The FSS records the nested active scopes: the outermost scope at
//! the bottom, the innermost on top (paper §IV-A-3). `fs_start` pushes
//! the scope's FSB column, `fs_end` pops. When either the stack or the
//! mapping table cannot accommodate a new scope, an *overflow counter*
//! takes over: it counts unbalanced `fs_start`s, and while it is
//! nonzero every fence degrades to a traditional fence (paper's
//! "handling excessive scopes").
//!
//! Branch misprediction (paper §IV-A-3, "handling branch prediction")
//! is handled one level up, in [`crate::unit::ScopeUnit`], which keeps
//! a shadow stack FSS′ plus a queue of scope operations pending behind
//! unconfirmed branches.

use crate::mask::{ScopeMask, MAX_FSB_ENTRIES};

/// A scope operation, recorded for deferred replay on the shadow
/// stack. `Push(None)` is an `fs_start` that could not be tracked
/// (mapping table full at issue time); each stack interprets it
/// through its own overflow counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeOp {
    Push(Option<u8>),
    Pop,
}

/// One fence scope stack of bounded capacity with an overflow counter.
///
/// The column multiset is mirrored in per-column counts and a cached
/// union mask, so [`ScopeStack::mask`] and [`ScopeStack::contains`] —
/// both on the per-memory-op issue path — are O(1) word reads instead
/// of stack scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeStack {
    stack: Vec<u8>,
    cap: usize,
    /// Number of `fs_start`s seen since the structure filled, not yet
    /// balanced by `fs_end`s. While nonzero, fences degrade.
    overflow: u32,
    /// How many stack slots hold each column.
    col_counts: [u32; MAX_FSB_ENTRIES],
    /// Union of the stack's columns (bit `i` ⟺ `col_counts[i] > 0`).
    mask: ScopeMask,
}

impl ScopeStack {
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "FSS needs at least one entry");
        Self {
            stack: Vec::with_capacity(cap),
            cap,
            overflow: 0,
            col_counts: [0; MAX_FSB_ENTRIES],
            mask: ScopeMask::EMPTY,
        }
    }

    /// Apply a scope operation.
    pub fn apply(&mut self, op: ScopeOp) {
        match op {
            ScopeOp::Push(col) => self.push(col),
            ScopeOp::Pop => self.pop(),
        }
    }

    fn push(&mut self, col: Option<u8>) {
        if self.overflow > 0 {
            // Nested inside an untracked region: stay untracked so the
            // matching fs_end pairs up.
            self.overflow += 1;
            return;
        }
        match col {
            Some(c) if self.stack.len() < self.cap => {
                self.stack.push(c);
                self.col_counts[c as usize] += 1;
                self.mask = self.mask.union(ScopeMask::column(c));
            }
            _ => self.overflow = 1,
        }
    }

    fn pop(&mut self) {
        if self.overflow > 0 {
            self.overflow -= 1;
            return;
        }
        debug_assert!(!self.stack.is_empty(), "FSS pop on empty stack");
        if let Some(c) = self.stack.pop() {
            let n = &mut self.col_counts[c as usize];
            *n -= 1;
            if *n == 0 {
                self.mask.0 &= !(1 << c);
            }
        }
    }

    /// The column of the innermost tracked scope, if any.
    pub fn top(&self) -> Option<u8> {
        self.stack.last().copied()
    }

    /// Is a column anywhere on the stack?
    #[inline]
    pub fn contains(&self, col: u8) -> bool {
        self.mask.contains(col)
    }

    /// FSB mask a newly issued memory operation must set: all columns
    /// currently on the stack (inner scopes flag outer scopes too —
    /// paper §IV-A-3).
    #[inline]
    pub fn mask(&self) -> ScopeMask {
        self.mask
    }

    /// While true, fences must behave as traditional fences.
    pub fn degraded(&self) -> bool {
        self.overflow > 0
    }

    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stack.is_empty() && self.overflow == 0
    }

    /// Restore this stack from another (misprediction recovery:
    /// `FSS <- FSS'`).
    pub fn restore_from(&mut self, other: &ScopeStack) {
        self.stack.clear();
        self.stack.extend_from_slice(&other.stack);
        self.overflow = other.overflow;
        self.col_counts = other.col_counts;
        self.mask = other.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_nesting() {
        let mut s = ScopeStack::new(4);
        s.apply(ScopeOp::Push(Some(0)));
        s.apply(ScopeOp::Push(Some(1)));
        assert_eq!(s.top(), Some(1));
        assert_eq!(s.mask(), ScopeMask(0b11));
        s.apply(ScopeOp::Pop);
        assert_eq!(s.top(), Some(0));
        s.apply(ScopeOp::Pop);
        assert!(s.is_empty());
        assert_eq!(s.mask(), ScopeMask::EMPTY);
    }

    #[test]
    fn duplicate_columns_allowed() {
        // Nested invocations of the same class push the same column.
        let mut s = ScopeStack::new(4);
        s.apply(ScopeOp::Push(Some(2)));
        s.apply(ScopeOp::Push(Some(2)));
        assert_eq!(s.mask(), ScopeMask::column(2));
        s.apply(ScopeOp::Pop);
        assert!(s.contains(2));
        s.apply(ScopeOp::Pop);
        assert!(!s.contains(2));
    }

    #[test]
    fn capacity_overflow_degrades_and_recovers() {
        let mut s = ScopeStack::new(2);
        s.apply(ScopeOp::Push(Some(0)));
        s.apply(ScopeOp::Push(Some(1)));
        assert!(!s.degraded());
        s.apply(ScopeOp::Push(Some(2))); // no room -> overflow
        assert!(s.degraded());
        s.apply(ScopeOp::Push(Some(0))); // nested inside untracked
        assert!(s.degraded());
        s.apply(ScopeOp::Pop);
        assert!(s.degraded()); // counter 1
        s.apply(ScopeOp::Pop);
        assert!(!s.degraded()); // recovered
        assert_eq!(s.depth(), 2); // outer tracked scopes intact
        s.apply(ScopeOp::Pop);
        s.apply(ScopeOp::Pop);
        assert!(s.is_empty());
    }

    #[test]
    fn untracked_push_always_overflows() {
        let mut s = ScopeStack::new(4);
        s.apply(ScopeOp::Push(None)); // mapping table was full
        assert!(s.degraded());
        assert_eq!(s.depth(), 0);
        s.apply(ScopeOp::Pop);
        assert!(!s.degraded());
    }

    #[test]
    fn restore_from_copies_state() {
        let mut a = ScopeStack::new(4);
        let mut b = ScopeStack::new(4);
        b.apply(ScopeOp::Push(Some(3)));
        a.apply(ScopeOp::Push(Some(0)));
        a.apply(ScopeOp::Push(Some(1)));
        a.restore_from(&b);
        assert_eq!(a.top(), Some(3));
        assert_eq!(a.depth(), 1);
        assert!(!a.degraded());
    }
}
