//! The per-core scope unit: mapping table + FSS + FSS′ + outstanding
//! counters, driven by the core's issue/complete/squash events.
//!
//! This is the hardware the paper adds to each out-of-order core
//! (Fig. 7). The CPU model calls into it:
//!
//! - at **issue** (in program order along the predicted path):
//!   [`ScopeUnit::fs_start`], [`ScopeUnit::fs_end`],
//!   [`ScopeUnit::mem_issued`] (returns the FSB mask to stash in the
//!   ROB entry), [`ScopeUnit::branch_issued`];
//! - at **branch resolution**: [`ScopeUnit::branch_resolved`] — on a
//!   misprediction the FSS is recovered, either from the shadow stack
//!   FSS′ as in the paper, or from a precise per-branch checkpoint
//!   (the [`ScopeRecovery`] ablation);
//! - at **completion/squash** of memory operations:
//!   [`ScopeUnit::mem_completed`] / [`ScopeUnit::mem_squashed`];
//! - at **fence issue**: [`ScopeUnit::fence_request`] captures what
//!   the fence must wait for, and [`ScopeUnit::mask_clear`] answers
//!   the per-cycle "is this FSB column clear everywhere?" check.

use crate::coverage::{self, CoverageSet};
use crate::mapping::{MapResult, MappingTable};
use crate::mask::{ColumnCounters, ScopeMask, MAX_FSB_ENTRIES};
use crate::stack::{ScopeOp, ScopeStack};
use sfence_isa::{ClassId, FenceKind};
use std::collections::VecDeque;

/// How the FSS is recovered after a branch misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScopeRecovery {
    /// The paper's mechanism: a shadow stack FSS′ updated only by
    /// scope operations with no unconfirmed prior branch; on a
    /// misprediction `FSS <- FSS'` and the still-correct pending
    /// operations are replayed.
    #[default]
    ShadowStack,
    /// Precise per-branch checkpoints of the FSS (ablation baseline;
    /// more hardware, exact recovery).
    Checkpoint,
}

/// Scope-unit geometry (paper Table III: 4 FSB entries, 4 FSS entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeConfig {
    /// FSB columns per ROB/SB entry. The last column is reserved for
    /// set scope; the rest are class columns.
    pub fsb_entries: usize,
    /// FSS (and FSS′) capacity.
    pub fss_entries: usize,
    /// Mapping-table rows.
    pub mapping_entries: usize,
    pub recovery: ScopeRecovery,
    /// Fault injection for the fuzzer's bug-detection smoke test:
    /// model broken RTL that treats "no tracked scope" as "nothing to
    /// wait for" — a scoped fence that should degrade to a full wait
    /// (FSS overflow, mapping-table overflow, or fencing outside any
    /// tracked scope) instead waits on nothing. Never set outside
    /// `sfence-fuzz --inject-bug`; the default hardware is the
    /// paper's always-safe degrade.
    pub skip_degrade_on_overflow: bool,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        Self {
            fsb_entries: 4,
            fss_entries: 4,
            // Not fixed by the paper; four rows match the four FSB
            // columns and keep the §VI-E cost under 80 bytes/core.
            mapping_entries: 4,
            recovery: ScopeRecovery::ShadowStack,
            skip_degrade_on_overflow: false,
        }
    }
}

/// What an issued fence waits for, captured at its issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceWait {
    /// Behave as a traditional fence: wait for *all* prior memory
    /// operations (global fences, and any scoped fence that degraded).
    All,
    /// Wait until the given FSB columns are clear.
    Mask(ScopeMask),
}

/// Scope-unit statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeUnitStats {
    pub fs_starts: u64,
    pub fs_ends: u64,
    pub scoped_mem_ops: u64,
    pub flagged_mem_ops: u64,
    pub degraded_fences: u64,
    pub scoped_fences: u64,
    pub mispredict_recoveries: u64,
    /// FSS pushes that overflowed capacity (entries into degraded
    /// mode), attributable per core.
    pub fss_overflows: u64,
}

/// The per-core scope unit.
#[derive(Debug, Clone)]
pub struct ScopeUnit {
    cfg: ScopeConfig,
    fss: ScopeStack,
    shadow: ScopeStack,
    /// Scope ops issued behind an unconfirmed branch, not yet applied
    /// to FSS′ (sequence-tagged).
    pending: VecDeque<(u64, ScopeOp)>,
    /// In-flight branches in program order, with confirmation status.
    branches: VecDeque<(u64, bool)>,
    /// Per-branch FSS checkpoints (only in `Checkpoint` mode).
    checkpoints: Vec<(u64, ScopeStack)>,
    /// The FSS as of the retirement boundary, plus all scope ops
    /// issued but not yet retired. Together these reconstruct the FSS
    /// at *any* unretired point — needed by in-window speculation
    /// violation replay, which (unlike branch misprediction, which
    /// FSS′ handles as in the paper) can squash from an arbitrary
    /// load.
    retired: ScopeStack,
    inflight: VecDeque<(u64, ScopeOp)>,
    mt: MappingTable,
    counts: ColumnCounters,
    pub stats: ScopeUnitStats,
    /// Which micro-architectural paths this unit exercised (the
    /// fuzzer's corpus key). The CPU core also records its fence
    /// stall paths here.
    pub coverage: CoverageSet,
}

impl ScopeUnit {
    pub fn new(cfg: ScopeConfig) -> Self {
        assert!(
            (2..=MAX_FSB_ENTRIES).contains(&cfg.fsb_entries),
            "fsb_entries must be in 2..=16 (one column is reserved for set scope)"
        );
        let class_columns = (cfg.fsb_entries - 1) as u8;
        Self {
            cfg,
            fss: ScopeStack::new(cfg.fss_entries),
            shadow: ScopeStack::new(cfg.fss_entries),
            pending: VecDeque::new(),
            branches: VecDeque::new(),
            checkpoints: Vec::new(),
            retired: ScopeStack::new(cfg.fss_entries),
            inflight: VecDeque::new(),
            mt: MappingTable::new(cfg.mapping_entries, class_columns),
            counts: ColumnCounters::new(),
            stats: ScopeUnitStats::default(),
            coverage: CoverageSet::EMPTY,
        }
    }

    /// The FSB column reserved for set scope (the last one, Fig. 9).
    pub fn set_column(&self) -> u8 {
        (self.cfg.fsb_entries - 1) as u8
    }

    fn apply_op(&mut self, seq: u64, op: ScopeOp) {
        self.fss.apply(op);
        self.inflight.push_back((seq, op));
        // The shadow stack is maintained in both recovery modes: the
        // Checkpoint ablation uses checkpoints for *branch* recovery,
        // but arbitrary-point recovery (in-window speculation
        // violation replay) always goes through the retire boundary.
        if self.branches.is_empty() {
            self.shadow.apply(op);
        } else {
            self.pending.push_back((seq, op));
        }
    }

    /// An `fs_start`/`fs_end` retired (architectural). Must be called
    /// in retirement order.
    pub fn fs_retired(&mut self) {
        let (_, op) = self
            .inflight
            .pop_front()
            .expect("fs retirement without matching issue");
        self.retired.apply(op);
    }

    /// Issue an `fs_start cid`.
    pub fn fs_start(&mut self, cid: ClassId, seq: u64) {
        self.stats.fs_starts += 1;
        let was_degraded = self.fss.degraded();
        let op = if was_degraded {
            // Inside an untracked region: don't touch the mapping table.
            ScopeOp::Push(None)
        } else {
            let before = self.mapping_stats();
            let res = self.mt.lookup_or_alloc(cid);
            let after = self.mapping_stats();
            self.coverage.insert(match () {
                _ if after.0 > before.0 => coverage::MAP_HIT,
                _ if after.3 > before.3 => coverage::MAP_FULL,
                _ if after.2 > before.2 => coverage::MAP_FALLBACK,
                _ => coverage::MAP_ALLOC,
            });
            match res {
                MapResult::Column(col) => ScopeOp::Push(Some(col)),
                MapResult::TableFull => ScopeOp::Push(None),
            }
        };
        self.coverage.insert(match op {
            ScopeOp::Push(Some(_)) => coverage::FSS_PUSH,
            _ => coverage::FSS_PUSH_UNTRACKED,
        });
        self.apply_op(seq, op);
        if !was_degraded && self.fss.degraded() {
            self.stats.fss_overflows += 1;
            self.coverage.insert(coverage::FSS_OVERFLOW);
        }
    }

    /// Issue an `fs_end`.
    pub fn fs_end(&mut self, seq: u64) {
        self.stats.fs_ends += 1;
        self.coverage.insert(coverage::FSS_POP);
        self.apply_op(seq, ScopeOp::Pop);
        self.reclaim();
    }

    /// Issue a memory operation; returns the FSB mask for its
    /// ROB/SB entry. Counters are incremented; the CPU must balance
    /// every call with [`Self::mem_completed`] or
    /// [`Self::mem_squashed`].
    pub fn mem_issued(&mut self, set_flagged: bool) -> ScopeMask {
        let mut mask = self.fss.mask();
        if set_flagged {
            mask = mask.union(ScopeMask::column(self.set_column()));
            self.stats.flagged_mem_ops += 1;
            self.coverage.insert(coverage::SET_FLAGGED);
        }
        if !mask.is_empty() {
            self.stats.scoped_mem_ops += 1;
        }
        self.counts.add(mask);
        mask
    }

    /// A branch entered the window (issue order).
    pub fn branch_issued(&mut self, seq: u64) {
        self.branches.push_back((seq, false));
        if self.cfg.recovery == ScopeRecovery::Checkpoint {
            self.checkpoints.push((seq, self.fss.clone()));
        }
    }

    /// A branch resolved. On a misprediction the CPU squashes all
    /// younger instructions; this call performs the FSS recovery.
    pub fn branch_resolved(&mut self, seq: u64, mispredicted: bool) {
        if !mispredicted {
            for b in self.branches.iter_mut() {
                if b.0 == seq {
                    b.1 = true;
                    break;
                }
            }
            self.drain_confirmed();
            if self.cfg.recovery == ScopeRecovery::Checkpoint {
                self.checkpoints.retain(|(s, _)| *s != seq);
            }
            return;
        }

        self.stats.mispredict_recoveries += 1;
        self.coverage.insert(match self.cfg.recovery {
            ScopeRecovery::ShadowStack => coverage::RECOVER_SHADOW,
            ScopeRecovery::Checkpoint => coverage::RECOVER_CHECKPOINT,
        });
        // Everything at or after the mispredicted branch is squashed.
        self.branches.retain(|&(s, _)| s < seq);
        self.pending.retain(|&(s, _)| s < seq);
        self.inflight.retain(|&(s, _)| s < seq);
        match self.cfg.recovery {
            ScopeRecovery::ShadowStack => {
                // FSS <- FSS', then replay the surviving (correct-path)
                // pending ops that FSS' has not absorbed yet.
                self.fss.restore_from(&self.shadow);
                for i in 0..self.pending.len() {
                    let (_, op) = self.pending[i];
                    self.fss.apply(op);
                }
            }
            ScopeRecovery::Checkpoint => {
                let idx = self
                    .checkpoints
                    .iter()
                    .position(|(s, _)| *s == seq)
                    .expect("mispredicted branch has a checkpoint");
                let ScopeUnit {
                    fss, checkpoints, ..
                } = self;
                fss.restore_from(&checkpoints[idx].1);
                self.checkpoints.truncate(idx);
            }
        }
        self.reclaim();
    }

    /// Recover the FSS to the state just before instruction `seq`
    /// (everything at or after `seq` is being squashed — used by
    /// in-window speculation violation replay, where the squash point
    /// is an arbitrary load rather than a branch). Reconstructs from
    /// the retirement boundary, then rebuilds FSS′ and the pending
    /// queue so later branch recoveries stay consistent.
    pub fn squash_from(&mut self, seq: u64) {
        self.stats.mispredict_recoveries += 1;
        self.coverage.insert(coverage::RECOVER_SQUASH);
        self.branches.retain(|&(s, _)| s < seq);
        self.checkpoints.retain(|&(s, _)| s < seq);
        self.inflight.retain(|&(s, _)| s < seq);
        // FSS = retired boundary + surviving in-flight ops.
        self.fss.restore_from(&self.retired);
        for i in 0..self.inflight.len() {
            let (_, op) = self.inflight[i];
            self.fss.apply(op);
        }
        // Rebuild FSS′/pending: ops with no unconfirmed prior branch
        // are absorbed; the rest stay pending.
        self.shadow.restore_from(&self.retired);
        self.pending.clear();
        let first_unconfirmed = self.branches.front().map(|&(s, _)| s);
        for i in 0..self.inflight.len() {
            let (s, op) = self.inflight[i];
            match first_unconfirmed {
                Some(f) if s > f => self.pending.push_back((s, op)),
                _ => self.shadow.apply(op),
            }
        }
        self.reclaim();
    }

    fn drain_confirmed(&mut self) {
        while let Some(&(_, confirmed)) = self.branches.front() {
            if !confirmed {
                break;
            }
            self.branches.pop_front();
            let next_seq = self.branches.front().map(|&(s, _)| s);
            // Apply pending ops now free of unconfirmed prior branches.
            while let Some(&(s, op)) = self.pending.front() {
                if next_seq.is_some_and(|ns| s > ns) {
                    break;
                }
                self.pending.pop_front();
                self.shadow.apply(op);
            }
        }
    }

    /// A memory operation completed (load value bound / store drained).
    pub fn mem_completed(&mut self, mask: ScopeMask) {
        self.counts.remove(mask);
        if !mask.is_empty() {
            self.reclaim();
        }
    }

    /// A memory operation was squashed before completing.
    pub fn mem_squashed(&mut self, mask: ScopeMask) {
        self.mem_completed(mask);
    }

    /// Invalidate mappings of quiescent, inactive columns (paper: a
    /// mapping is removed once all FSB bits of its entry are clear and
    /// the scope is gone).
    fn reclaim(&mut self) {
        // Candidates: mapped columns with no outstanding operations.
        // Both sides are cached bitmasks, so the common case (nothing
        // to reclaim) is two word ops and no allocation.
        let mut candidates = self.mt.mapped_mask().0 & !self.counts.nonzero_mask().0;
        while candidates != 0 {
            let col = candidates.trailing_zeros() as u8;
            candidates &= candidates - 1;
            if !self.column_active(col) {
                self.mt.invalidate_column(col);
                self.coverage.insert(coverage::FSB_EVICT);
            }
        }
    }

    fn column_active(&self, col: u8) -> bool {
        self.fss.contains(col)
            || self.shadow.contains(col)
            || self.retired.contains(col)
            || self
                .inflight
                .iter()
                .any(|&(_, op)| op == ScopeOp::Push(Some(col)))
            || self.checkpoints.iter().any(|(_, st)| st.contains(col))
    }

    /// Capture what a fence must wait for, at its issue (paper §IV-A-4:
    /// "the top of FSS indicates which entry of FSB is flagging the
    /// current scope").
    pub fn fence_request(&mut self, kind: FenceKind) -> FenceWait {
        let wait = match kind {
            FenceKind::Global => FenceWait::All,
            _ if self.fss.degraded() => FenceWait::All, // overflow mode
            FenceKind::Set => FenceWait::Mask(ScopeMask::column(self.set_column())),
            FenceKind::Class => match self.fss.top() {
                Some(col) => FenceWait::Mask(ScopeMask::column(col)),
                // A class fence outside any tracked scope (markers
                // disabled, or scope lost to overflow): conservative.
                None => FenceWait::All,
            },
        };
        match wait {
            FenceWait::All if kind != FenceKind::Global => {
                self.stats.degraded_fences += 1;
                self.coverage.insert(coverage::FENCE_DEGRADED);
            }
            FenceWait::Mask(_) => {
                self.stats.scoped_fences += 1;
                self.coverage.insert(coverage::FENCE_SCOPED);
            }
            FenceWait::All => self.coverage.insert(coverage::FENCE_GLOBAL),
        }
        if self.cfg.skip_degrade_on_overflow && kind != FenceKind::Global && wait == FenceWait::All
        {
            // Injected bug (see `ScopeConfig::skip_degrade_on_overflow`):
            // the degrade path waits on nothing instead of everything.
            return FenceWait::Mask(ScopeMask::EMPTY);
        }
        wait
    }

    /// Are all columns in `mask` clear of outstanding operations?
    pub fn mask_clear(&self, mask: ScopeMask) -> bool {
        self.counts.clear_in(mask)
    }

    /// Current FSS depth (diagnostics).
    pub fn fss_depth(&self) -> usize {
        self.fss.depth()
    }

    /// Is the unit currently degraded (overflow counter nonzero)?
    pub fn degraded(&self) -> bool {
        self.fss.degraded()
    }

    /// Mapping-table statistics passthrough.
    pub fn mapping_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.mt.hits,
            self.mt.allocs,
            self.mt.fallback_allocs,
            self.mt.full_rejections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> ScopeUnit {
        ScopeUnit::new(ScopeConfig::default())
    }

    #[test]
    fn mem_in_nested_scopes_sets_all_levels() {
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        let outer = u.mem_issued(false);
        u.fs_start(ClassId(1), 2);
        let inner = u.mem_issued(false);
        assert_eq!(outer.count(), 1);
        assert_eq!(inner.count(), 2, "inner op flags outer scope too");
        u.fs_end(3);
        u.fs_end(4);
        // Scopes exited but ops outstanding: class fence would degrade
        // (FSS empty), and columns are still counted.
        assert!(!u.mask_clear(inner));
        u.mem_completed(outer);
        u.mem_completed(inner);
        assert!(u.mask_clear(inner));
    }

    #[test]
    fn class_fence_waits_only_for_its_column() {
        let mut u = unit();
        u.fs_start(ClassId(7), 1);
        let m_in = u.mem_issued(false);
        u.fs_end(2);
        // Outside the scope now; an unscoped op:
        let m_out = u.mem_issued(false);
        assert!(m_out.is_empty());
        u.fs_start(ClassId(7), 3);
        let wait = u.fence_request(FenceKind::Class);
        let FenceWait::Mask(mask) = wait else {
            panic!("expected scoped wait")
        };
        assert!(!u.mask_clear(mask), "in-scope op still outstanding");
        u.mem_completed(m_in);
        assert!(u.mask_clear(mask), "unscoped op never blocks it");
    }

    #[test]
    fn set_fence_uses_reserved_column() {
        let mut u = unit();
        let flagged = u.mem_issued(true);
        let plain = u.mem_issued(false);
        assert!(flagged.contains(u.set_column()));
        assert!(plain.is_empty());
        let FenceWait::Mask(mask) = u.fence_request(FenceKind::Set) else {
            panic!()
        };
        assert!(!u.mask_clear(mask));
        u.mem_completed(flagged);
        assert!(u.mask_clear(mask));
        u.mem_completed(plain);
    }

    #[test]
    fn global_fence_requests_all() {
        let mut u = unit();
        assert_eq!(u.fence_request(FenceKind::Global), FenceWait::All);
    }

    #[test]
    fn overflow_degrades_fences_then_recovers() {
        let mut u = ScopeUnit::new(ScopeConfig {
            fss_entries: 1,
            ..ScopeConfig::default()
        });
        u.fs_start(ClassId(0), 1);
        assert!(matches!(
            u.fence_request(FenceKind::Class),
            FenceWait::Mask(_)
        ));
        u.fs_start(ClassId(1), 2); // FSS full -> overflow
        assert!(u.degraded());
        assert_eq!(u.fence_request(FenceKind::Class), FenceWait::All);
        assert_eq!(u.fence_request(FenceKind::Set), FenceWait::All);
        u.fs_end(3);
        assert!(!u.degraded());
        assert!(matches!(
            u.fence_request(FenceKind::Class),
            FenceWait::Mask(_)
        ));
        u.fs_end(4);
        assert_eq!(u.stats.degraded_fences, 2);
        assert_eq!(u.stats.fss_overflows, 1);
        assert!(u.coverage.contains(coverage::FSS_OVERFLOW));
        assert!(u.coverage.contains(coverage::FENCE_DEGRADED));
        assert!(u.coverage.contains(coverage::FENCE_SCOPED));
    }

    #[test]
    fn injected_bug_makes_degraded_fences_wait_on_nothing() {
        let mut u = ScopeUnit::new(ScopeConfig {
            fss_entries: 1,
            skip_degrade_on_overflow: true,
            ..ScopeConfig::default()
        });
        u.fs_start(ClassId(0), 1);
        let m = u.mem_issued(false);
        u.fs_start(ClassId(1), 2); // overflow -> degraded
        assert!(u.degraded());
        // Correct hardware would degrade to FenceWait::All; the
        // injected bug returns an empty mask, which is always "clear".
        let FenceWait::Mask(mask) = u.fence_request(FenceKind::Class) else {
            panic!("bug must replace the degraded full wait");
        };
        assert!(mask.is_empty());
        assert!(u.mask_clear(mask), "op at {m:?} outstanding, yet no wait");
        // Global fences are untouched by the injection.
        assert_eq!(u.fence_request(FenceKind::Global), FenceWait::All);
        u.mem_completed(m);
    }

    #[test]
    fn coverage_tracks_mapping_paths() {
        let mut u = ScopeUnit::new(ScopeConfig {
            fsb_entries: 2, // one class column + the set column
            mapping_entries: 1,
            ..ScopeConfig::default()
        });
        u.fs_start(ClassId(0), 1);
        assert!(u.coverage.contains(coverage::MAP_ALLOC));
        assert!(!u.coverage.contains(coverage::MAP_HIT));
        u.fs_start(ClassId(0), 2);
        assert!(u.coverage.contains(coverage::MAP_HIT));
        u.fs_start(ClassId(1), 3); // table full -> untracked push
        assert!(u.coverage.contains(coverage::MAP_FULL));
        assert!(u.coverage.contains(coverage::FSS_PUSH_UNTRACKED));
    }

    #[test]
    fn mapping_reclaimed_after_quiescence() {
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        let m = u.mem_issued(false);
        u.fs_end(2);
        u.fs_retired();
        u.fs_retired();
        // Column still counted -> not reclaimed; same cid hits.
        u.fs_start(ClassId(0), 3);
        u.fs_end(4);
        u.fs_retired();
        u.fs_retired();
        let (hits, allocs, _, _) = u.mapping_stats();
        assert_eq!((hits, allocs), (1, 1));
        u.mem_completed(m);
        // Quiescent + inactive -> mapping invalidated; next start re-allocs.
        u.fs_start(ClassId(0), 5);
        u.fs_end(6);
        let (hits2, allocs2, _, _) = u.mapping_stats();
        assert_eq!((hits2, allocs2), (1, 2));
    }

    #[test]
    fn arbitrary_point_squash_reconstructs_fss() {
        // fs_start A retired; fs_start B in flight; squash from a
        // point between them: FSS must contain A only, and a re-issued
        // B must nest correctly.
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        u.fs_retired();
        u.fs_start(ClassId(1), 5);
        assert_eq!(u.fss_depth(), 2);
        u.squash_from(3); // squashes the fs_start at seq 5
        assert_eq!(u.fss_depth(), 1);
        // Replayed path re-issues the inner scope.
        u.fs_start(ClassId(1), 7);
        assert_eq!(u.fss_depth(), 2);
        u.fs_end(8);
        u.fs_end(9);
        assert_eq!(u.fss_depth(), 0);
    }

    #[test]
    fn squash_then_branch_mispredict_stays_consistent() {
        // After an arbitrary-point squash, FSS' must have been rebuilt
        // so a later branch misprediction recovers correctly.
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        u.fs_retired();
        u.fs_start(ClassId(1), 4);
        u.squash_from(4); // drop the inner scope
        u.branch_issued(6);
        u.fs_start(ClassId(2), 7); // wrong path
        assert_eq!(u.fss_depth(), 2);
        u.branch_resolved(6, true);
        assert_eq!(u.fss_depth(), 1, "only the retired outer scope remains");
        u.fs_end(9);
        assert_eq!(u.fss_depth(), 0);
    }

    #[test]
    fn shadow_recovery_discards_wrong_path_scope_ops() {
        // fs_start A; branch B; (wrong path) fs_end A; mispredict ->
        // FSS must still contain A's scope.
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        u.branch_issued(2);
        u.fs_end(3); // wrong path: pops FSS, queued for FSS'
        assert_eq!(u.fss_depth(), 0);
        u.branch_resolved(2, true); // mispredicted
        assert_eq!(u.fss_depth(), 1, "FSS restored from FSS'");
        let m = u.mem_issued(false);
        assert_eq!(m.count(), 1);
        u.mem_completed(m);
        u.fs_end(4);
        assert_eq!(u.stats.mispredict_recoveries, 1);
    }

    #[test]
    fn confirmed_branch_applies_pending_ops_to_shadow() {
        let mut u = unit();
        u.branch_issued(1);
        u.fs_start(ClassId(0), 2); // pending (unconfirmed branch prior)
        u.branch_issued(3);
        u.fs_start(ClassId(1), 4); // pending behind branch 3
        u.branch_resolved(1, false); // confirm oldest
                                     // Ops older than branch 3 are applied to FSS'; op at 4 stays
                                     // pending. Mispredicting branch 3 must keep scope A.
        u.branch_resolved(3, true);
        assert_eq!(u.fss_depth(), 1);
    }

    #[test]
    fn out_of_order_confirmation_respects_program_order() {
        let mut u = unit();
        u.branch_issued(1);
        u.branch_issued(3);
        u.fs_start(ClassId(0), 4);
        // Younger branch confirms first: nothing drains yet.
        u.branch_resolved(3, false);
        assert_eq!(u.fss_depth(), 1);
        // Older confirms: both drain, pending op reaches FSS'.
        u.branch_resolved(1, false);
        // Mispredict-free path: FSS and FSS' agree.
        u.fs_end(5);
        assert_eq!(u.fss_depth(), 0);
    }

    #[test]
    fn checkpoint_recovery_is_precise() {
        let mut u = ScopeUnit::new(ScopeConfig {
            recovery: ScopeRecovery::Checkpoint,
            ..ScopeConfig::default()
        });
        u.fs_start(ClassId(0), 1);
        u.branch_issued(2);
        u.fs_start(ClassId(1), 3); // wrong path
        u.fs_start(ClassId(2), 4); // wrong path
        assert_eq!(u.fss_depth(), 3);
        u.branch_resolved(2, true);
        assert_eq!(u.fss_depth(), 1);
        u.fs_end(5);
        assert_eq!(u.fss_depth(), 0);
    }

    #[test]
    fn squash_decrements_counters() {
        let mut u = unit();
        u.fs_start(ClassId(0), 1);
        let m = u.mem_issued(false);
        u.fs_end(2);
        assert!(!u.mask_clear(m));
        u.mem_squashed(m);
        assert!(u.mask_clear(m));
    }

    #[test]
    fn nested_same_class_reuses_column() {
        let mut u = unit();
        u.fs_start(ClassId(5), 1);
        u.fs_start(ClassId(5), 2);
        let m = u.mem_issued(false);
        assert_eq!(m.count(), 1, "same class twice = one column");
        u.fs_end(3);
        // Still inside the outer invocation of the same class.
        let FenceWait::Mask(mask) = u.fence_request(FenceKind::Class) else {
            panic!()
        };
        assert!(!u.mask_clear(mask));
        u.mem_completed(m);
        u.fs_end(4);
    }
}
