//! Fence scope bits (FSB).
//!
//! Each ROB and store-buffer entry is extended with a few *fence scope
//! bits* (paper Fig. 7). Bit `i` of a [`ScopeMask`] says "this memory
//! operation belongs to the fence scope tracked by FSB column `i`".
//! The last column is reserved for set scope (paper §V-A-2); the
//! others are allocated to class scopes by the mapping table.
//!
//! Rather than scanning every ROB/SB entry to decide whether a fence
//! may issue, the hardware model keeps one outstanding-operation
//! counter per column ([`ColumnCounters`]): a column is "clear across
//! all FSBs" exactly when its counter is zero. This is an exact,
//! O(1)-checkable encoding of the paper's "check this entry of all
//! FSBs" step.

/// Maximum number of FSB columns supported by the model.
pub const MAX_FSB_ENTRIES: usize = 16;

/// A per-operation set of FSB bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ScopeMask(pub u16);

impl ScopeMask {
    pub const EMPTY: ScopeMask = ScopeMask(0);

    /// Mask with a single column set.
    #[inline]
    pub fn column(col: u8) -> ScopeMask {
        debug_assert!((col as usize) < MAX_FSB_ENTRIES);
        ScopeMask(1 << col)
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn contains(self, col: u8) -> bool {
        self.0 & (1 << col) != 0
    }

    #[inline]
    pub fn union(self, other: ScopeMask) -> ScopeMask {
        ScopeMask(self.0 | other.0)
    }

    /// Iterate over set columns.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        let bits = self.0;
        (0..MAX_FSB_ENTRIES as u8).filter(move |c| bits & (1 << c) != 0)
    }

    /// Number of set columns.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// Per-column counters of issued-but-not-completed scoped memory
/// operations.
#[derive(Debug, Clone)]
pub struct ColumnCounters {
    counts: [u32; MAX_FSB_ENTRIES],
    /// Bit `i` set iff `counts[i] > 0` — lets fence checks run in O(1).
    nonzero: ScopeMask,
}

impl Default for ColumnCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnCounters {
    pub fn new() -> Self {
        Self {
            counts: [0; MAX_FSB_ENTRIES],
            nonzero: ScopeMask::EMPTY,
        }
    }

    /// Record issue of an operation carrying `mask`.
    pub fn add(&mut self, mask: ScopeMask) {
        for col in mask.iter() {
            self.counts[col as usize] += 1;
        }
        self.nonzero = self.nonzero.union(mask);
    }

    /// Record completion (or squash) of an operation carrying `mask`.
    pub fn remove(&mut self, mask: ScopeMask) {
        for col in mask.iter() {
            let c = &mut self.counts[col as usize];
            debug_assert!(*c > 0, "column {col} counter underflow");
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.nonzero.0 &= !(1 << col);
            }
        }
    }

    /// Is every column in `mask` clear (no outstanding operation)?
    #[inline]
    pub fn clear_in(&self, mask: ScopeMask) -> bool {
        self.nonzero.0 & mask.0 == 0
    }

    /// Outstanding count of one column.
    #[inline]
    pub fn count_of(&self, col: u8) -> u32 {
        self.counts[col as usize]
    }

    /// Mask of columns with outstanding operations.
    #[inline]
    pub fn nonzero_mask(&self) -> ScopeMask {
        self.nonzero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ops() {
        let m = ScopeMask::column(0).union(ScopeMask::column(3));
        assert!(m.contains(0));
        assert!(m.contains(3));
        assert!(!m.contains(1));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 3]);
        assert_eq!(m.count(), 2);
        assert!(ScopeMask::EMPTY.is_empty());
    }

    #[test]
    fn counters_track_nonzero() {
        let mut c = ColumnCounters::new();
        let m = ScopeMask::column(1).union(ScopeMask::column(2));
        assert!(c.clear_in(m));
        c.add(m);
        c.add(ScopeMask::column(1));
        assert!(!c.clear_in(ScopeMask::column(1)));
        assert!(!c.clear_in(ScopeMask::column(2)));
        assert!(c.clear_in(ScopeMask::column(0)));
        c.remove(m);
        assert!(!c.clear_in(ScopeMask::column(1))); // still one left
        assert!(c.clear_in(ScopeMask::column(2)));
        c.remove(ScopeMask::column(1));
        assert!(c.clear_in(m));
        assert_eq!(c.nonzero_mask(), ScopeMask::EMPTY);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn counter_underflow_asserts_in_debug() {
        let mut c = ColumnCounters::new();
        c.remove(ScopeMask::column(0));
        // In release builds saturating_sub keeps this safe; panic
        // explicitly so the expectation holds in both profiles.
        if !cfg!(debug_assertions) {
            panic!("underflow");
        }
    }
}
