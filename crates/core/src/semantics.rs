//! Executable operational semantics of class scope (paper Fig. 5) and
//! a trace conformance checker.
//!
//! The paper defines class scope with four inference rules over the
//! state `<FSeq, Scope, pc>`:
//!
//! - **SCOPEENT** / **SCOPEEX**: entering/leaving a method appends to /
//!   removes from the method sequence `FSeq`;
//! - **MEMOP**: a memory operation is added to `Scope(C(f))` for every
//!   method `f` currently in `FSeq`;
//! - **FENCE**: a fence may complete only when `Scope(C(f))` of the
//!   enclosing method is empty.
//!
//! [`ClassScopeModel`] implements these rules directly. On top of it,
//! [`check_trace`] verifies a *hardware* execution against the S-Fence
//! definition: for every retired fence, every prior in-scope memory
//! access must have completed no later than the cycle at which the
//! fence allowed issue to resume. The hardware is allowed to be more
//! conservative (e.g. shared fallback columns), never less.

use sfence_isa::{ClassId, FenceKind};
use std::collections::{HashMap, HashSet};

/// Direct implementation of the Fig. 5 rules.
#[derive(Debug, Clone, Default)]
pub struct ClassScopeModel {
    fseq: Vec<ClassId>,
    scope: HashMap<ClassId, HashSet<u64>>,
}

impl ClassScopeModel {
    pub fn new() -> Self {
        Self::default()
    }

    /// SCOPEENT: `FSeq' = s · f`.
    pub fn enter(&mut self, class: ClassId) {
        self.fseq.push(class);
    }

    /// SCOPEEX: `FSeq = s · f  =>  FSeq' = s`.
    pub fn exit(&mut self) {
        self.fseq.pop();
    }

    /// MEMOP: add `mop` to the scope of every class in `[[FSeq]]`.
    pub fn mem_op(&mut self, op: u64) {
        let distinct: HashSet<ClassId> = self.fseq.iter().copied().collect();
        for class in distinct {
            self.scope.entry(class).or_default().insert(op);
        }
    }

    /// Completion (handled by the memory subsystem in the paper):
    /// remove the operation from every scope.
    pub fn complete(&mut self, op: u64) {
        for set in self.scope.values_mut() {
            set.remove(&op);
        }
    }

    /// FENCE: may the fence in the current innermost method complete?
    /// (`Scope(C(f)) = ∅`). With an empty `FSeq` the rule does not
    /// apply; we answer conservatively by requiring *all* scopes empty.
    pub fn fence_allowed(&self) -> bool {
        match self.fseq.last() {
            Some(class) => self.scope.get(class).is_none_or(HashSet::is_empty),
            None => self.scope.values().all(HashSet::is_empty),
        }
    }

    /// Outstanding operations in the scope of `class`.
    pub fn scope_size(&self, class: ClassId) -> usize {
        self.scope.get(&class).map_or(0, HashSet::len)
    }

    pub fn depth(&self) -> usize {
        self.fseq.len()
    }
}

/// One retired (architectural) event of a single thread, in program
/// order. Squashed wrong-path instructions never appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetiredEvent {
    FsStart(ClassId),
    FsEnd,
    /// A memory access with its issue and completion cycles.
    Mem {
        id: u64,
        flagged: bool,
        issue: u64,
        complete: u64,
    },
    /// A fence and the cycle at which it allowed younger instructions
    /// to issue.
    Fence {
        kind: FenceKind,
        issue: u64,
    },
}

/// A conformance violation: a fence let execution proceed before an
/// in-scope prior access completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub event_index: usize,
    pub kind: FenceKind,
    pub fence_issue: u64,
    pub latest_in_scope_complete: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fence ({:?}) at event {} issued at cycle {} but an in-scope access completed at {}",
            self.kind, self.event_index, self.fence_issue, self.latest_in_scope_complete
        )
    }
}

/// Summary statistics from a successful conformance check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConformanceStats {
    pub mem_ops: u64,
    pub fences_checked: u64,
    pub max_scope_depth: usize,
}

/// Check one thread's retired trace against the S-Fence semantics.
///
/// For each fence, the set of *prior in-scope* accesses is derived
/// from the Fig. 5 rules (class), the flag bits (set), or everything
/// (global); the check is `max(complete of in-scope prior) <= issue`.
pub fn check_trace(events: &[RetiredEvent]) -> Result<ConformanceStats, Violation> {
    let mut stats = ConformanceStats::default();
    let mut fseq: Vec<ClassId> = Vec::new();
    // Running maxima of completion cycles.
    let mut max_all: u64 = 0;
    let mut max_flagged: u64 = 0;
    let mut max_per_class: HashMap<ClassId, u64> = HashMap::new();

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            RetiredEvent::FsStart(cid) => {
                fseq.push(cid);
                stats.max_scope_depth = stats.max_scope_depth.max(fseq.len());
            }
            RetiredEvent::FsEnd => {
                fseq.pop();
            }
            RetiredEvent::Mem {
                flagged, complete, ..
            } => {
                stats.mem_ops += 1;
                max_all = max_all.max(complete);
                if flagged {
                    max_flagged = max_flagged.max(complete);
                }
                let mut seen: HashSet<ClassId> = HashSet::new();
                for &cid in &fseq {
                    if seen.insert(cid) {
                        let slot = max_per_class.entry(cid).or_insert(0);
                        *slot = (*slot).max(complete);
                    }
                }
            }
            RetiredEvent::Fence { kind, issue } => {
                stats.fences_checked += 1;
                let bound = match kind {
                    FenceKind::Global => max_all,
                    FenceKind::Set => max_flagged,
                    FenceKind::Class => match fseq.last() {
                        Some(cid) => max_per_class.get(cid).copied().unwrap_or(0),
                        // Class fence outside any scope: hardware
                        // degrades to a full fence; the semantic scope
                        // is empty, so nothing to check.
                        None => 0,
                    },
                };
                if bound > issue {
                    return Err(Violation {
                        event_index: i,
                        kind,
                        fence_issue: issue,
                        latest_in_scope_complete: bound,
                    });
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_follows_fig5_rules() {
        let mut m = ClassScopeModel::new();
        let a = ClassId(0);
        let b = ClassId(1);
        m.enter(a);
        m.mem_op(1);
        m.enter(b);
        m.mem_op(2); // joins scopes of both A and B
        assert_eq!(m.scope_size(a), 2);
        assert_eq!(m.scope_size(b), 1);
        assert!(!m.fence_allowed(), "B's scope holds op 2");
        m.complete(2);
        assert!(m.fence_allowed(), "B's scope now empty");
        assert_eq!(m.scope_size(a), 1, "A still holds op 1");
        m.exit();
        assert!(!m.fence_allowed(), "back in A; op 1 outstanding");
        m.complete(1);
        assert!(m.fence_allowed());
        m.exit();
        assert_eq!(m.depth(), 0);
    }

    #[test]
    fn fence_with_empty_fseq_requires_everything_quiet() {
        let mut m = ClassScopeModel::new();
        m.enter(ClassId(0));
        m.mem_op(7);
        m.exit();
        assert!(!m.fence_allowed());
        m.complete(7);
        assert!(m.fence_allowed());
    }

    #[test]
    fn trace_check_accepts_correct_class_fence() {
        let a = ClassId(0);
        let events = [
            RetiredEvent::FsStart(a),
            RetiredEvent::Mem {
                id: 1,
                flagged: false,
                issue: 10,
                complete: 50,
            },
            RetiredEvent::Fence {
                kind: FenceKind::Class,
                issue: 50,
            },
            RetiredEvent::FsEnd,
        ];
        let stats = check_trace(&events).expect("conformant");
        assert_eq!(stats.fences_checked, 1);
        assert_eq!(stats.mem_ops, 1);
        assert_eq!(stats.max_scope_depth, 1);
    }

    #[test]
    fn trace_check_rejects_early_class_fence() {
        let a = ClassId(0);
        let events = [
            RetiredEvent::FsStart(a),
            RetiredEvent::Mem {
                id: 1,
                flagged: false,
                issue: 10,
                complete: 100,
            },
            RetiredEvent::Fence {
                kind: FenceKind::Class,
                issue: 60, // before completion at 100!
            },
            RetiredEvent::FsEnd,
        ];
        let v = check_trace(&events).unwrap_err();
        assert_eq!(v.latest_in_scope_complete, 100);
        assert_eq!(v.fence_issue, 60);
    }

    #[test]
    fn out_of_scope_ops_do_not_constrain_class_fence() {
        let a = ClassId(0);
        let events = [
            // Slow access *outside* the class scope:
            RetiredEvent::Mem {
                id: 1,
                flagged: false,
                issue: 0,
                complete: 1000,
            },
            RetiredEvent::FsStart(a),
            RetiredEvent::Mem {
                id: 2,
                flagged: false,
                issue: 5,
                complete: 20,
            },
            RetiredEvent::Fence {
                kind: FenceKind::Class,
                issue: 20, // fine: op 1 is out of scope
            },
            RetiredEvent::FsEnd,
        ];
        assert!(check_trace(&events).is_ok());
        // The same trace with a *global* fence violates:
        let mut g = events.to_vec();
        g[3] = RetiredEvent::Fence {
            kind: FenceKind::Global,
            issue: 20,
        };
        assert!(check_trace(&g).is_err());
    }

    #[test]
    fn set_fence_constrained_only_by_flagged_ops() {
        let events = [
            RetiredEvent::Mem {
                id: 1,
                flagged: false,
                issue: 0,
                complete: 500,
            },
            RetiredEvent::Mem {
                id: 2,
                flagged: true,
                issue: 0,
                complete: 30,
            },
            RetiredEvent::Fence {
                kind: FenceKind::Set,
                issue: 30,
            },
        ];
        assert!(check_trace(&events).is_ok());
        let mut bad = events.to_vec();
        bad[1] = RetiredEvent::Mem {
            id: 2,
            flagged: true,
            issue: 0,
            complete: 31,
        };
        assert!(check_trace(&bad).is_err());
    }

    #[test]
    fn nested_scopes_inner_fence_ignores_outer_only_ops() {
        let a = ClassId(0);
        let b = ClassId(1);
        let events = [
            RetiredEvent::FsStart(a),
            RetiredEvent::Mem {
                id: 1,
                flagged: false,
                issue: 0,
                complete: 900,
            }, // in A only
            RetiredEvent::FsStart(b),
            RetiredEvent::Mem {
                id: 2,
                flagged: false,
                issue: 0,
                complete: 10,
            }, // in A and B
            RetiredEvent::Fence {
                kind: FenceKind::Class,
                issue: 10,
            }, // B's fence: ok
            RetiredEvent::FsEnd,
            RetiredEvent::Fence {
                kind: FenceKind::Class,
                issue: 10,
            }, // A's fence: op 1 incomplete -> violation
        ];
        let v = check_trace(&events).unwrap_err();
        assert_eq!(v.event_index, 6);
    }
}
