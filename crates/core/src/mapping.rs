//! The cid → FSB-column mapping table (paper Fig. 7/8).
//!
//! On `fs_start cid` the table is consulted: a hit reuses the column;
//! a miss allocates a free class column, or — when all class columns
//! are taken — the designated *fallback* column, which multiple scopes
//! then share (strictly more conservative, still semantics-preserving;
//! paper "handling excessive scopes"). When the table itself has no
//! free row the caller falls back to the overflow counter.
//!
//! A mapping is invalidated only when its column has no outstanding
//! operations and the scope is no longer active (paper: "a mapping is
//! only removed when all memory accesses in the corresponding entry
//! have completed").

use crate::mask::{ScopeMask, MAX_FSB_ENTRIES};
use sfence_isa::ClassId;

/// Result of a mapping-table lookup for `fs_start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapResult {
    /// The scope is tracked by this FSB column.
    Column(u8),
    /// No room in the table: the scope goes untracked (overflow mode).
    TableFull,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    cid: ClassId,
    col: u8,
}

/// The mapping table.
///
/// Row membership is mirrored in per-column row counts and a cached
/// occupancy bitmask, so `column_in_use` and the reclamation scan are
/// O(1) word operations instead of row scans.
#[derive(Debug, Clone)]
pub struct MappingTable {
    entries: Vec<Entry>,
    cap: usize,
    /// Columns available for class scopes (`0..class_columns`); the
    /// set-scope column lives above these and is never allocated here.
    class_columns: u8,
    /// Rows mapped onto each column.
    col_rows: [u8; MAX_FSB_ENTRIES],
    /// Bit `i` set ⟺ `col_rows[i] > 0`.
    mapped: ScopeMask,
    /// Statistics.
    pub hits: u64,
    pub allocs: u64,
    pub fallback_allocs: u64,
    pub full_rejections: u64,
}

impl MappingTable {
    /// `cap` rows, allocating from `class_columns` FSB columns.
    pub fn new(cap: usize, class_columns: u8) -> Self {
        assert!(class_columns >= 1, "need at least one class column");
        assert!(cap <= u8::MAX as usize, "mapping table rows fit a u8");
        Self {
            entries: Vec::with_capacity(cap),
            cap,
            class_columns,
            col_rows: [0; MAX_FSB_ENTRIES],
            mapped: ScopeMask::EMPTY,
            hits: 0,
            allocs: 0,
            fallback_allocs: 0,
            full_rejections: 0,
        }
    }

    /// The designated shared column used once all class columns are
    /// occupied ("we simply choose one specific FSB entry").
    pub fn fallback_column(&self) -> u8 {
        self.class_columns - 1
    }

    /// Look up `cid`, allocating a column on a miss.
    pub fn lookup_or_alloc(&mut self, cid: ClassId) -> MapResult {
        if let Some(e) = self.entries.iter().find(|e| e.cid == cid) {
            self.hits += 1;
            return MapResult::Column(e.col);
        }
        if self.entries.len() == self.cap {
            self.full_rejections += 1;
            return MapResult::TableFull;
        }
        let col = match (0..self.class_columns).find(|&c| !self.column_in_use(c)) {
            Some(c) => c,
            None => {
                self.fallback_allocs += 1;
                self.fallback_column()
            }
        };
        self.allocs += 1;
        self.entries.push(Entry { cid, col });
        self.col_rows[col as usize] += 1;
        self.mapped = self.mapped.union(ScopeMask::column(col));
        MapResult::Column(col)
    }

    /// Is any cid currently mapped to `col`?
    #[inline]
    pub fn column_in_use(&self, col: u8) -> bool {
        self.mapped.contains(col)
    }

    /// Invalidate every mapping onto `col` (called by the scope unit
    /// when the column is quiescent and inactive).
    pub fn invalidate_column(&mut self, col: u8) {
        if !self.mapped.contains(col) {
            return;
        }
        self.entries.retain(|e| e.col != col);
        self.col_rows[col as usize] = 0;
        self.mapped.0 &= !(1 << col);
    }

    /// Bitmask of columns with at least one mapping (for reclamation).
    #[inline]
    pub fn mapped_mask(&self) -> ScopeMask {
        self.mapped
    }

    /// Columns currently mapped (for reclamation scans).
    pub fn mapped_columns(&self) -> impl Iterator<Item = u8> + '_ {
        let mut seen = [false; 16];
        self.entries.iter().filter_map(move |e| {
            if seen[e.col as usize] {
                None
            } else {
                seen[e.col as usize] = true;
                Some(e.col)
            }
        })
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_reuses_column() {
        let mut mt = MappingTable::new(8, 3);
        let a = mt.lookup_or_alloc(ClassId(1));
        let b = mt.lookup_or_alloc(ClassId(1));
        assert_eq!(a, b);
        assert_eq!(mt.hits, 1);
        assert_eq!(mt.allocs, 1);
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn distinct_cids_get_distinct_columns_until_exhausted() {
        let mut mt = MappingTable::new(8, 3);
        let c0 = mt.lookup_or_alloc(ClassId(10));
        let c1 = mt.lookup_or_alloc(ClassId(11));
        let c2 = mt.lookup_or_alloc(ClassId(12));
        assert_eq!(
            [c0, c1, c2],
            [
                MapResult::Column(0),
                MapResult::Column(1),
                MapResult::Column(2)
            ]
        );
        // Fourth scope shares the fallback column (2).
        let c3 = mt.lookup_or_alloc(ClassId(13));
        assert_eq!(c3, MapResult::Column(2));
        assert_eq!(mt.fallback_allocs, 1);
    }

    #[test]
    fn table_full_rejects() {
        let mut mt = MappingTable::new(2, 3);
        mt.lookup_or_alloc(ClassId(1));
        mt.lookup_or_alloc(ClassId(2));
        assert_eq!(mt.lookup_or_alloc(ClassId(3)), MapResult::TableFull);
        assert_eq!(mt.full_rejections, 1);
        // Existing mappings still hit.
        assert_eq!(mt.lookup_or_alloc(ClassId(2)), MapResult::Column(1));
    }

    #[test]
    fn invalidate_frees_column_for_reuse() {
        let mut mt = MappingTable::new(8, 2);
        mt.lookup_or_alloc(ClassId(1)); // col 0
        mt.lookup_or_alloc(ClassId(2)); // col 1
        mt.lookup_or_alloc(ClassId(3)); // fallback col 1
        assert!(mt.column_in_use(1));
        mt.invalidate_column(1); // removes cids 2 and 3
        assert!(!mt.column_in_use(1));
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.lookup_or_alloc(ClassId(4)), MapResult::Column(1));
    }

    #[test]
    fn mapped_columns_deduplicates() {
        let mut mt = MappingTable::new(8, 2);
        mt.lookup_or_alloc(ClassId(1)); // col 0
        mt.lookup_or_alloc(ClassId(2)); // col 1
        mt.lookup_or_alloc(ClassId(3)); // col 1 (fallback)
        let cols: Vec<u8> = mt.mapped_columns().collect();
        assert_eq!(cols, vec![0, 1]);
    }
}
