//! Hardware cost model (paper §VI-E).
//!
//! The paper argues the total overhead is "less than 80 bytes for each
//! core" for a 128-entry ROB, an 8-entry store buffer and 4 FSB bits.
//! This module computes the same accounting from a configuration so
//! the claim can be regenerated (the `hwcost` bench binary prints the
//! table).

use crate::unit::ScopeConfig;

/// Per-core storage overhead of the S-Fence hardware, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCost {
    /// FSB bits across all ROB entries.
    pub fsb_rob_bits: usize,
    /// FSB bits across all store-buffer entries.
    pub fsb_sb_bits: usize,
    /// FSS storage (each entry holds an FSB column index) plus the
    /// shadow copy FSS′ and the overflow counter.
    pub fss_bits: usize,
    /// Mapping table rows (cid + column index per row).
    pub mapping_bits: usize,
}

impl HwCost {
    pub fn total_bits(&self) -> usize {
        self.fsb_rob_bits + self.fsb_sb_bits + self.fss_bits + self.mapping_bits
    }

    pub fn total_bytes(&self) -> usize {
        self.total_bits().div_ceil(8)
    }
}

fn log2_ceil(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Compute the per-core cost for a scope configuration and pipeline
/// geometry. `cid_bits` is the width of the class-id field carried by
/// `fs_start`/`fs_end` (the paper does not fix it; 16 is generous).
pub fn hw_cost(
    cfg: &ScopeConfig,
    rob_entries: usize,
    sb_entries: usize,
    cid_bits: usize,
) -> HwCost {
    let col_bits = log2_ceil(cfg.fsb_entries);
    let overflow_counter_bits = 16;
    HwCost {
        fsb_rob_bits: rob_entries * cfg.fsb_entries,
        fsb_sb_bits: sb_entries * cfg.fsb_entries,
        fss_bits: 2 * (cfg.fss_entries * col_bits) + overflow_counter_bits,
        mapping_bits: cfg.mapping_entries * (cid_bits + col_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_under_80_bytes() {
        // 128-entry ROB, 8-entry SB, 4 FSB bits (paper §VI-E).
        let cost = hw_cost(&ScopeConfig::default(), 128, 8, 8);
        assert_eq!(cost.fsb_rob_bits, 512);
        assert_eq!(cost.fsb_sb_bits, 32);
        assert!(
            cost.total_bytes() < 80,
            "paper claims < 80 bytes; got {}",
            cost.total_bytes()
        );
    }

    #[test]
    fn cost_scales_with_rob() {
        let small = hw_cost(&ScopeConfig::default(), 64, 8, 16);
        let large = hw_cost(&ScopeConfig::default(), 256, 8, 16);
        assert!(large.total_bits() > small.total_bits());
        assert_eq!(large.fsb_rob_bits, 4 * small.fsb_rob_bits);
    }

    #[test]
    fn log2_ceil_sane() {
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(16), 4);
    }
}
