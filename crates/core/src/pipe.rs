//! The opt-in pipeline event trace.
//!
//! Where [`RetiredEvent`](crate::RetiredEvent) records the
//! *architectural* history (squashed work never appears, used by the
//! conformance checker), a [`PipeEvent`] records *microarchitectural*
//! activity: every instruction entering the ROB — wrong-path fetches
//! included — beginning execution and retiring, fence dispatch and
//! completion, the scope unit's degrade/overflow/recovery paths, and
//! memory accesses that walked the shared L2/directory.
//!
//! Events carry the emitting core and cycle; the simulator is
//! deterministic, so a fixed workload + config produces the same event
//! stream on every run regardless of host thread count. `sfence-obs`
//! renders the stream as Chrome `trace_event` JSON.
//!
//! Emission is gated by `CoreConfig::pipe_trace` (default off) behind
//! a plain bool check, so the per-cycle hot path pays one predictable
//! branch and no allocation when tracing is disabled.

/// Where a directory walk was satisfied. Mirrors the memory
/// hierarchy's `AccessOutcome` minus the plain L1 hits that never
/// reach the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkKind {
    /// L1 hit on a shared line; the write invalidated remote copies.
    Upgrade,
    /// L1 miss satisfied by the shared L2.
    L2Hit,
    /// L1 miss served by a writeback from a remote dirty L1.
    RemoteDirty,
    /// Missed everywhere; fetched from memory.
    MemMiss,
}

impl WalkKind {
    pub fn name(self) -> &'static str {
        match self {
            WalkKind::Upgrade => "upgrade",
            WalkKind::L2Hit => "l2_hit",
            WalkKind::RemoteDirty => "remote_dirty",
            WalkKind::MemMiss => "mem_miss",
        }
    }
}

/// What happened. Sequence numbers identify ROB entries (unique per
/// core, never reused after a squash); fences are identified by their
/// fetch `pc` because a blocked fence only receives its sequence
/// number once its wait clears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeKind {
    /// Instruction entered the ROB (front-end dispatch, predicted
    /// path — squashed wrong-path fetches appear too).
    Fetch { seq: u64, pc: u64 },
    /// Instruction began executing (functional unit or memory).
    Issue { seq: u64, pc: u64 },
    /// Instruction retired from the ROB head.
    Retire { seq: u64, pc: u64 },
    /// A fence computed its wait condition at the issue stage.
    /// `scoped` = the scope unit answered with a column mask rather
    /// than a drain-everything wait.
    FenceDispatch { pc: u64, scoped: bool },
    /// The fence's wait condition cleared (issue unblocked, or the
    /// speculative fence was allowed to retire).
    FenceComplete { pc: u64 },
    /// A scoped fence degraded to a traditional full fence.
    Degrade { pc: u64 },
    /// The fence scope stack overflowed on a scope entry.
    Overflow { seq: u64 },
    /// The scope unit recovered speculative scope state after a
    /// squash (misprediction or coherence replay) from `from_seq`.
    Recovery { from_seq: u64 },
    /// A memory access that walked the L2/directory.
    DirWalk {
        addr: u64,
        write: bool,
        walk: WalkKind,
        latency: u64,
    },
}

impl PipeKind {
    /// Stable event name used by the trace exporter.
    pub fn name(&self) -> &'static str {
        match self {
            PipeKind::Fetch { .. } => "fetch",
            PipeKind::Issue { .. } => "issue",
            PipeKind::Retire { .. } => "retire",
            PipeKind::FenceDispatch { .. } => "fence_dispatch",
            PipeKind::FenceComplete { .. } => "fence_complete",
            PipeKind::Degrade { .. } => "degrade",
            PipeKind::Overflow { .. } => "overflow",
            PipeKind::Recovery { .. } => "recovery",
            PipeKind::DirWalk { .. } => "dir_walk",
        }
    }
}

/// One pipeline event: which core, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    pub core: u32,
    pub cycle: u64,
    pub kind: PipeKind,
}
