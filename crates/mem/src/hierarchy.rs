//! The two-level cache hierarchy with MESI-lite invalidation
//! coherence and the Table III latency model.
//!
//! Geometry and latencies default to the paper's architectural
//! parameters: private 32 KB 4-way L1s (2-cycle), a shared 1 MB 8-way
//! L2 (10-cycle), and 300-cycle memory. Coherence is an invalidation
//! protocol over a full-map directory: writes obtain exclusive
//! ownership, invalidating other cores' L1 copies; reads downgrade a
//! remote dirty owner. The protocol is resolved atomically at access
//! time (no transient states) and only affects *timing* — functional
//! data lives in the machine's flat memory. The L2 is inclusive of all
//! L1s.

use crate::cache::{CacheGeometry, TagArray};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the directory's line-number keys: lines
/// are small trusted integers, so the default SipHash buys nothing.
/// Hash order is never observable (the directory is only iterated by
/// the order-insensitive invariant checker).
#[derive(Debug, Clone, Copy, Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("line keys hash through write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiply + rotate: enough avalanche for dense keys.
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
}

type LineMap = HashMap<u64, DirEntry, BuildHasherDefault<LineHasher>>;

/// Memory-system configuration (paper Table III defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    pub line_bytes: usize,
    pub l1_size: usize,
    pub l1_ways: usize,
    pub l1_latency: u64,
    pub l2_size: usize,
    pub l2_ways: usize,
    pub l2_latency: u64,
    /// Round-trip latency to memory (the Fig. 15 sweep parameter).
    pub mem_latency: u64,
    /// Extra cycles to fetch a line that is dirty in a remote L1
    /// (writeback + transfer through the L2).
    pub remote_dirty_penalty: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            line_bytes: 64,
            l1_size: 32 * 1024,
            l1_ways: 4,
            l1_latency: 2,
            l2_size: 1024 * 1024,
            l2_ways: 8,
            l2_latency: 10,
            mem_latency: 300,
            remote_dirty_penalty: 10,
        }
    }
}

/// How an access was satisfied (for stats and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// L1 hit with sufficient permission.
    L1Hit,
    /// L1 hit on a shared line that a write had to upgrade
    /// (invalidating remote copies).
    Upgrade,
    /// L1 miss satisfied by the shared L2.
    L2Hit,
    /// L1 miss satisfied by a remote L1 holding the line dirty.
    RemoteDirty,
    /// Missed everywhere: fetched from memory.
    MemMiss,
}

/// Per-core cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreMemStats {
    pub accesses: u64,
    pub l1_hits: u64,
    pub upgrades: u64,
    pub l2_hits: u64,
    pub remote_dirty: u64,
    pub mem_misses: u64,
    pub invalidations_received: u64,
}

#[derive(Debug, Clone, Default)]
struct DirEntry {
    /// Bitmask of cores whose L1 holds the line.
    sharers: u64,
    /// Core holding the line dirty, if any (must be a sharer).
    dirty_owner: Option<usize>,
}

/// The shared memory system: per-core L1 tag arrays, one L2, one
/// directory.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1: Vec<TagArray>,
    l2: TagArray,
    dir: LineMap,
    stats: Vec<CoreMemStats>,
    /// Words per cache line (addresses are word-granular).
    words_per_line: u64,
    /// Per-core most-recently-accessed line (`u64::MAX` = none): a
    /// read of this line is an L1 hit with no LRU or directory side
    /// effects, so `access` can skip both probes. Must be cleared
    /// whenever the core's L1 copy is invalidated.
    mru: Vec<u64>,
}

impl MemorySystem {
    pub fn new(num_cores: usize, cfg: MemConfig) -> Self {
        let l1_geom = CacheGeometry {
            size_bytes: cfg.l1_size,
            ways: cfg.l1_ways,
            line_bytes: cfg.line_bytes,
        };
        let l2_geom = CacheGeometry {
            size_bytes: cfg.l2_size,
            ways: cfg.l2_ways,
            line_bytes: cfg.line_bytes,
        };
        Self {
            cfg,
            l1: (0..num_cores).map(|_| TagArray::new(l1_geom)).collect(),
            l2: TagArray::new(l2_geom),
            dir: LineMap::default(),
            stats: vec![CoreMemStats::default(); num_cores],
            words_per_line: (cfg.line_bytes / 8) as u64,
            mru: vec![u64::MAX; num_cores],
        }
    }

    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    #[inline]
    pub fn line_of(&self, addr: usize) -> u64 {
        addr as u64 / self.words_per_line
    }

    /// Perform one access for `core`; returns its latency and outcome.
    pub fn access(&mut self, core: usize, addr: usize, write: bool) -> (u64, AccessOutcome) {
        let line = self.line_of(addr);
        self.stats[core].accesses += 1;

        // MRU filter: re-reading the line this core touched last is an
        // L1 hit whose slow path mutates nothing (the line is already
        // MRU in its set and a read hit leaves the directory alone).
        if !write && self.mru[core] == line {
            self.stats[core].l1_hits += 1;
            return (self.cfg.l1_latency, AccessOutcome::L1Hit);
        }

        if self.l1[core].lookup(line) {
            let entry = self.dir.entry(line).or_default();
            debug_assert!(entry.sharers & (1 << core) != 0, "directory out of sync");
            if !write {
                self.stats[core].l1_hits += 1;
                self.mru[core] = line;
                return (self.cfg.l1_latency, AccessOutcome::L1Hit);
            }
            let exclusive = entry.sharers == (1 << core);
            if exclusive {
                entry.dirty_owner = Some(core);
                self.stats[core].l1_hits += 1;
                self.mru[core] = line;
                return (self.cfg.l1_latency, AccessOutcome::L1Hit);
            }
            // Upgrade: invalidate remote copies through the L2.
            self.invalidate_remote_sharers(line, core);
            let entry = self.dir.entry(line).or_default();
            entry.sharers = 1 << core;
            entry.dirty_owner = Some(core);
            self.stats[core].upgrades += 1;
            self.mru[core] = line;
            return (
                self.cfg.l1_latency + self.cfg.l2_latency,
                AccessOutcome::Upgrade,
            );
        }

        // L1 miss. Where does the line come from?
        let remote_dirty = self
            .dir
            .get(&line)
            .and_then(|e| e.dirty_owner)
            .filter(|&o| o != core);
        let (mut latency, outcome) = if let Some(_owner) = remote_dirty {
            // Writeback from the remote L1 through the L2, then fetch.
            (
                self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.remote_dirty_penalty,
                AccessOutcome::RemoteDirty,
            )
        } else if self.l2.lookup(line) {
            (
                self.cfg.l1_latency + self.cfg.l2_latency,
                AccessOutcome::L2Hit,
            )
        } else {
            (
                self.cfg.l1_latency + self.cfg.l2_latency + self.cfg.mem_latency,
                AccessOutcome::MemMiss,
            )
        };
        match outcome {
            AccessOutcome::RemoteDirty => self.stats[core].remote_dirty += 1,
            AccessOutcome::L2Hit => self.stats[core].l2_hits += 1,
            AccessOutcome::MemMiss => self.stats[core].mem_misses += 1,
            _ => unreachable!(),
        }

        if write {
            // Read-for-ownership: every other copy is invalidated.
            self.invalidate_remote_sharers(line, core);
            latency = latency.max(self.cfg.l1_latency + self.cfg.l2_latency);
        } else if let Some(owner) = remote_dirty {
            // Downgrade the dirty owner to shared (it keeps the line).
            if let Some(e) = self.dir.get_mut(&line) {
                debug_assert_eq!(e.dirty_owner, Some(owner));
                e.dirty_owner = None;
            }
        }

        // Fill L2 (inclusive) and L1, handling evictions.
        if !self.l2.contains(line) {
            if let Some(victim) = self.l2.insert(line) {
                self.evict_from_l2(victim);
            }
        }
        if let Some(victim) = self.l1[core].insert(line) {
            self.drop_l1_copy(victim, core);
        }
        let entry = self.dir.entry(line).or_default();
        entry.sharers |= 1 << core;
        entry.dirty_owner = if write { Some(core) } else { entry.dirty_owner };
        self.mru[core] = line;
        (latency, outcome)
    }

    /// Invalidate every L1 copy of `line` except `keep`'s.
    fn invalidate_remote_sharers(&mut self, line: u64, keep: usize) {
        let Some(entry) = self.dir.get_mut(&line) else {
            return;
        };
        let sharers = entry.sharers & !(1 << keep);
        entry.sharers &= 1 << keep;
        if entry.dirty_owner.is_some_and(|o| o != keep) {
            entry.dirty_owner = None;
        }
        for c in 0..self.l1.len() {
            if sharers & (1 << c) != 0 {
                self.l1[c].invalidate(line);
                self.stats[c].invalidations_received += 1;
                if self.mru[c] == line {
                    self.mru[c] = u64::MAX;
                }
            }
        }
    }

    /// An L1 eviction: the core silently drops its copy.
    fn drop_l1_copy(&mut self, line: u64, core: usize) {
        if let Some(entry) = self.dir.get_mut(&line) {
            entry.sharers &= !(1 << core);
            if entry.dirty_owner == Some(core) {
                entry.dirty_owner = None; // writeback to L2 (timing folded into later misses)
            }
            if entry.sharers == 0 {
                self.dir.remove(&line);
            }
        }
    }

    /// An L2 eviction: inclusivity forces all L1 copies out.
    fn evict_from_l2(&mut self, line: u64) {
        if let Some(entry) = self.dir.remove(&line) {
            for c in 0..self.l1.len() {
                if entry.sharers & (1 << c) != 0 {
                    self.l1[c].invalidate(line);
                    self.stats[c].invalidations_received += 1;
                    if self.mru[c] == line {
                        self.mru[c] = u64::MAX;
                    }
                }
            }
        }
    }

    pub fn core_stats(&self, core: usize) -> &CoreMemStats {
        &self.stats[core]
    }

    /// Aggregate stats across cores.
    pub fn total_stats(&self) -> CoreMemStats {
        let mut t = CoreMemStats::default();
        for s in &self.stats {
            t.accesses += s.accesses;
            t.l1_hits += s.l1_hits;
            t.upgrades += s.upgrades;
            t.l2_hits += s.l2_hits;
            t.remote_dirty += s.remote_dirty;
            t.mem_misses += s.mem_misses;
            t.invalidations_received += s.invalidations_received;
        }
        t
    }

    /// Invariant check used by property tests: the directory and tag
    /// arrays agree, and the L2 includes every L1 line.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, l1) in self.l1.iter().enumerate() {
            for line in l1.resident_lines() {
                if !self.l2.contains(line) {
                    return Err(format!("L1[{c}] line {line} not in inclusive L2"));
                }
                let e = self
                    .dir
                    .get(&line)
                    .ok_or_else(|| format!("L1[{c}] line {line} missing from directory"))?;
                if e.sharers & (1 << c) == 0 {
                    return Err(format!("directory misses sharer {c} of line {line}"));
                }
            }
        }
        for (&line, e) in &self.dir {
            for c in 0..self.l1.len() {
                if e.sharers & (1 << c) != 0 && !self.l1[c].contains(line) {
                    return Err(format!(
                        "directory claims {c} shares line {line}; L1 disagrees"
                    ));
                }
            }
            if let Some(o) = e.dirty_owner {
                if e.sharers & (1 << o) == 0 {
                    return Err(format!("dirty owner {o} of line {line} is not a sharer"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(cores, MemConfig::default())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut m = sys(1);
        let (lat, out) = m.access(0, 100, false);
        assert_eq!(out, AccessOutcome::MemMiss);
        assert_eq!(lat, 2 + 10 + 300);
        let (lat, out) = m.access(0, 101, false); // same line
        assert_eq!(out, AccessOutcome::L1Hit);
        assert_eq!(lat, 2);
        m.check_invariants().unwrap();
    }

    #[test]
    fn l2_hit_after_remote_read() {
        let mut m = sys(2);
        m.access(0, 100, false); // memory -> L2 + L1[0]
        let (lat, out) = m.access(1, 100, false);
        assert_eq!(out, AccessOutcome::L2Hit);
        assert_eq!(lat, 12);
        m.check_invariants().unwrap();
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut m = sys(2);
        m.access(0, 100, false);
        m.access(1, 100, false);
        // Core 1 writes: core 0's copy must go.
        let (_, out) = m.access(1, 100, true);
        assert_eq!(out, AccessOutcome::Upgrade);
        assert_eq!(m.core_stats(0).invalidations_received, 1);
        // Core 0 reads again: misses L1; the line is dirty in core 1's
        // L1, so it is served by a writeback-and-transfer.
        let (_, out) = m.access(0, 100, false);
        assert_eq!(out, AccessOutcome::RemoteDirty);
        m.check_invariants().unwrap();
    }

    #[test]
    fn exclusive_write_hit_is_cheap() {
        let mut m = sys(2);
        m.access(0, 100, true); // RFO miss
        let (lat, out) = m.access(0, 100, true);
        assert_eq!(out, AccessOutcome::L1Hit);
        assert_eq!(lat, 2);
    }

    #[test]
    fn remote_dirty_read_downgrades() {
        let mut m = sys(2);
        m.access(0, 100, true); // core 0 holds dirty
        let (lat, out) = m.access(1, 100, false);
        assert_eq!(out, AccessOutcome::RemoteDirty);
        assert_eq!(lat, 2 + 10 + 10);
        // Now shared: core 0 writing again must upgrade.
        let (_, out) = m.access(0, 100, true);
        assert_eq!(out, AccessOutcome::Upgrade);
        assert_eq!(m.core_stats(1).invalidations_received, 1);
        m.check_invariants().unwrap();
    }

    #[test]
    fn remote_dirty_write_takes_ownership() {
        let mut m = sys(2);
        m.access(0, 100, true);
        let (_, out) = m.access(1, 100, true);
        assert_eq!(out, AccessOutcome::RemoteDirty);
        assert_eq!(m.core_stats(0).invalidations_received, 1);
        // Core 1 is now the exclusive dirty owner.
        let (lat, out) = m.access(1, 100, true);
        assert_eq!((lat, out), (2, AccessOutcome::L1Hit));
        m.check_invariants().unwrap();
    }

    #[test]
    fn capacity_evictions_keep_invariants() {
        let mut m = MemorySystem::new(
            2,
            MemConfig {
                l1_size: 256,
                l1_ways: 2,
                l2_size: 1024,
                l2_ways: 2,
                ..MemConfig::default()
            },
        );
        // Touch many distinct lines from both cores.
        for i in 0..64 {
            m.access(i % 2, i * 8, i % 3 == 0);
            m.check_invariants().unwrap();
        }
        let t = m.total_stats();
        assert!(t.mem_misses > 0);
        assert_eq!(t.accesses, 64);
    }

    #[test]
    fn latency_sweep_parameter() {
        for lat in [200u64, 300, 500] {
            let mut m = MemorySystem::new(
                1,
                MemConfig {
                    mem_latency: lat,
                    ..MemConfig::default()
                },
            );
            let (l, _) = m.access(0, 64, false);
            assert_eq!(l, 12 + lat);
        }
    }
}
