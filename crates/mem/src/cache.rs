//! Set-associative tag arrays with true-LRU replacement.
//!
//! The memory system is a *timing* model: caches track which lines are
//! resident to classify accesses (hit/miss/remote) and charge
//! latencies; data itself lives in the machine's flat memory and is
//! read/written at completion time, the same separation SESC uses.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheGeometry {
    pub fn num_sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0, "cache too small for its ways/line size");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// A tag array: per-set MRU-ordered lists of resident line numbers.
#[derive(Debug, Clone)]
pub struct TagArray {
    sets: Vec<Vec<u64>>,
    ways: usize,
    set_mask: u64,
}

impl TagArray {
    pub fn new(geom: CacheGeometry) -> Self {
        let num_sets = geom.num_sets();
        Self {
            sets: vec![Vec::with_capacity(geom.ways); num_sets],
            ways: geom.ways,
            set_mask: (num_sets - 1) as u64,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Is the line resident? Promotes it to MRU on a hit.
    pub fn lookup(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            let l = ways.remove(pos);
            ways.insert(0, l);
            true
        } else {
            false
        }
    }

    /// Residency check without touching LRU state.
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Insert a line (must not already be resident); returns the
    /// evicted LRU line if the set was full.
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        let set = self.set_of(line);
        let ways_cap = self.ways;
        let ways = &mut self.sets[set];
        debug_assert!(!ways.contains(&line), "inserting resident line");
        let evicted = if ways.len() == ways_cap {
            ways.pop()
        } else {
            None
        };
        ways.insert(0, line);
        evicted
    }

    /// Remove a line if resident; returns whether it was.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&l| l == line) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of resident lines (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// All resident lines (inclusivity checks in tests).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagArray {
        // 2 sets x 2 ways, 64B lines.
        TagArray::new(CacheGeometry {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let g = CacheGeometry {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 64,
        };
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn hit_after_insert() {
        let mut t = small();
        assert!(!t.lookup(4));
        assert_eq!(t.insert(4), None);
        assert!(t.lookup(4));
        assert!(t.contains(4));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t = small();
        // Lines 0, 2, 4 all map to set 0 (even lines).
        t.insert(0);
        t.insert(2);
        t.lookup(0); // 0 is now MRU, 2 is LRU
        assert_eq!(t.insert(4), Some(2));
        assert!(t.contains(0));
        assert!(!t.contains(2));
        assert!(t.contains(4));
    }

    #[test]
    fn sets_are_independent() {
        let mut t = small();
        t.insert(0); // set 0
        t.insert(1); // set 1
        t.insert(2); // set 0
        t.insert(3); // set 1
        assert_eq!(t.insert(4), Some(0)); // evicts from set 0 only
        assert!(t.contains(1));
        assert!(t.contains(3));
    }

    #[test]
    fn invalidate_removes() {
        let mut t = small();
        t.insert(6);
        assert!(t.invalidate(6));
        assert!(!t.invalidate(6));
        assert!(!t.contains(6));
    }
}
