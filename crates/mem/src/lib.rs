//! # sfence-mem
//!
//! The memory-system substrate of the Fence Scoping simulator: private
//! L1 tag arrays, a shared inclusive L2, a full-map invalidation
//! directory (MESI-lite), and the Table III latency model. Timing
//! only — functional data lives in the machine's flat word memory.

pub mod cache;
pub mod hierarchy;

pub use cache::{CacheGeometry, TagArray};
pub use hierarchy::{AccessOutcome, CoreMemStats, MemConfig, MemorySystem};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Invariants survive arbitrary access sequences.
        #[test]
        fn invariants_hold_under_random_traffic(
            ops in proptest::collection::vec((0usize..4, 0usize..4096, any::<bool>()), 1..200)
        ) {
            let mut m = MemorySystem::new(4, MemConfig {
                l1_size: 512,
                l1_ways: 2,
                l2_size: 4096,
                l2_ways: 4,
                ..MemConfig::default()
            });
            for (core, addr, write) in ops {
                m.access(core, addr, write);
                prop_assert!(m.check_invariants().is_ok());
            }
        }

        /// Latency is always one of the architectural patterns.
        #[test]
        fn latencies_come_from_the_model(
            ops in proptest::collection::vec((0usize..2, 0usize..512, any::<bool>()), 1..100)
        ) {
            let cfg = MemConfig::default();
            let mut m = MemorySystem::new(2, cfg);
            let allowed = [
                cfg.l1_latency,
                cfg.l1_latency + cfg.l2_latency,
                cfg.l1_latency + cfg.l2_latency + cfg.remote_dirty_penalty,
                cfg.l1_latency + cfg.l2_latency + cfg.mem_latency,
            ];
            for (core, addr, write) in ops {
                let (lat, _) = m.access(core, addr, write);
                prop_assert!(allowed.contains(&lat), "unexpected latency {}", lat);
            }
        }

        /// Re-touching the same line from the same core is always an
        /// L1 hit for reads.
        #[test]
        fn second_read_hits(addr in 0usize..100_000) {
            let mut m = MemorySystem::new(1, MemConfig::default());
            m.access(0, addr, false);
            let (lat, out) = m.access(0, addr, false);
            prop_assert_eq!(out, AccessOutcome::L1Hit);
            prop_assert_eq!(lat, MemConfig::default().l1_latency);
        }
    }
}
