//! # sfence-mem
//!
//! The memory-system substrate of the Fence Scoping simulator: private
//! L1 tag arrays, a shared inclusive L2, a full-map invalidation
//! directory (MESI-lite), and the Table III latency model. Timing
//! only — functional data lives in the machine's flat word memory.

pub mod cache;
pub mod hierarchy;

pub use cache::{CacheGeometry, TagArray};
pub use hierarchy::{AccessOutcome, CoreMemStats, MemConfig, MemorySystem};

#[cfg(test)]
mod prop_tests {
    use super::*;

    /// Tiny deterministic xorshift64* PRNG: the container has no
    /// property-testing crate, so random traffic is reproducible from
    /// the per-case seed printed on failure.
    struct Rng(u64);

    impl Rng {
        fn new(seed: u64) -> Rng {
            Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Invariants survive arbitrary access sequences.
    #[test]
    fn invariants_hold_under_random_traffic() {
        for seed in 0..16u64 {
            let mut rng = Rng::new(seed + 1);
            let mut m = MemorySystem::new(
                4,
                MemConfig {
                    l1_size: 512,
                    l1_ways: 2,
                    l2_size: 4096,
                    l2_ways: 4,
                    ..MemConfig::default()
                },
            );
            for _ in 0..1 + rng.below(200) {
                let (core, addr, write) = (rng.below(4), rng.below(4096), rng.below(2) == 1);
                m.access(core, addr, write);
                assert!(m.check_invariants().is_ok(), "seed {seed}");
            }
        }
    }

    /// Latency is always one of the architectural patterns.
    #[test]
    fn latencies_come_from_the_model() {
        let cfg = MemConfig::default();
        let allowed = [
            cfg.l1_latency,
            cfg.l1_latency + cfg.l2_latency,
            cfg.l1_latency + cfg.l2_latency + cfg.remote_dirty_penalty,
            cfg.l1_latency + cfg.l2_latency + cfg.mem_latency,
        ];
        for seed in 0..16u64 {
            let mut rng = Rng::new(seed + 101);
            let mut m = MemorySystem::new(2, cfg);
            for _ in 0..1 + rng.below(100) {
                let (core, addr, write) = (rng.below(2), rng.below(512), rng.below(2) == 1);
                let (lat, _) = m.access(core, addr, write);
                assert!(
                    allowed.contains(&lat),
                    "seed {seed}: unexpected latency {lat}"
                );
            }
        }
    }

    /// Re-touching the same line from the same core is always an
    /// L1 hit for reads.
    #[test]
    fn second_read_hits() {
        let mut rng = Rng::new(7);
        for _ in 0..64 {
            let addr = rng.below(100_000);
            let mut m = MemorySystem::new(1, MemConfig::default());
            m.access(0, addr, false);
            let (lat, out) = m.access(0, addr, false);
            assert_eq!(out, AccessOutcome::L1Hit);
            assert_eq!(lat, MemConfig::default().l1_latency);
        }
    }
}
