//! Integration tests of the service telemetry layer: the structured
//! event log is written and parseable, latency histograms with
//! percentile summaries ride the `status` frame, the flight recorder
//! answers (token-gated) `debug_dump` probes, the metrics history
//! appends parseable snapshots, a zero-campaign daemon says so
//! explicitly — and, with every sink turned on, the merged campaign
//! output is still byte-identical to a solo run.

use sfence_dist::{
    client, fetch_dump, fetch_status, render_campaign_table, run_server, work, ExperimentSpec,
    ServerOpts, WorkerOpts,
};
use sfence_harness::{Axis, BackendId, Experiment, SweepResult};
use sfence_obs::log::{Event, EventLog, LogLevel};
use sfence_obs::{MetricValue, MetricsReport};
use sfence_sim::FenceConfig;
use sfence_workloads::WorkloadParams;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn registry(name: &str) -> Option<Experiment> {
    match name {
        "tiny" => Some(
            Experiment::new("tiny")
                .workloads(["dekker", "msn"], WorkloadParams::small())
                .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
                .axis(Axis::Level(vec![1, 2]))
                .backend(BackendId::Functional),
        ),
        _ => None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sfence-telemetry-test-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_server_opts() -> ServerOpts {
    ServerOpts {
        default_lease: 2,
        lease_ttl_ms: 10_000,
        poll_ms: 10,
        wait_ms: 10,
        quiet: true,
        ..ServerOpts::default()
    }
}

fn test_worker_opts(name: &str) -> WorkerOpts {
    WorkerOpts {
        threads: 1,
        heartbeat_ms: 50,
        name: Some(name.to_string()),
        read_timeout_ms: 20,
        max_idle_windows: 500,
        quiet: true,
        ..WorkerOpts::default()
    }
}

fn fast_wait_opts(token: Option<&str>) -> client::WaitOpts {
    let mut wait = client::WaitOpts {
        poll_ms: 20,
        retries: 100,
        retry_base_ms: 20,
        retry_cap_ms: 200,
        ..Default::default()
    };
    wait.client.token = token.map(str::to_string);
    wait
}

/// Run one full `tiny` campaign through a daemon configured with
/// `opts`, returning the merged rows and whatever the caller probes
/// while the daemon is still up (`probe` runs after completion,
/// before shutdown).
fn run_campaign_with<T>(
    opts: ServerOpts,
    token: Option<&str>,
    probe: impl FnOnce(&str) -> T,
) -> (Vec<sfence_harness::IndexedRow>, T) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        shutdown: Some(Arc::clone(&shutdown)),
        token: token.map(str::to_string),
        ..opts
    };
    std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        let worker = {
            let addr = addr.clone();
            s.spawn(move || {
                let wopts = WorkerOpts {
                    token: token.map(str::to_string),
                    ..test_worker_opts("tw")
                };
                work(&addr, registry, &wopts)
            })
        };
        let wait = fast_wait_opts(token);
        let ticket = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap();
        let rows = client::wait_for_campaign(&addr, &ticket.campaign, &wait, |_, _| {}).unwrap();
        let probed = probe(&addr);
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().expect("server exits cleanly");
        worker.join().unwrap().expect("worker exits cleanly");
        (rows, probed)
    })
}

#[test]
fn event_log_file_is_parseable_and_covers_the_campaign_lifecycle() {
    let dir = scratch_dir("eventlog");
    let log_path = dir.join("events.jsonl");
    let log = Arc::new(
        EventLog::with_file("dist", None, LogLevel::Debug, &log_path, 1 << 20, 2).unwrap(),
    );
    let opts = ServerOpts {
        log: Some(Arc::clone(&log)),
        ..test_server_opts()
    };
    let (_, ()) = run_campaign_with(opts, None, |_| ());

    let text = std::fs::read_to_string(&log_path).unwrap();
    let events: Vec<Event> = text
        .lines()
        .map(|l| Event::parse_line(l).expect("every line parses"))
        .collect();
    assert!(!events.is_empty());
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "monotonic seq: {seqs:?}"
    );
    let kinds: Vec<&str> = events.iter().map(|e| e.event.as_str()).collect();
    for expected in ["worker_ready", "submit", "lease", "complete"] {
        assert!(
            kinds.contains(&expected),
            "missing {expected:?} in {kinds:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_frame_carries_latency_histograms_with_percentiles() {
    let (rows, report) = run_campaign_with(test_server_opts(), None, |addr| {
        fetch_status(addr, Duration::from_secs(5), None).unwrap()
    });
    assert_eq!(rows.len(), 8);

    // The lease-grant histogram is observed on every grant, labeled
    // both per-campaign and per-worker. The worker key carries the
    // connection id (`tw#<conn>`), so discover it from the report.
    let worker_keys = report.label_values("worker");
    let worker_key = worker_keys
        .iter()
        .find(|k| k.starts_with("tw#"))
        .unwrap_or_else(|| panic!("no tw worker series in {worker_keys:?}"))
        .to_string();
    for labels in [[("campaign", "c1")], [("worker", worker_key.as_str())]] {
        let m = report
            .get("lease_grant_ms", &labels)
            .unwrap_or_else(|| panic!("lease_grant_ms{labels:?} missing"));
        match &m.value {
            MetricValue::Histogram(h) => {
                assert!(h.count > 0);
                assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
    // Worker-measured per-cell wall time: one observation per cell.
    match &report
        .get("cell_wall_ms", &[("campaign", "c1")])
        .expect("cell_wall_ms present")
        .value
    {
        MetricValue::Histogram(h) => assert_eq!(h.count, 8, "one observation per cell"),
        other => panic!("expected histogram, got {other:?}"),
    }
    assert!(report
        .get("frame_handle_ms", &[("frame", "request")])
        .is_some());
    assert!(report
        .get("worker_straggler", &[("worker", worker_key.as_str())])
        .is_some());
    // The human rendering spells out the percentile summary.
    assert!(report.render().contains("p99="), "{}", report.render());
}

#[test]
fn dump_frame_returns_the_flight_recorder_and_respects_the_token() {
    let (_, ()) = run_campaign_with(test_server_opts(), Some("s3cret"), |addr| {
        let (events, _dropped) = fetch_dump(addr, Duration::from_secs(5), Some("s3cret")).unwrap();
        assert!(!events.is_empty());
        let kinds: Vec<&str> = events.iter().map(|e| e.event.as_str()).collect();
        assert!(kinds.contains(&"complete"), "{kinds:?}");
        // The ring records every level, so debug events appear even
        // though no file or stderr sink asked for them.
        assert!(kinds.contains(&"lease"), "{kinds:?}");
        let err = fetch_dump(addr, Duration::from_secs(5), Some("wrong")).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        let err = fetch_dump(addr, Duration::from_secs(5), None).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
    });
}

#[test]
fn zero_campaign_daemon_reports_itself_explicitly() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };
    let report = std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        let report = fetch_status(&addr, Duration::from_secs(5), None).unwrap();
        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
        report
    });
    match report.get("campaigns_known", &[]).map(|m| &m.value) {
        Some(MetricValue::Gauge(g)) => assert_eq!(*g, 0.0),
        other => panic!("campaigns_known should be a gauge, got {other:?}"),
    }
    assert_eq!(render_campaign_table(&report), "no active campaigns\n\n");
}

#[test]
fn merged_output_is_byte_identical_with_every_telemetry_sink_on() {
    let tiny = registry("tiny").unwrap();
    let expected = tiny.run_parallel().to_json_string();
    let dir = scratch_dir("fullsinks");
    let log_path = dir.join("events.jsonl");
    let metrics_path = dir.join("metrics.jsonl");
    let log = Arc::new(
        EventLog::with_file("dist", None, LogLevel::Debug, &log_path, 1 << 20, 2).unwrap(),
    );
    let opts = ServerOpts {
        log: Some(log),
        metrics_log: Some(metrics_path.clone()),
        metrics_interval_ms: 1,
        ..test_server_opts()
    };
    let (rows, ()) = run_campaign_with(opts, Some("tok"), |_| ());
    let merged = SweepResult::from_indexed(&tiny.name, tiny.job_count(), rows)
        .unwrap()
        .to_json_string();
    assert_eq!(merged, expected, "telemetry must not perturb the merge");

    // The metrics history holds parseable schema-checked snapshots.
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let snaps: Vec<MetricsReport> = text
        .lines()
        .map(|l| {
            MetricsReport::from_json(&sfence_harness::json::parse(l).unwrap())
                .expect("snapshot parses")
        })
        .collect();
    assert!(!snaps.is_empty());
    let last = snaps.last().unwrap();
    assert!(last.get("queue_done", &[]).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
