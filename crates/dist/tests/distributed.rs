//! Loopback integration tests of the coordinator/worker protocol: a
//! multi-worker campaign merges byte-identical to a single-process
//! `run_parallel()`, survives workers being killed or going silent
//! mid-campaign (leases re-issued), rejects mismatched binaries at
//! the handshake, and answers a warm re-run entirely from
//! worker-local caches.

use sfence_dist::protocol::{write_msg, FrameReader, Msg, PROTOCOL_VERSION};
use sfence_dist::{serve, work, CoordinatorOpts, ExperimentSpec, WorkerOpts};
use sfence_harness::{Axis, BackendId, Experiment, SweepResult, SCHEMA_VERSION};
use sfence_sim::FenceConfig;
use sfence_workloads::{Scale, WorkloadParams};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The test registry: what `sfence_bench::experiment_by_name` is to
/// the real binaries. Built on the functional backend so a whole
/// campaign runs in milliseconds.
fn registry(name: &str) -> Option<Experiment> {
    match name {
        "tiny" => Some(
            Experiment::new("tiny")
                .workloads(["dekker", "msn"], WorkloadParams::small())
                .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
                .axis(Axis::Level(vec![1, 2]))
                .backend(BackendId::Functional),
        ),
        // Zero jobs: complete the instant it starts.
        "empty" => Some(Experiment::new("empty")),
        _ => None,
    }
}

/// A drifted build: resolves the same name to a different job list
/// (eval scale instead of small), so its fingerprint disagrees.
fn drifted_registry(name: &str) -> Option<Experiment> {
    registry(name).map(|e| e.scale(Scale::Eval))
}

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sfence-dist-test-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_coordinator_opts() -> CoordinatorOpts {
    CoordinatorOpts {
        lease_size: 2,
        lease_ttl_ms: 10_000,
        poll_ms: 10,
        wait_ms: 10,
        quiet: true,
        token: None,
        abort: None,
    }
}

fn test_worker_opts(name: &str) -> WorkerOpts {
    WorkerOpts {
        threads: 1,
        heartbeat_ms: 50,
        name: Some(name.to_string()),
        read_timeout_ms: 20,
        max_idle_windows: 500, // 10s of silence before giving up
        quiet: true,
        ..WorkerOpts::default()
    }
}

/// Run one campaign with the given already-connected-or-late workers
/// and return `(merged json, summary)`.
fn campaign(
    experiment: &Experiment,
    opts: &CoordinatorOpts,
    workers: &[WorkerOpts],
    cache_dirs: &[Option<PathBuf>],
) -> (String, sfence_dist::DistSummary) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new(&experiment.name);
    let mut summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, experiment, &spec, opts));
        let handles: Vec<_> = workers
            .iter()
            .zip(cache_dirs)
            .map(|(w, dir)| {
                let mut w = w.clone();
                w.cache_dir = dir.clone();
                let addr = addr.clone();
                s.spawn(move || work(&addr, registry, &w))
            })
            .collect();
        let summary = coord.join().unwrap().expect("campaign completes");
        for h in handles {
            h.join().unwrap().expect("worker exits cleanly");
        }
        summary
    });
    let rows = std::mem::take(&mut summary.rows);
    let result = SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows)
        .expect("merge covers every job exactly once");
    (result.to_json_string(), summary)
}

#[test]
fn two_workers_merge_byte_identical_to_single_process() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let (json, summary) = campaign(
        &experiment,
        &test_coordinator_opts(),
        &[test_worker_opts("w0"), test_worker_opts("w1")],
        &[None, None],
    );
    assert_eq!(json, expected);
    assert_eq!(summary.workers, 2);
    assert_eq!(summary.executed, experiment.job_count() as u64);
    assert_eq!(summary.rejected, 0);
}

/// A client that completes the v3 handshake, takes one lease, and
/// then either drops the connection (a killed worker) or goes silent
/// while keeping it open (a hung worker). Returns the leased indices
/// and, for the hung case, the stream that must be kept alive by the
/// caller.
fn take_lease_and_stop(addr: &str, hang: bool) -> (Vec<usize>, Option<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    let mut next = || reader.next_msg().unwrap().expect("reply");
    write_msg(
        &mut writer,
        &Msg::Hello {
            schema_version: SCHEMA_VERSION,
            protocol_version: PROTOCOL_VERSION,
            worker: "doomed".into(),
            token: None,
        },
    )
    .unwrap();
    match next() {
        Msg::Welcome { .. } => {}
        other => panic!("expected welcome, got {other:?}"),
    }
    write_msg(&mut writer, &Msg::Request { batch: 0 }).unwrap();
    let jobs = match next() {
        Msg::Lease { jobs, .. } => jobs,
        other => panic!("expected lease, got {other:?}"),
    };
    assert!(!jobs.is_empty());
    (jobs, hang.then_some(stream))
}

#[test]
fn killed_worker_mid_campaign_re_leases_and_merge_is_identical() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = test_coordinator_opts();

    let summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));
        // The doomed worker handshakes, takes a lease of 2 jobs, and
        // is "killed": its connection drops with the lease
        // outstanding.
        let (doomed_jobs, _) = take_lease_and_stop(&addr, false);
        assert_eq!(doomed_jobs.len(), 2);
        // A healthy worker then completes the whole campaign,
        // including the re-leased jobs.
        let w = s.spawn({
            let addr = addr.clone();
            move || work(&addr, registry, &test_worker_opts("survivor"))
        });
        let summary = coord.join().unwrap().expect("campaign completes");
        let ws = w.join().unwrap().expect("survivor exits cleanly");
        assert_eq!(ws.jobs, experiment.job_count() as u64);
        summary
    });
    assert_eq!(summary.released, 2, "the dead worker's lease re-queued");
    let result =
        SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows).unwrap();
    assert_eq!(result.to_json_string(), expected);
}

#[test]
fn hung_worker_lease_expires_and_re_leases() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = CoordinatorOpts {
        lease_ttl_ms: 150, // hung leases expire quickly under test
        ..test_coordinator_opts()
    };

    let summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));
        // The hung worker keeps its socket open but never heartbeats
        // and never returns rows.
        let (hung_jobs, hung_stream) = take_lease_and_stop(&addr, true);
        assert_eq!(hung_jobs.len(), 2);
        let w = s.spawn({
            let addr = addr.clone();
            move || work(&addr, registry, &test_worker_opts("survivor"))
        });
        let summary = coord.join().unwrap().expect("campaign completes");
        w.join().unwrap().expect("survivor exits cleanly");
        drop(hung_stream);
        summary
    });
    assert!(
        summary.released >= 2,
        "the hung worker's lease must expire and re-queue (released {})",
        summary.released
    );
    let result =
        SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows).unwrap();
    assert_eq!(result.to_json_string(), expected);
}

#[test]
fn warm_cache_rerun_executes_zero_cells_on_every_worker() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let cache_a = scratch_dir("cache-a");
    let cache_b = scratch_dir("cache-b");

    // Cold pass: two workers with separate local caches split the
    // campaign between them.
    let (json, summary) = campaign(
        &experiment,
        &test_coordinator_opts(),
        &[test_worker_opts("w0"), test_worker_opts("w1")],
        &[Some(cache_a.clone()), Some(cache_b.clone())],
    );
    assert_eq!(json, expected);
    assert_eq!(summary.executed, experiment.job_count() as u64);

    // Warm pass: both workers share the union cache (every cell is in
    // one of the two directories — merge them into one dir the way a
    // shared network mount would look).
    for entry in std::fs::read_dir(&cache_b).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, cache_a.join(path.file_name().unwrap())).unwrap();
    }
    let (json, summary) = campaign(
        &experiment,
        &test_coordinator_opts(),
        &[test_worker_opts("w0"), test_worker_opts("w1")],
        &[Some(cache_a.clone()), Some(cache_a.clone())],
    );
    assert_eq!(json, expected, "cached rows byte-identical");
    assert_eq!(summary.executed, 0, "no worker executed any cell");
    assert_eq!(summary.cache_hits, experiment.job_count() as u64);

    let _ = std::fs::remove_dir_all(&cache_a);
    let _ = std::fs::remove_dir_all(&cache_b);
}

#[test]
fn drifted_binary_aborts_at_first_lease_and_campaign_still_completes() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = test_coordinator_opts();

    let summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));
        // The drifted worker resolves "tiny" to a different job list.
        // Under v3 the spec rides on each lease, so the mismatch is
        // caught at its first lease: it aborts, its lease re-queues,
        // and it must not return a single row.
        let drifted = {
            let addr = addr.clone();
            s.spawn(move || work(&addr, drifted_registry, &test_worker_opts("drifted")))
        };
        let err = drifted.join().unwrap().expect_err("drifted build refused");
        assert!(
            err.contains("fingerprint mismatch"),
            "unexpected error: {err}"
        );
        let w = s.spawn({
            let addr = addr.clone();
            move || work(&addr, registry, &test_worker_opts("healthy"))
        });
        let summary = coord.join().unwrap().expect("campaign completes");
        w.join().unwrap().expect("healthy worker exits cleanly");
        summary
    });
    assert!(summary.rejected >= 1, "the aborting worker is accounted");
    assert!(
        summary.released >= 2,
        "the drifted worker's lease re-queued (released {})",
        summary.released
    );
    let result =
        SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows).unwrap();
    assert_eq!(result.to_json_string(), expected);
}

#[test]
fn worker_racing_the_finish_line_is_told_done_not_left_hanging() {
    // A worker whose connection is still sitting un-accepted in the
    // listen backlog when the campaign completes must be handed
    // `done` by the shutdown drain and treat it as a clean no-work
    // exit — not hang out its idle budget waiting for a handshake
    // nobody will serve. A zero-job experiment makes the race
    // deterministic: the accept loop observes completion on its very
    // first iteration and never accepts anyone.
    let experiment = registry("empty").unwrap();
    assert_eq!(experiment.job_count(), 0);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("empty");
    let opts = test_coordinator_opts();

    std::thread::scope(|s| {
        let racer = s.spawn({
            let addr = addr.clone();
            move || {
                let mut w = test_worker_opts("racer");
                w.max_idle_windows = 250; // fail the test fast if hung
                work(&addr, registry, &w)
            }
        });
        // Give the racer time to connect and send its hello before
        // the (instantly-complete) campaign starts.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let summary = s
            .spawn(|| serve(&listener, &experiment, &spec, &opts))
            .join()
            .unwrap()
            .expect("empty campaign completes");
        assert!(summary.rows.is_empty());
        let ws = racer.join().unwrap().expect("racer exits cleanly");
        assert_eq!(ws.jobs, 0);
    });
}

#[test]
fn version_mismatch_is_rejected_with_a_reason() {
    let experiment = registry("tiny").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = test_coordinator_opts();

    std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));
        // A client from a different protocol generation.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(stream);
        write_msg(
            &mut writer,
            &Msg::Hello {
                schema_version: SCHEMA_VERSION,
                protocol_version: PROTOCOL_VERSION + 1,
                worker: "time-traveler".into(),
                token: None,
            },
        )
        .unwrap();
        match reader.next_msg().unwrap().expect("a reply") {
            Msg::Reject { reason } => assert!(reason.contains("version mismatch")),
            other => panic!("expected reject, got {other:?}"),
        }
        // A healthy worker still completes the campaign.
        let w = s.spawn({
            let addr = addr.clone();
            move || work(&addr, registry, &test_worker_opts("healthy"))
        });
        coord.join().unwrap().expect("campaign completes");
        w.join().unwrap().expect("healthy worker exits cleanly");
    });
}

#[test]
fn status_probe_reports_live_queue_state_mid_campaign() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = test_coordinator_opts();
    let jobs = experiment.job_count();

    let summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));
        // Freeze the campaign mid-flight: a hung worker holds a lease
        // of 2 jobs, so the probe observes a genuinely live queue.
        let (held, hung_stream) = take_lease_and_stop(&addr, true);
        assert_eq!(held.len(), 2);

        let report = sfence_dist::fetch_status(&addr, std::time::Duration::from_secs(5), None)
            .expect("status probe answered");
        assert_eq!(report.produced_by, "coordinator");
        let gauge = |name: &str| match report.get(name, &[]) {
            Some(m) => match m.value {
                sfence_obs::MetricValue::Gauge(v) => v,
                ref other => panic!("{name}: expected gauge, got {other:?}"),
            },
            None => panic!("{name} missing from the status frame"),
        };
        assert_eq!(gauge("queue_jobs_total") as usize, jobs);
        assert_eq!(gauge("queue_active_leases") as usize, 2);
        assert_eq!(gauge("queue_done") as usize, 0);
        assert_eq!(gauge("queue_pending") as usize, jobs - 2);
        // The wire payload round-trips through the metrics schema.
        let back = sfence_obs::MetricsReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.metrics.len(), report.metrics.len());

        // Release the hung lease and let a real worker finish.
        drop(hung_stream);
        let w = s.spawn({
            let addr = addr.clone();
            move || work(&addr, registry, &test_worker_opts("finisher"))
        });
        let summary = coord.join().unwrap().expect("campaign completes");
        w.join().unwrap().expect("finisher exits cleanly");
        summary
    });
    let result = SweepResult::from_indexed(&experiment.name, jobs, summary.rows).unwrap();
    assert_eq!(result.to_json_string(), expected);
}
