//! Protocol robustness: truncated, oversized, and garbage frames
//! must disconnect the offending peer — releasing its leases — and
//! must never panic the coordinator or cost the campaign a row.

use sfence_dist::protocol::{write_msg, FrameError, FrameReader, Msg, MAX_FRAME, PROTOCOL_VERSION};
use sfence_dist::{serve, work, CoordinatorOpts, ExperimentSpec, WorkerOpts};
use sfence_harness::{Axis, BackendId, Experiment, SweepResult, SCHEMA_VERSION};
use sfence_sim::FenceConfig;
use sfence_workloads::WorkloadParams;
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn registry(name: &str) -> Option<Experiment> {
    match name {
        "tiny" => Some(
            Experiment::new("tiny")
                .workloads(["dekker", "msn"], WorkloadParams::small())
                .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
                .axis(Axis::Level(vec![1, 2]))
                .backend(BackendId::Functional),
        ),
        _ => None,
    }
}

fn torn(bytes: &[u8]) -> String {
    let mut reader = FrameReader::new(bytes);
    loop {
        match reader.next_msg() {
            Ok(Some(_)) => continue, // leading valid frames are fine
            Ok(None) => panic!("reader idled on a finite byte source"),
            Err(FrameError::Torn(why)) => return why,
            Err(other) => panic!("expected Torn, got {other}"),
        }
    }
}

#[test]
fn truncated_frames_are_torn_not_panics() {
    let mut wire = Vec::new();
    write_msg(&mut wire, &Msg::Request { batch: 0 }).unwrap();
    // Cut the frame anywhere: inside the length prefix or the body.
    for cut in 1..wire.len() {
        let why = torn(&wire[..cut]);
        assert!(why.contains("mid-frame"), "cut at {cut}: {why}");
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocating() {
    // "GET / HTTP/1.1" — a stray HTTP client's first 4 bytes decode
    // as a 1.2 GB length prefix.
    let why = torn(b"GET / HTTP/1.1\r\n\r\n");
    assert!(why.contains("exceeds"), "{why}");
    // Exactly one past the limit.
    let mut wire = (MAX_FRAME + 1).to_be_bytes().to_vec();
    wire.extend_from_slice(b"x");
    assert!(torn(&wire).contains("exceeds"));
}

#[test]
fn garbage_payloads_are_torn() {
    // Correct framing around an invalid payload.
    let frame = |payload: &[u8]| {
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(payload);
        wire
    };
    assert!(torn(&frame(b"not json at all")).contains("bad JSON"));
    assert!(torn(&frame(&[0xff, 0xfe, 0x00])).contains("UTF-8"));
    // Valid JSON, but not a message.
    assert!(torn(&frame(b"{\"no\":\"type\"}")).contains("no type"));
    assert!(torn(&frame(b"{\"type\":\"warp\"}")).contains("unknown message type"));
}

#[test]
fn valid_frames_before_the_tear_still_decode() {
    let mut wire = Vec::new();
    write_msg(&mut wire, &Msg::Heartbeat).unwrap();
    write_msg(&mut wire, &Msg::Wait { ms: 5 }).unwrap();
    wire.extend_from_slice(b"\xde\xad\xbe\xef trailing junk");
    let mut reader = FrameReader::new(wire.as_slice());
    assert_eq!(reader.next_msg().unwrap(), Some(Msg::Heartbeat));
    assert_eq!(reader.next_msg().unwrap(), Some(Msg::Wait { ms: 5 }));
    assert!(matches!(reader.next_msg(), Err(FrameError::Torn(_))));
}

/// Live coordinator: three hostile clients — raw garbage before the
/// handshake, garbage after a completed handshake, and a mid-frame
/// hangup — while one honest worker runs the campaign. The merge must
/// still be byte-identical and every hostile connection accounted as
/// rejected.
#[test]
fn live_coordinator_survives_torn_clients() {
    let experiment = registry("tiny").unwrap();
    let expected = experiment.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = ExperimentSpec::new("tiny");
    let opts = CoordinatorOpts {
        lease_size: 2,
        lease_ttl_ms: 10_000,
        poll_ms: 10,
        wait_ms: 10,
        quiet: true,
        ..CoordinatorOpts::default()
    };

    let summary = std::thread::scope(|s| {
        let coord = s.spawn(|| serve(&listener, &experiment, &spec, &opts));

        // 1. An HTTP client wandered in: oversized length prefix.
        let mut http = TcpStream::connect(&addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        drop(http);

        // 2. A client that handshakes correctly, takes a lease, then
        // sends garbage instead of results.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(stream);
        write_msg(
            &mut writer,
            &Msg::Hello {
                schema_version: SCHEMA_VERSION,
                protocol_version: PROTOCOL_VERSION,
                worker: "corrupt".into(),
                token: None,
            },
        )
        .unwrap();
        match reader.next_msg().unwrap().unwrap() {
            Msg::Welcome { .. } => {}
            other => panic!("expected welcome, got {other:?}"),
        }
        write_msg(&mut writer, &Msg::Request { batch: 0 }).unwrap();
        match reader.next_msg().unwrap().unwrap() {
            Msg::Lease { jobs, .. } => assert!(!jobs.is_empty()),
            other => panic!("expected lease, got {other:?}"),
        }
        writer.write_all(b"\x00\x00\x00\x09{\"bad\":1}").unwrap();
        drop(writer);
        drop(reader);

        // 3. A client that hangs up mid-frame: a length prefix
        // promising more bytes than it ever sends.
        let mut half = TcpStream::connect(&addr).unwrap();
        half.write_all(&[0x00, 0x00, 0x01, 0x00, b'{']).unwrap();
        drop(half);

        // The honest worker completes everything, including the
        // corrupt client's re-leased jobs.
        let w = s.spawn({
            let addr = addr.clone();
            move || {
                work(
                    &addr,
                    registry,
                    &WorkerOpts {
                        threads: 1,
                        heartbeat_ms: 50,
                        name: Some("honest".into()),
                        read_timeout_ms: 20,
                        max_idle_windows: 500,
                        quiet: true,
                        ..WorkerOpts::default()
                    },
                )
            }
        });
        let summary = coord.join().unwrap().expect("campaign completes");
        w.join().unwrap().expect("honest worker exits cleanly");
        summary
    });

    assert!(
        summary.rejected >= 3,
        "all hostile connections rejected (got {})",
        summary.rejected
    );
    assert_eq!(summary.released, 2, "the corrupt client's lease re-queued");
    let result =
        SweepResult::from_indexed(&experiment.name, experiment.job_count(), summary.rows).unwrap();
    assert_eq!(result.to_json_string(), expected);
}
