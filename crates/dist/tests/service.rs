//! Integration tests of the multi-campaign service layer: concurrent
//! campaigns merge byte-identical to their solo runs, a killed
//! coordinator resumes every in-flight campaign from its checkpoint
//! (same ids, same bytes), batched leases respect the request and the
//! server cap, and every client flow is refused without the shared
//! token.

use sfence_dist::protocol::{write_msg, FrameReader, Msg, PROTOCOL_VERSION};
use sfence_dist::{client, fetch_status, run_server, work, ExperimentSpec, ServerOpts, WorkerOpts};
use sfence_harness::{Axis, BackendId, Experiment, RunOptions, SweepResult, SCHEMA_VERSION};
use sfence_sim::FenceConfig;
use sfence_workloads::WorkloadParams;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Functional-backend experiments so whole campaigns run in
/// milliseconds. Two distinct names so interleaved campaigns have
/// distinguishable outputs.
fn registry(name: &str) -> Option<Experiment> {
    match name {
        "tiny" => Some(
            Experiment::new("tiny")
                .workloads(["dekker", "msn"], WorkloadParams::small())
                .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
                .axis(Axis::Level(vec![1, 2]))
                .backend(BackendId::Functional),
        ),
        "tiny2" => Some(
            Experiment::new("tiny2")
                .workloads(["dekker", "wsq"], WorkloadParams::small())
                .fences(vec![FenceConfig::TRADITIONAL, FenceConfig::SFENCE])
                .axis(Axis::Level(vec![1, 2, 3]))
                .backend(BackendId::Functional),
        ),
        _ => None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sfence-service-test-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_server_opts() -> ServerOpts {
    ServerOpts {
        default_lease: 2,
        lease_ttl_ms: 10_000,
        poll_ms: 10,
        wait_ms: 10,
        quiet: true,
        ..ServerOpts::default()
    }
}

fn test_worker_opts(name: &str) -> WorkerOpts {
    WorkerOpts {
        threads: 1,
        heartbeat_ms: 50,
        name: Some(name.to_string()),
        read_timeout_ms: 20,
        max_idle_windows: 500, // 10s of silence before giving up
        quiet: true,
        ..WorkerOpts::default()
    }
}

fn fast_wait_opts(token: Option<&str>) -> client::WaitOpts {
    let mut wait = client::WaitOpts {
        poll_ms: 20,
        retries: 100,
        retry_base_ms: 20,
        retry_cap_ms: 200,
        ..Default::default()
    };
    wait.client.token = token.map(str::to_string);
    wait
}

fn merged_json(experiment: &Experiment, rows: Vec<sfence_harness::IndexedRow>) -> String {
    SweepResult::from_indexed(&experiment.name, experiment.job_count(), rows)
        .expect("merge covers every job exactly once")
        .to_json_string()
}

#[test]
fn two_interleaved_campaigns_each_match_their_solo_runs() {
    let tiny = registry("tiny").unwrap();
    let tiny2 = registry("tiny2").unwrap();
    let expected_tiny = tiny.run_parallel().to_json_string();
    let expected_tiny2 = tiny2.run_parallel().to_json_string();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };

    let (json1, json2) = std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        // Two workers serve both campaigns concurrently; they exit
        // when the daemon shuts down.
        let workers: Vec<_> = ["w0", "w1"]
            .iter()
            .map(|name| {
                let addr = addr.clone();
                s.spawn(move || work(&addr, registry, &test_worker_opts(name)))
            })
            .collect();

        let wait = fast_wait_opts(None);
        let t1 = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap();
        let t2 = client::submit(&addr, &ExperimentSpec::new("tiny2"), 3, &wait.client).unwrap();
        assert_eq!(t1.campaign, "c1");
        assert_eq!(t2.campaign, "c2");
        assert_eq!(t1.job_count, tiny.job_count() as u64);
        assert_eq!(t2.job_count, tiny2.job_count() as u64);

        let rows1 = client::wait_for_campaign(&addr, &t1.campaign, &wait, |_, _| {}).unwrap();
        let rows2 = client::wait_for_campaign(&addr, &t2.campaign, &wait, |_, _| {}).unwrap();

        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits cleanly");
        for w in workers {
            w.join().unwrap().expect("worker exits cleanly");
        }
        assert_eq!(outcome.campaigns.len(), 2);
        assert!(outcome.campaigns.iter().all(|c| c.complete));
        (merged_json(&tiny, rows1), merged_json(&tiny2, rows2))
    });

    assert_eq!(json1, expected_tiny, "campaign c1 byte-identical to solo");
    assert_eq!(json2, expected_tiny2, "campaign c2 byte-identical to solo");
}

#[test]
fn killed_coordinator_resumes_from_checkpoint_byte_identical() {
    let tiny = registry("tiny").unwrap();
    let expected = tiny.run_parallel().to_json_string();
    let dir = scratch_dir("resume");
    let ckpt = dir.join("ckpt.jsonl");
    let wait = fast_wait_opts(None);

    // --- Phase 1: submit, complete 3 of 8 jobs, kill the daemon. ---
    let ticket = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let opts = ServerOpts {
            checkpoint: Some(ckpt.clone()),
            checkpoint_every_ms: 0, // snapshot every mutation
            shutdown: Some(Arc::clone(&shutdown)),
            ..test_server_opts()
        };
        std::thread::scope(|s| {
            let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
            let ticket =
                client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap();
            assert_eq!(ticket.campaign, "c1");

            // A hand-rolled worker completes exactly 3 jobs, then its
            // connection drops — mid-campaign state for the kill.
            let stream = TcpStream::connect(&addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = FrameReader::new(stream);
            write_msg(
                &mut writer,
                &Msg::Hello {
                    schema_version: SCHEMA_VERSION,
                    protocol_version: PROTOCOL_VERSION,
                    worker: "mortal".into(),
                    token: None,
                },
            )
            .unwrap();
            match reader.next_msg().unwrap().unwrap() {
                Msg::Welcome { .. } => {}
                other => panic!("expected welcome, got {other:?}"),
            }
            write_msg(&mut writer, &Msg::Request { batch: 3 }).unwrap();
            let (campaign, jobs) = match reader.next_msg().unwrap().unwrap() {
                Msg::Lease { campaign, jobs, .. } => (campaign, jobs),
                other => panic!("expected lease, got {other:?}"),
            };
            assert_eq!(jobs.len(), 3, "batched lease honors the request");
            let outcome = tiny.run_with(RunOptions::new(1).jobs(jobs));
            write_msg(
                &mut writer,
                &Msg::Result {
                    campaign,
                    rows: outcome.rows,
                    executed: outcome.stats.executed as u64,
                    cache_hits: 0,
                    wall_ms: 0.0,
                },
            )
            .unwrap();
            drop(writer);
            drop(reader);

            // "Kill" the daemon. The handler drains the buffered
            // result before exiting, and checkpoint-every-mutation
            // means the snapshot already has all 3 rows.
            shutdown.store(true, Ordering::SeqCst);
            let outcome = server.join().unwrap().expect("server exits");
            assert!(outcome.aborted, "campaign was mid-flight at the kill");
            assert_eq!(outcome.campaigns[0].done, 3);
            ticket
        })
    };
    assert!(ckpt.exists(), "checkpoint written before the kill");

    // --- Phase 2: a fresh daemon process resumes the campaign. ---
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        checkpoint: Some(ckpt.clone()),
        checkpoint_every_ms: 0,
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };
    let json = std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        let worker = {
            let addr = addr.clone();
            s.spawn(move || work(&addr, registry, &test_worker_opts("survivor")))
        };
        // Same campaign id, polled against the *new* process.
        let rows = client::wait_for_campaign(&addr, &ticket.campaign, &wait, |_, _| {}).unwrap();
        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits");
        let ws = worker.join().unwrap().expect("worker exits cleanly");
        assert_eq!(
            ws.executed,
            tiny.job_count() as u64 - 3,
            "resume replays only the jobs the checkpoint lacked"
        );
        assert_eq!(outcome.campaigns[0].id, 1, "campaign id survives restart");
        assert!(outcome.campaigns[0].complete);
        merged_json(&tiny, rows)
    });
    assert_eq!(
        json, expected,
        "kill + resume output byte-identical to solo"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batched_leases_respect_request_and_cap_and_merge_identically() {
    let tiny = registry("tiny").unwrap();
    let expected = tiny.run_parallel().to_json_string();
    let jobs_total = tiny.job_count();
    assert_eq!(jobs_total, 8);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = ServerOpts {
        max_lease: 4,
        exit_when_done: true,
        ..test_server_opts()
    };
    let spec = ExperimentSpec::new("tiny");

    let outcome = std::thread::scope(|s| {
        let server = s.spawn(|| {
            run_server(
                &listener,
                None,
                vec![(spec.clone(), tiny.clone(), 1)],
                &opts,
            )
        });
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(stream);
        write_msg(
            &mut writer,
            &Msg::Hello {
                schema_version: SCHEMA_VERSION,
                protocol_version: PROTOCOL_VERSION,
                worker: "batcher".into(),
                token: None,
            },
        )
        .unwrap();
        match reader.next_msg().unwrap().unwrap() {
            Msg::Welcome { .. } => {}
            other => panic!("expected welcome, got {other:?}"),
        }
        // batch=3 → exactly 3; batch=0 → server default (2);
        // batch=999 → capped at max_lease(4), 3 jobs remain.
        for (batch, expect) in [(3u64, 3usize), (0, 2), (999, 3)] {
            write_msg(&mut writer, &Msg::Request { batch }).unwrap();
            let (campaign, jobs) = match reader.next_msg().unwrap().unwrap() {
                Msg::Lease { campaign, jobs, .. } => (campaign, jobs),
                other => panic!("expected lease, got {other:?}"),
            };
            assert_eq!(jobs.len(), expect, "batch={batch}");
            let outcome = tiny.run_with(RunOptions::new(1).jobs(jobs));
            write_msg(
                &mut writer,
                &Msg::Result {
                    campaign,
                    rows: outcome.rows,
                    executed: outcome.stats.executed as u64,
                    cache_hits: 0,
                    wall_ms: 0.0,
                },
            )
            .unwrap();
        }
        write_msg(&mut writer, &Msg::Request { batch: 0 }).unwrap();
        match reader.next_msg().unwrap().unwrap() {
            Msg::Done => {}
            other => panic!("expected done, got {other:?}"),
        }
        server.join().unwrap().expect("server exits")
    });
    assert!(!outcome.aborted);
    let campaign = outcome.campaigns.into_iter().next().unwrap();
    assert!(campaign.complete);
    assert_eq!(merged_json(&tiny, campaign.rows), expected);
}

/// Read the next frame, skipping the keep-alives a worker's side
/// thread interleaves while cells execute.
fn recv_skip_heartbeats(reader: &mut FrameReader<TcpStream>) -> Msg {
    loop {
        match reader.next_msg().unwrap() {
            Some(Msg::Heartbeat) => continue,
            Some(msg) => return msg,
            None => continue,
        }
    }
}

fn rows_json(rows: &[sfence_harness::IndexedRow]) -> Vec<String> {
    rows.iter()
        .map(|r| r.to_json().to_string_compact())
        .collect()
}

#[test]
fn worker_re_verifies_a_cached_campaign_when_its_fingerprint_changes() {
    // A daemon restarted without its checkpoint reissues campaign ids
    // from c1 for whatever is submitted next, so a reconnected
    // worker's cached id→experiment binding can go stale. The lease
    // frame's fingerprint is the tell: the worker must drop the cache
    // and re-resolve, not silently run the old experiment's cells.
    // A hand-rolled coordinator plays both daemon generations over
    // one connection, which exercises exactly the cache-hit path a
    // reconnect session takes.
    let tiny = registry("tiny").unwrap();
    let tiny2 = registry("tiny2").unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = FrameReader::new(stream);
        match reader.next_msg().unwrap().unwrap() {
            Msg::Hello { .. } => {}
            other => panic!("expected hello, got {other:?}"),
        }
        write_msg(
            &mut writer,
            &Msg::Welcome {
                lease_ttl_ms: 10_000,
            },
        )
        .unwrap();
        let mut lease = |spec_name: &str, exp: &Experiment| -> Vec<sfence_harness::IndexedRow> {
            match recv_skip_heartbeats(&mut reader) {
                Msg::Request { .. } => {}
                other => panic!("expected request, got {other:?}"),
            }
            write_msg(
                &mut writer,
                &Msg::Lease {
                    campaign: "c1".into(),
                    spec: ExperimentSpec::new(spec_name).to_json(),
                    fingerprint: exp.fingerprint(),
                    job_count: exp.job_count() as u64,
                    jobs: vec![0, 1],
                },
            )
            .unwrap();
            match recv_skip_heartbeats(&mut reader) {
                Msg::Result { rows, .. } => rows,
                other => panic!("expected result, got {other:?}"),
            }
        };
        // First lease: c1 is "tiny". Second lease: same id, but the
        // "restarted daemon" has bound c1 to "tiny2".
        let rows1 = lease("tiny", &tiny);
        let rows2 = lease("tiny2", &tiny2);
        match recv_skip_heartbeats(&mut reader) {
            Msg::Request { .. } => {}
            other => panic!("expected request, got {other:?}"),
        }
        write_msg(&mut writer, &Msg::Done).unwrap();
        (rows1, rows2)
    });

    let summary = work(&addr, registry, &test_worker_opts("chameleon")).unwrap();
    let (rows1, rows2) = server.join().unwrap();
    assert_eq!(summary.jobs, 4);
    let tiny = registry("tiny").unwrap();
    let tiny2 = registry("tiny2").unwrap();
    let expect1 = tiny.run_with(RunOptions::new(1).jobs(vec![0, 1])).rows;
    let expect2 = tiny2.run_with(RunOptions::new(1).jobs(vec![0, 1])).rows;
    assert_eq!(rows_json(&rows1), rows_json(&expect1));
    assert_eq!(
        rows_json(&rows2),
        rows_json(&expect2),
        "second lease ran the rebound experiment, not the stale cache"
    );
}

#[test]
fn submit_is_rejected_when_the_forced_checkpoint_cannot_be_written() {
    // The ack invariant — a campaign id the client holds survives a
    // daemon restart — is unsatisfiable when the snapshot cannot be
    // saved, so the submit must be rejected and rolled back, never
    // acked.
    let dir = scratch_dir("ckpt-fail");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        // The parent directory does not exist, so every save fails.
        checkpoint: Some(dir.join("no-such-subdir").join("ckpt.jsonl")),
        checkpoint_every_ms: 0,
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };

    std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        let wait = fast_wait_opts(None);
        let err = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap_err();
        assert!(err.contains("cannot persist"), "{err}");
        // The rollback means the daemon has never heard of c1.
        let err = client::poll(&addr, "c1", &wait.client).unwrap_err();
        assert!(err.contains("unknown campaign"), "{err}");
        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits");
        assert!(outcome.campaigns.is_empty(), "no campaign survived");
        assert!(outcome.rejected >= 1);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_silent_connection_is_dropped_at_the_handshake_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        handshake_timeout_ms: 100,
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };

    std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        // Connect and say nothing — the daemon must hang up on us,
        // not pin a handler thread forever.
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        match std::io::Read::read(&mut stream, &mut buf) {
            Ok(0) => {}
            Ok(n) => panic!("expected a close, got {n} bytes"),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("server did not close the silent connection: {e}"),
        }
        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits");
        assert!(outcome.rejected >= 1, "silent connection accounted");
    });
}

#[test]
fn completed_campaigns_are_evicted_after_the_fetch_retention_window() {
    let tiny = registry("tiny").unwrap();
    let expected = tiny.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        retain_fetched_ms: 50,
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };

    std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));
        let worker = {
            let addr = addr.clone();
            s.spawn(move || work(&addr, registry, &test_worker_opts("ephemeral")))
        };
        let wait = fast_wait_opts(None);
        let ticket = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap();
        // The first fetch delivers the rows and starts the retention
        // clock...
        let rows = client::wait_for_campaign(&addr, &ticket.campaign, &wait, |_, _| {}).unwrap();
        assert_eq!(merged_json(&tiny, rows), expected);
        // ...after which the campaign is evicted: polling it again
        // eventually comes back unknown.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match client::poll(&addr, &ticket.campaign, &wait.client) {
                Err(e) if e.contains("unknown campaign") => break,
                Err(e) => panic!("unexpected poll failure: {e}"),
                Ok(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20))
                }
                Ok(_) => panic!("campaign never evicted"),
            }
        }
        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits");
        worker.join().unwrap().expect("worker exits cleanly");
        assert!(outcome.campaigns.is_empty(), "evicted from the table");
    });
}

#[test]
fn every_client_flow_is_refused_without_the_token() {
    let tiny = registry("tiny").unwrap();
    let expected = tiny.run_parallel().to_json_string();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let opts = ServerOpts {
        token: Some("sesame".into()),
        shutdown: Some(Arc::clone(&shutdown)),
        ..test_server_opts()
    };
    let timeout = std::time::Duration::from_secs(5);

    let json = std::thread::scope(|s| {
        let server = s.spawn(|| run_server(&listener, Some(registry), Vec::new(), &opts));

        // Status: missing and wrong tokens refused, right one served.
        let err = fetch_status(&addr, timeout, None).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        let err = fetch_status(&addr, timeout, Some("wrong")).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        fetch_status(&addr, timeout, Some("sesame")).expect("authed probe answered");

        // Submit: refused without the token...
        let bad = fast_wait_opts(None);
        let err = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &bad.client).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        // ...accepted with it.
        let wait = fast_wait_opts(Some("sesame"));
        let ticket = client::submit(&addr, &ExperimentSpec::new("tiny"), 1, &wait.client).unwrap();

        // Fetch: an unauthenticated poll of a real campaign is refused.
        let err = client::poll(&addr, &ticket.campaign, &bad.client).unwrap_err();
        assert!(err.contains("rejected"), "{err}");

        // Work: a token-less worker is turned away at the handshake...
        let err = work(&addr, registry, &test_worker_opts("gatecrasher")).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        // ...an authed one completes the campaign.
        let worker = {
            let addr = addr.clone();
            let mut w = test_worker_opts("keyholder");
            w.token = Some("sesame".into());
            s.spawn(move || work(&addr, registry, &w))
        };
        let rows = client::wait_for_campaign(&addr, &ticket.campaign, &wait, |_, _| {}).unwrap();
        shutdown.store(true, Ordering::SeqCst);
        let outcome = server.join().unwrap().expect("server exits");
        worker.join().unwrap().expect("authed worker exits cleanly");
        assert!(
            outcome.rejected >= 4,
            "every unauthenticated flow accounted (got {})",
            outcome.rejected
        );
        merged_json(&tiny, rows)
    });
    assert_eq!(json, expected, "authed campaign byte-identical to solo");
}
