//! The status-probe clients: one connection, one request frame, one
//! reply back. [`fetch_status`] speaks the `status_request` flow and
//! returns a [`MetricsReport`]; [`fetch_dump`] speaks the
//! `debug_dump` flow and returns the daemon's flight-recorder ring
//! (`sfence-dist status` / `sfence-dist dump` are thin wrappers).

use crate::protocol::{write_msg, FrameError, FrameReader, Msg};
use sfence_obs::log::Event;
use sfence_obs::MetricsReport;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connect to the coordinator at `addr` and fetch its live service
/// snapshot. `timeout` bounds both the connect and the read, so a
/// probe against a hung coordinator fails instead of blocking a
/// monitoring loop. `token` must match the daemon's shared secret
/// when one is configured.
pub fn fetch_status(
    addr: &str,
    timeout: Duration,
    token: Option<&str>,
) -> Result<MetricsReport, String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolves to nothing"))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    write_msg(
        &mut writer,
        &Msg::StatusRequest {
            token: token.map(str::to_string),
        },
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reader = FrameReader::new(stream);
    match reader.next_msg() {
        Ok(Some(Msg::Status { metrics })) => MetricsReport::from_json(&metrics),
        Ok(Some(Msg::Reject { reason })) => Err(format!("coordinator rejected probe: {reason}")),
        // A `done` here means the service finished before our probe
        // was accepted (the coordinator drains its backlog with
        // `done` frames) — report that plainly.
        Ok(Some(Msg::Done)) => Err("service already finished".into()),
        Ok(Some(other)) => Err(format!("expected status, got {other:?}")),
        Ok(None) => Err(format!("coordinator silent for {timeout:?}")),
        Err(FrameError::Eof) => Err("coordinator closed without answering".into()),
        Err(e) => Err(e.to_string()),
    }
}

/// Connect to the coordinator at `addr` and fetch its flight
/// recorder: the bounded ring of recent lifecycle events, plus how
/// many older events the ring has already dropped. Same timeout and
/// token semantics as [`fetch_status`].
pub fn fetch_dump(
    addr: &str,
    timeout: Duration,
    token: Option<&str>,
) -> Result<(Vec<Event>, u64), String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolves to nothing"))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    write_msg(
        &mut writer,
        &Msg::DumpRequest {
            token: token.map(str::to_string),
        },
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reader = FrameReader::new(stream);
    match reader.next_msg() {
        Ok(Some(Msg::DumpReply { events, dropped })) => {
            let arr = events
                .as_arr()
                .ok_or_else(|| "debug_dump_reply: events is not an array".to_string())?;
            let events = arr
                .iter()
                .map(Event::from_json)
                .collect::<Result<Vec<Event>, String>>()?;
            Ok((events, dropped))
        }
        Ok(Some(Msg::Reject { reason })) => Err(format!("coordinator rejected dump: {reason}")),
        Ok(Some(Msg::Done)) => Err("service already finished".into()),
        Ok(Some(other)) => Err(format!("expected debug_dump_reply, got {other:?}")),
        Ok(None) => Err(format!("coordinator silent for {timeout:?}")),
        Err(FrameError::Eof) => Err("coordinator closed without answering".into()),
        Err(e) => Err(e.to_string()),
    }
}

/// The per-campaign breakdown at the top of `sfence-dist status`:
/// one row per campaign id found in the report's labels. A daemon
/// with zero campaigns says so explicitly rather than printing an
/// empty table.
pub fn render_campaign_table(report: &MetricsReport) -> String {
    use sfence_obs::MetricValue;
    let campaigns = report.label_values("campaign");
    if campaigns.is_empty() {
        return "no active campaigns\n\n".to_string();
    }
    let gauge = |name: &str, id: &str| -> f64 {
        match report.get(name, &[("campaign", id)]).map(|m| &m.value) {
            Some(MetricValue::Gauge(g)) => *g,
            _ => 0.0,
        }
    };
    // `campaign_info` carries the experiment name as a second label;
    // find the series by scanning rather than by exact label match.
    let experiment = |id: &str| -> &str {
        report
            .metrics
            .iter()
            .find(|m| {
                m.name == "campaign_info"
                    && m.labels.iter().any(|(k, v)| k == "campaign" && v == id)
            })
            .and_then(|m| {
                m.labels
                    .iter()
                    .find(|(k, _)| k == "experiment")
                    .map(|(_, v)| v.as_str())
            })
            .unwrap_or("?")
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<20} {:>8} {:>7} {:>8} {:>7} {:>9} {:>10}\n",
        "campaign", "experiment", "priority", "done", "pending", "leased", "state", "cells/s"
    ));
    for id in campaigns {
        let complete = gauge("campaign_complete", id) > 0.0;
        out.push_str(&format!(
            "{:<8} {:<20} {:>8} {:>7} {:>8} {:>7} {:>9} {:>10.1}\n",
            id,
            experiment(id),
            gauge("campaign_priority", id) as u64,
            gauge("campaign_done", id) as u64,
            gauge("campaign_pending", id) as u64,
            gauge("campaign_leased", id) as u64,
            if complete { "complete" } else { "running" },
            gauge("campaign_cells_per_sec", id),
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfence_obs::Registry;

    #[test]
    fn empty_report_says_no_active_campaigns() {
        let reg = Registry::new();
        let report = reg.snapshot("coordinator");
        assert_eq!(render_campaign_table(&report), "no active campaigns\n\n");
    }

    #[test]
    fn campaign_rows_render_from_labeled_gauges() {
        let mut reg = Registry::new();
        let labels = [("campaign", "c1")];
        reg.gauge(
            "campaign_info",
            &[("campaign", "c1"), ("experiment", "fig13")],
            1.0,
        );
        reg.gauge("campaign_priority", &labels, 2.0);
        reg.gauge("campaign_done", &labels, 3.0);
        reg.gauge("campaign_pending", &labels, 4.0);
        reg.gauge("campaign_leased", &labels, 1.0);
        reg.gauge("campaign_complete", &labels, 0.0);
        reg.gauge("campaign_cells_per_sec", &labels, 1.5);
        let table = render_campaign_table(&reg.snapshot("coordinator"));
        assert!(table.starts_with("campaign"), "{table}");
        assert!(table.contains("c1"), "{table}");
        assert!(table.contains("fig13"), "{table}");
        assert!(table.contains("running"), "{table}");
        assert!(!table.contains("no active campaigns"), "{table}");
    }
}
