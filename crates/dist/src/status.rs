//! The status-probe client: one connection, one `status_request`,
//! one [`MetricsReport`] back. The monitoring half of the protocol's
//! probe flow (`sfence-dist status ADDR` is a thin wrapper).

use crate::protocol::{write_msg, FrameError, FrameReader, Msg};
use sfence_obs::MetricsReport;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connect to the coordinator at `addr` and fetch its live service
/// snapshot. `timeout` bounds both the connect and the read, so a
/// probe against a hung coordinator fails instead of blocking a
/// monitoring loop. `token` must match the daemon's shared secret
/// when one is configured.
pub fn fetch_status(
    addr: &str,
    timeout: Duration,
    token: Option<&str>,
) -> Result<MetricsReport, String> {
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolves to nothing"))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    write_msg(
        &mut writer,
        &Msg::StatusRequest {
            token: token.map(str::to_string),
        },
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut reader = FrameReader::new(stream);
    match reader.next_msg() {
        Ok(Some(Msg::Status { metrics })) => MetricsReport::from_json(&metrics),
        Ok(Some(Msg::Reject { reason })) => Err(format!("coordinator rejected probe: {reason}")),
        // A `done` here means the service finished before our probe
        // was accepted (the coordinator drains its backlog with
        // `done` frames) — report that plainly.
        Ok(Some(Msg::Done)) => Err("service already finished".into()),
        Ok(Some(other)) => Err(format!("expected status, got {other:?}")),
        Ok(None) => Err(format!("coordinator silent for {timeout:?}")),
        Err(FrameError::Eof) => Err("coordinator closed without answering".into()),
        Err(e) => Err(e.to_string()),
    }
}
